"""Ablation: the online operator vs the offline sweep.

Section 3.1's dynamic-instance framing says streaming evaluation should
cost the same work as the offline sweep (same inserts, deletes, and
enumerations — only the event order source differs) while holding state
proportional to the number of *simultaneously valid* tuples, not the
stream length. This bench measures both claims.
"""

import time

import pytest

from repro.algorithms.online import OnlineTemporalJoin, arrivals_from_database
from repro.algorithms.timefirst import timefirst_join
from repro.bench.harness import Measurement
from repro.bench.reporting import render_table
from repro.core.query import JoinQuery
from repro.workloads import ldbc
from repro.core.query import self_join_database

from conftest import record_report


@pytest.mark.benchmark(group="ablation")
def test_online_overhead_and_state(benchmark):
    query = JoinQuery.line(3)
    rel = ldbc.knows_relation(ldbc.LDBCConfig(n_persons=150, n_knows=450, seed=3))
    db = self_join_database(query, rel)
    arrivals = arrivals_from_database(db)
    rows = {}
    stats = {}

    def run():
        start = time.perf_counter()
        offline = timefirst_join(query, db)
        offline_s = time.perf_counter() - start

        start = time.perf_counter()
        op = OnlineTemporalJoin(query)
        max_live = 0
        for relation, values, interval in arrivals:
            op.insert(relation, values, interval)
            max_live = max(max_live, op.active_count)
        op.finish()
        online_s = time.perf_counter() - start

        rows["offline"] = [
            Measurement("timefirst(offline)", offline_s, 0, len(offline),
                        query.input_size(db), 0)
        ]
        rows["online"] = [
            Measurement("online operator", online_s, 0, len(op.results()),
                        query.input_size(db), 0)
        ]
        stats["max_live"] = max_live
        stats["stream_len"] = len(arrivals)
        stats["match"] = (
            offline.normalized() == op.results().normalized()
        )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        "ablation_online",
        render_table(
            f"Online vs offline sweep (LDBC line-3; peak live state "
            f"{stats['max_live']}/{stats['stream_len']} records)",
            rows, metric="seconds", x_label="mode",
        ),
    )
    assert stats["match"], "online and offline results diverged"
    # Bounded state: the operator never holds the whole stream.
    assert stats["max_live"] < stats["stream_len"]
    # Streaming overhead stays within a small factor of the offline sweep.
    assert rows["online"][0].seconds < 5 * rows["offline"][0].seconds
