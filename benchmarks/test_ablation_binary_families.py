"""Ablation: the binary interval-join families inside BASELINE.

The paper's related-work section surveys sort/merge-based, sweep-based,
and index-based binary temporal joins, and its BASELINE adopts the
forward scan "experimentally verified as the most efficient temporal
join algorithm". This bench reproduces that verification on our own
substrate: the same BASELINE plan with each family plugged in, on a
dense-overlap and a sparse-overlap workload.
"""

import time

import pytest

from repro.algorithms.baseline import baseline_join
from repro.bench.harness import Measurement
from repro.bench.reporting import render_table
from repro.core.query import JoinQuery
from repro.workloads.synthetic import SyntheticConfig, generate
from repro.workloads import ldbc
from repro.core.query import self_join_database

from conftest import record_report

STRATEGIES = ["forward-scan", "sort-merge", "index"]


def dense_workload():
    q = JoinQuery.line(3)
    return q, generate(q, SyntheticConfig(n_dangling=250, n_results=60, seed=17))


def sparse_workload():
    q = JoinQuery.line(3)
    rel = ldbc.knows_relation(
        ldbc.LDBCConfig(n_persons=200, n_knows=350, delete_fraction=0.8, seed=4)
    )
    return q, self_join_database(q, rel)


@pytest.mark.benchmark(group="ablation")
def test_binary_join_families(benchmark):
    rows = {}

    def run():
        for label, builder in [("dense", dense_workload), ("sparse", sparse_workload)]:
            query, db = builder()
            cells = []
            counts = set()
            for strategy in STRATEGIES:
                best = float("inf")
                for _ in range(2):
                    start = time.perf_counter()
                    out = baseline_join(query, db, binary_strategy=strategy)
                    best = min(best, time.perf_counter() - start)
                counts.add(len(out))
                cells.append(
                    Measurement(
                        algorithm=strategy, seconds=best, peak_bytes=0,
                        result_count=len(out), input_size=query.input_size(db),
                        tau=0,
                    )
                )
            assert len(counts) == 1, (label, counts)
            rows[label] = cells
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        "ablation_binary_families",
        render_table(
            "BASELINE with each binary interval-join family",
            rows, metric="seconds", x_label="overlap profile",
        ),
    )
    # The forward scan should never be the clear loser (the paper's
    # reason for adopting it); allow generous noise.
    for label, cells in rows.items():
        by = {m.algorithm: m.seconds for m in cells}
        slowest = max(by.values())
        assert by["forward-scan"] <= slowest + 1e-9
        assert by["forward-scan"] < 3 * min(by.values()), (label, by)
