"""Figure 10 (left): runtime ratios to BASELINE on TPC-BiH.

Four temporal join queries distilled from TPC-H: Q_tpc3/Q_tpc5 (low join
multiplicity — BASELINE competitive or winning) and Q_tpc9/Q_tpc10 (the
partsupp × lineitem explosion — the toolkit ≥10× faster). Cells are
runtime ratios to BASELINE, < 1 meaning faster, exactly as the paper
plots them.
"""

import pytest

from repro.bench.harness import compare_algorithms
from repro.bench.reporting import render_ratio_table
from repro.workloads import tpc_bih

from conftest import record_report

ALGORITHMS = ["baseline", "timefirst", "hybrid", "hybrid-interval"]
CONFIG = tpc_bih.TPCBiHConfig(seed=50)


@pytest.fixture(scope="module")
def database():
    return tpc_bih.generate_database(CONFIG)


@pytest.fixture(scope="module")
def results_table(database):
    rows = {}
    for qname, qf in tpc_bih.ALL_QUERIES.items():
        query = qf()
        db = {n: database[n] for n in query.edge_names}
        rows[qname] = compare_algorithms(
            ALGORITHMS, query, db, tau=0, measure_memory=False, validate=False,
        )
    return rows


@pytest.mark.benchmark(group="fig10")
def test_fig10_tpcbih_ratios(benchmark, results_table):
    rows = benchmark.pedantic(lambda: results_table, rounds=1, iterations=1)
    record_report(
        "fig10_tpcbih",
        render_ratio_table(
            "Figure 10 (left): runtime ratio vs BASELINE on TPC-BiH",
            rows, baseline="baseline", x_label="query",
        ),
    )
    # Result counts agree per query.
    for qname, ms in rows.items():
        counts = {m.result_count for m in ms if m.ok}
        assert len(counts) == 1, (qname, counts)

    by = {
        qname: {m.algorithm: m for m in ms if m.ok}
        for qname, ms in rows.items()
    }
    # The multiplicity explosion queries: at least one toolkit algorithm
    # clearly beats BASELINE (paper: >= 10x on C++ at full scale; pure
    # Python compresses the gap, so we assert a conservative 1.3x).
    for qname in ["Q_tpc9", "Q_tpc10"]:
        base = by[qname]["baseline"].seconds
        best = min(
            m.seconds for name, m in by[qname].items() if name != "baseline"
        )
        assert best * 1.3 < base, (
            f"{qname}: best toolkit {best:.3f}s vs baseline {base:.3f}s"
        )


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("qname", list(tpc_bih.ALL_QUERIES))
def test_fig10_tpcbih_single_query(benchmark, database, qname):
    """Per-query pytest-benchmark entries for the planner's auto pick."""
    from repro.algorithms.registry import temporal_join

    query = tpc_bih.ALL_QUERIES[qname]()
    db = {n: database[n] for n in query.edge_names}
    result = benchmark.pedantic(
        temporal_join, args=(query, db), kwargs={"algorithm": "auto"},
        rounds=1, iterations=1,
    )
    assert result.attrs == query.attrs
