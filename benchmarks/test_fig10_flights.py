"""Figure 10 (middle): runtime ratios to BASELINE on the Flights graph.

Self-join pattern queries — lines Q_L3..Q_L5, stars Q_S3..Q_S5, cycles
Q_C3..Q_C5 and the bowtie — on the small dense Flights-like graph,
including JOINFIRST (the subgraph-matching baseline). Paper's findings to
reproduce: JOINFIRST shines on simple patterns over this small graph but
collapses on the complex ones; at least one toolkit algorithm is
competitive with BASELINE everywhere.
"""

import pytest

from repro.bench.harness import compare_algorithms
from repro.bench.reporting import render_ratio_table
from repro.core.query import JoinQuery
from repro.workloads import flights

from conftest import record_report

QUERIES = {
    "Q_L3": JoinQuery.line(3),
    "Q_L4": JoinQuery.line(4),
    "Q_L5": JoinQuery.line(5),
    "Q_S3": JoinQuery.star(3),
    "Q_S4": JoinQuery.star(4),
    "Q_S5": JoinQuery.star(5),
    "Q_C3": JoinQuery.cycle(3),
    "Q_C4": JoinQuery.cycle(4),
    "Q_C5": JoinQuery.cycle(5),
    "Q_bowtie": JoinQuery.bowtie(),
}
# JOINFIRST enumerates every non-temporal match; on the 5-relation
# patterns that count reaches ~1e7 on this graph (fine for the paper's
# C++ matcher, hopeless for pure Python), so it only competes on the
# smaller patterns — its collapse is still visible on Q_L4/Q_S4.
TOOLKIT = ["baseline", "timefirst", "hybrid", "hybrid-interval"]
WITH_JOINFIRST = TOOLKIT + ["joinfirst"]
CONFIG = flights.FlightsConfig(
    n_airports=300, n_flights=700, n_hubs=40, hub_bias=0.35, seed=747
)


@pytest.fixture(scope="module")
def graph():
    return flights.generate_graph(CONFIG)


@pytest.fixture(scope="module")
def results_table(graph):
    rows = {}
    for qname, query in QUERIES.items():
        db = graph.pattern_database(query)
        algorithms = TOOLKIT if qname in ("Q_L5", "Q_S5") else WITH_JOINFIRST
        rows[qname] = compare_algorithms(
            algorithms, query, db, tau=0, measure_memory=False, validate=False,
        )
    return rows


@pytest.mark.benchmark(group="fig10")
def test_fig10_flights_ratios(benchmark, results_table):
    rows = benchmark.pedantic(lambda: results_table, rounds=1, iterations=1)
    record_report(
        "fig10_flights",
        render_ratio_table(
            "Figure 10 (middle): runtime ratio vs BASELINE on Flights-like graph",
            rows, baseline="baseline", x_label="query",
        ),
    )
    for qname, ms in rows.items():
        counts = {m.result_count for m in ms if m.ok}
        assert len(counts) == 1, (qname, counts)

    by = {
        qname: {m.algorithm: m for m in ms if m.ok}
        for qname, ms in rows.items()
    }
    # At least one toolkit algorithm within a small factor of BASELINE on
    # every query (the paper's robustness claim; self-joins on lines favor
    # BASELINE because nothing dangles — Section 6.2's discussion).
    for qname, algs in by.items():
        base = algs["baseline"].seconds
        best = min(
            m.seconds
            for name, m in algs.items()
            if name not in ("baseline", "joinfirst")
        )
        assert best < 3 * base, (qname, best, base)
    # Cyclic patterns: HYBRID beats plain TIMEFIRST (Theorem 12's point).
    for qname in ["Q_C3", "Q_C4", "Q_C5", "Q_bowtie"]:
        assert by[qname]["hybrid"].seconds < by[qname]["timefirst"].seconds


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("qname", ["Q_L3", "Q_S3", "Q_C3", "Q_bowtie"])
def test_fig10_flights_auto(benchmark, graph, qname):
    query = QUERIES[qname]
    db = graph.pattern_database(query)
    from repro.algorithms.registry import temporal_join

    benchmark.pedantic(
        temporal_join, args=(query, db), kwargs={"algorithm": "auto"},
        rounds=1, iterations=1,
    )
