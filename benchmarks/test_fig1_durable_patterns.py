"""Figure 1 (right): durable coauthorship pattern counts vs threshold τ.

The paper counts length-2 paths, length-3 paths, 3-way stars, and
triangles on the DBLP coauthorship graph at increasing durability
thresholds; counts fall by orders of magnitude as τ grows. We regenerate
the same curves on the DBLP-like synthetic graph (see DESIGN.md for the
substitution rationale) and assert the qualitative shape: monotone decay
per pattern, with high thresholds orders of magnitude below τ = 0.
"""

import pytest

from repro.bench.reporting import render_series
from repro.workloads import dblp
from repro.workloads.graphs import count_durable_patterns

from conftest import record_report

THRESHOLDS = [0, 1, 2, 3, 5, 8, 12, 16, 20]
PATTERNS = ["path2", "path3", "star3", "triangle"]
CONFIG = dblp.DBLPConfig(n_authors=500, n_edges=1500, seed=14)


@pytest.fixture(scope="module")
def graph():
    return dblp.generate_graph(CONFIG)


@pytest.mark.benchmark(group="fig1")
@pytest.mark.parametrize("pattern", PATTERNS)
def test_fig1_pattern_counts(benchmark, graph, pattern):
    counts = benchmark.pedantic(
        count_durable_patterns, args=(graph, pattern, THRESHOLDS),
        rounds=1, iterations=1,
    )
    values = [counts[t] for t in THRESHOLDS]
    # Monotone decay and a sharp drop at high thresholds.
    assert values == sorted(values, reverse=True)
    assert values[0] > 0
    if values[0] >= 100:
        assert values[-1] <= values[0] / 10


@pytest.mark.benchmark(group="fig1")
def test_fig1_series_table(benchmark, graph):
    series = {}

    def build():
        for pattern in PATTERNS:
            counts = count_durable_patterns(graph, pattern, THRESHOLDS)
            series[pattern] = [float(counts[t]) for t in THRESHOLDS]
        return series

    benchmark.pedantic(build, rounds=1, iterations=1)
    record_report(
        "fig1_durable_patterns",
        render_series(
            "Figure 1 (right): durable patterns vs threshold (DBLP-like graph, years)",
            THRESHOLDS,
            series,
            x_label="tau",
            fmt="{:.0f}",
        ),
    )
    # Paths of length 3 outnumber triangles at every threshold (sparse
    # graph), mirroring the paper's ordering of the curves.
    assert series["path3"][0] > series["triangle"][0]
