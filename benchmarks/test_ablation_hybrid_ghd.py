"""Ablation: HYBRID's decomposition choice (fhtw GHD vs hierarchical GHD).

Theorem 12's exponent is min(fhtw + 1, hhtw); the ``mode`` knob of
:func:`hybrid_join` forces one side or the other. On cycle joins the two
often coincide in width but differ in the derived query handed to
TIMEFIRST — the hierarchical GHD enables the §3.2 structure, the fhtw
GHD falls back to the generic sweep. This bench shows the gap, and that
``auto`` never loses to either forced mode by more than noise.
"""

import time

import pytest

from repro.algorithms.hybrid import hybrid_join
from repro.bench.harness import Measurement
from repro.bench.reporting import render_table
from repro.core.query import JoinQuery
from repro.workloads.synthetic import SyntheticConfig, generate

from conftest import record_report

CONFIG = SyntheticConfig(n_dangling=250, n_results=60, seed=31)
MODES = ["auto", "fhtw", "hierarchical"]


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("qname,query", [
    ("C4", JoinQuery.cycle(4)),
    ("C5", JoinQuery.cycle(5)),
])
def test_hybrid_ghd_modes(benchmark, qname, query):
    db = generate(query, CONFIG)
    rows = {}

    def run():
        for mode in MODES:
            start = time.perf_counter()
            result = hybrid_join(query, db, mode=mode)
            elapsed = time.perf_counter() - start
            rows[mode] = [
                Measurement(
                    algorithm=f"mode={mode}", seconds=elapsed, peak_bytes=0,
                    result_count=len(result), input_size=query.input_size(db),
                    tau=0,
                )
            ]
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        f"ablation_hybrid_ghd_{qname}",
        render_table(
            f"HYBRID decomposition modes on synthetic {qname}",
            rows, metric="seconds", x_label="mode",
        ),
    )
    counts = {ms[0].result_count for ms in rows.values()}
    assert len(counts) == 1, counts
    auto = rows["auto"][0].seconds
    best_forced = min(rows["fhtw"][0].seconds, rows["hierarchical"][0].seconds)
    assert auto < 5 * best_forced
