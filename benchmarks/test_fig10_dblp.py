"""Figure 10 (right): runtime ratios to BASELINE on the DBLP-like graph.

Line (Q_L3..Q_L5) and star (Q_S3..Q_S5) self-joins on the larger
collaboration graph. Paper's findings to reproduce: JOINFIRST is the
worst here (up to three orders of magnitude slower — it ignores temporal
predicates on a graph whose non-temporal pattern counts are huge), while
at least one toolkit algorithm beats or matches BASELINE.
"""

import pytest

from repro.bench.harness import compare_algorithms
from repro.bench.reporting import render_ratio_table
from repro.core.query import JoinQuery
from repro.workloads import dblp

from conftest import record_report

QUERIES = {
    "Q_L3": JoinQuery.line(3),
    "Q_L4": JoinQuery.line(4),
    "Q_S3": JoinQuery.star(3),
    "Q_S4": JoinQuery.star(4),
}
# JOINFIRST competes where its non-temporal result count is feasible in
# pure Python (~1e6); on Q_S4 that count is ~1e7+, so the toolkit runs
# alone there — the paper's 3-orders-of-magnitude collapse is visible on
# Q_S3 already.
TOOLKIT = ["baseline", "timefirst", "hybrid-interval"]
WITH_JOINFIRST = TOOLKIT + ["joinfirst"]
CONFIG = dblp.DBLPConfig(
    n_authors=1200, n_edges=3000, hub_fraction=0.1, hub_bias=0.3, seed=2022
)
TAU = 2  # durable patterns only: keeps output sizes sane in pure Python


@pytest.fixture(scope="module")
def graph():
    return dblp.generate_graph(CONFIG)


@pytest.fixture(scope="module")
def results_table(graph):
    rows = {}
    for qname, query in QUERIES.items():
        db = graph.pattern_database(query)
        algorithms = TOOLKIT if qname == "Q_S4" else WITH_JOINFIRST
        rows[qname] = compare_algorithms(
            algorithms, query, db, tau=TAU, measure_memory=False,
            validate=False,
        )
    return rows


@pytest.mark.benchmark(group="fig10")
def test_fig10_dblp_ratios(benchmark, results_table):
    rows = benchmark.pedantic(lambda: results_table, rounds=1, iterations=1)
    record_report(
        "fig10_dblp",
        render_ratio_table(
            f"Figure 10 (right): runtime ratio vs BASELINE on DBLP-like graph (tau={TAU})",
            rows, baseline="baseline", x_label="query",
        ),
    )
    for qname, ms in rows.items():
        counts = {m.result_count for m in ms if m.ok}
        assert len(counts) == 1, (qname, counts)

    by = {
        qname: {m.algorithm: m for m in ms if m.ok} for qname, ms in rows.items()
    }
    # JOINFIRST pays for ignoring temporal predicates on the big graph:
    # it must be the slowest algorithm on the star query (stars have
    # the largest non-temporal result sets).
    for qname in ["Q_S3"]:
        jf = by[qname]["joinfirst"].seconds
        others = [
            m.seconds for name, m in by[qname].items() if name != "joinfirst"
        ]
        assert jf > max(others), (qname, jf, others)

    # Toolkit robustness: someone beats or matches BASELINE everywhere.
    for qname, algs in by.items():
        base = algs["baseline"].seconds
        best = min(
            m.seconds
            for name, m in algs.items()
            if name not in ("baseline", "joinfirst")
        )
        assert best < 2 * base, (qname, best, base)
