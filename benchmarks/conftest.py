"""Shared benchmark infrastructure.

Each benchmark module regenerates one table or figure of the paper. The
figure-style ASCII tables are collected through :func:`record_report` and
printed in the terminal summary (so ``pytest benchmarks/ --benchmark-only``
shows them even with output capture on), as well as written to
``benchmarks/results/<name>.txt`` for later inspection.
"""

from __future__ import annotations

import pathlib
from typing import List, Tuple

_REPORTS: List[Tuple[str, str]] = []
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_report(name: str, text: str) -> None:
    """Register a rendered figure table for the terminal summary."""
    _REPORTS.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper figures (reproduced)")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
