"""Table 1 + Figure 7: execution plans chosen per query.

Regenerates the paper's Table 1 — the attribute trees / GHDs / (I, J)
partitions each algorithm uses per query — directly from the planner and
decomposition machinery, and checks the structural claims (widths,
partitions, decision-tree outcomes).
"""

import pytest

from repro.core.classification import AttributeTree, QueryClass
from repro.core.planner import plan
from repro.core.query import JoinQuery
from repro.nontemporal.ghd import find_guarded_partition, hhtw_ghd

from conftest import record_report

QUERIES = {
    "Q_L3": JoinQuery.line(3),
    "Q_L4": JoinQuery.line(4),
    "Q_L5": JoinQuery.line(5),
    "Q_S3": JoinQuery.star(3),
    "Q_S4": JoinQuery.star(4),
    "Q_S5": JoinQuery.star(5),
    "Q_C3": JoinQuery.cycle(3),
    "Q_C4": JoinQuery.cycle(4),
    "Q_C5": JoinQuery.cycle(5),
    "Q_bowtie": JoinQuery.bowtie(),
    "Q_hier": JoinQuery.hier(),
}


@pytest.mark.benchmark(group="table1")
def test_table1_execution_plans(benchmark):
    lines = []

    def build():
        lines.clear()
        for name, query in QUERIES.items():
            p = plan(query)
            gp = find_guarded_partition(query.hypergraph)
            _, hghd = hhtw_ghd(query.hypergraph)
            row = [
                f"{name:>9}",
                f"class={p.query_class.value:<14}",
                f"fhtw={p.fhtw:<4g}",
                f"hhtw={p.hhtw:<4g}",
                f"pick={p.algorithm:<16}",
                f"hybrid-GHD: {hghd.pretty()}",
            ]
            if gp is not None:
                row.append(f"(I={','.join(gp.I)} | J={','.join(gp.J)})")
            lines.append("  ".join(row))
        return lines

    benchmark.pedantic(build, rounds=1, iterations=1)
    record_report("table1_plans", "\n".join(lines))

    # Structural assertions pinned to the paper's Table 1 / Figure 7.
    assert plan(QUERIES["Q_S4"]).algorithm == "timefirst"
    assert plan(QUERIES["Q_L4"]).algorithm == "hybrid-interval"
    assert plan(QUERIES["Q_C4"]).algorithm == "hybrid"
    gp = find_guarded_partition(QUERIES["Q_L5"].hypergraph)
    assert set(gp.I) == {"x1", "x6"}
    assert set(gp.J) == {"x2", "x3", "x4", "x5"}


@pytest.mark.benchmark(group="table1")
def test_table1_attribute_trees(benchmark):
    """The TIMEFIRST column for hierarchical queries: attribute trees."""
    chunks = []

    def build():
        chunks.clear()
        for name in ["Q_S3", "Q_S4", "Q_S5", "Q_hier"]:
            tree = AttributeTree(QUERIES[name].hypergraph)
            chunks.append(f"{name}:\n{tree.pretty()}")
        return chunks

    benchmark.pedantic(build, rounds=1, iterations=1)
    record_report("table1_attribute_trees", "\n\n".join(chunks))
    assert all("leaf[" in c for c in chunks)
