"""Ablation: the §6.3 cost-based advisor vs the structure-only planner.

The paper closes by calling for "a cost-based optimizer that is aware of
both query structure and the underlying data characteristics". This
bench runs both deciders across the regimes of Section 6.2 — dangling-
heavy synthetic data (toolkit territory), low-multiplicity TPC-style
data (BASELINE territory), small non-temporal outputs (JOINFIRST
territory) — and scores each pick against the measured truth.
"""

import time

import pytest

from repro.algorithms.registry import get_algorithm
from repro.bench.reporting import render_series
from repro.core.advisor import advise
from repro.core.errors import ReproError
from repro.core.interval import Interval
from repro.core.planner import plan
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.workloads import tpc_bih
from repro.workloads.synthetic import SyntheticConfig, generate

from conftest import record_report

CANDIDATES = ["baseline", "timefirst", "hybrid", "hybrid-interval", "joinfirst"]


def scenario_dangling_star():
    q = JoinQuery.star(4)
    return q, generate(q, SyntheticConfig(n_dangling=150, n_results=40, seed=12))


def scenario_tpc3():
    q = tpc_bih.q_tpc3()
    return q, tpc_bih.query_database(q, tpc_bih.TPCBiHConfig(n_customers=80, seed=9))


def scenario_sparse_line():
    q = JoinQuery.line(3)
    db = {}
    for name in q.edge_names:
        rows = [((f"{name}v{j}", f"{name}w{j}"), Interval(j, j + 4)) for j in range(150)]
        db[name] = TemporalRelation(name, q.edge(name), rows)
    return q, db


SCENARIOS = {
    "dangling_star": scenario_dangling_star,
    "tpc3_low_multiplicity": scenario_tpc3,
    "sparse_line": scenario_sparse_line,
}


@pytest.mark.benchmark(group="ablation")
def test_advisor_vs_planner(benchmark):
    table = {}

    def run():
        for label, builder in SCENARIOS.items():
            query, db = builder()
            timings = {}
            for name in CANDIDATES:
                fn = get_algorithm(name)
                try:
                    start = time.perf_counter()
                    fn(query, db)
                    timings[name] = time.perf_counter() - start
                except ReproError:
                    continue
            best = min(timings, key=timings.get)
            planner_pick = plan(query).algorithm
            advisor_pick = advise(query, db).best
            table[label] = {
                "best": best,
                "planner": planner_pick,
                "advisor": advisor_pick,
                "planner_penalty": timings[planner_pick] / timings[best],
                "advisor_penalty": timings[advisor_pick] / timings[best],
            }
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    labels = list(table)
    record_report(
        "ablation_advisor",
        render_series(
            "Structure-only planner vs data-aware advisor "
            "(penalty = pick's time / true best's time)",
            labels,
            {
                "planner_penalty": [table[l]["planner_penalty"] for l in labels],
                "advisor_penalty": [table[l]["advisor_penalty"] for l in labels],
            },
            x_label="scenario",
        )
        + "\n"
        + "\n".join(
            f"{l}: best={table[l]['best']}, planner={table[l]['planner']}, "
            f"advisor={table[l]['advisor']}"
            for l in labels
        ),
    )
    # Both deciders must avoid catastrophic picks (>25x) everywhere, and
    # the advisor must be sane on the regime the planner cannot see
    # (the sparse line, where JOINFIRST-style costs are tiny).
    for label, row in table.items():
        assert row["planner_penalty"] < 25, (label, row)
        assert row["advisor_penalty"] < 25, (label, row)
