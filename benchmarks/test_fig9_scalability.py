"""Figure 9: throughput vs input size on TPC-E (star) and LDBC-SNB (line).

The paper scales N (50K–1M holdings for the TPC-E star with τ = 170;
10K–2M knows-edges for the LDBC line with τ = 11) and plots *throughput*
(results per time unit). Flat curves demonstrate output-sensitivity.

Pure Python shifts the absolute scale down (see DESIGN.md), so we sweep
smaller N but assert the same shape: throughput roughly constant in N
(within an order-of-magnitude band dominated by constant factors), for
the output-sensitive algorithms TIMEFIRST / HYBRID-INTERVAL / BASELINE.
"""

import pytest

from repro.bench.harness import measure
from repro.bench.reporting import render_table
from repro.core.query import JoinQuery, self_join_database
from repro.workloads import ldbc, tpce

from conftest import record_report

TPCE_SIZES = [400, 800, 1600, 3200]
LDBC_SIZES = [300, 600, 1200, 2400]


def tpce_database(n):
    config = tpce.TPCEConfig(
        n_customers=max(40, n // 6), n_securities=max(12, n // 40),
        hot_securities=max(3, n // 200), n_holdings=n, seed=170,
    )
    holdings = tpce.generate_holdings(config)
    return tpce.star_query(3), tpce.star_database(holdings, 3)


def ldbc_database(n):
    config = ldbc.LDBCConfig(
        n_persons=max(40, n // 5), n_knows=n // 2, seed=11
    )
    rel = ldbc.knows_relation(config)
    query = JoinQuery.line(3)
    return query, self_join_database(query, rel)


CASES = {
    "tpce_star_tau170": (tpce_database, TPCE_SIZES, 170,
                         ["timefirst", "baseline"]),
    "ldbc_line_tau11": (ldbc_database, LDBC_SIZES, 11,
                        ["timefirst", "hybrid-interval", "baseline"]),
}


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("case", list(CASES))
def test_fig9_throughput_flat(benchmark, case):
    builder, sizes, tau, algorithms = CASES[case]
    rows = {}

    def run():
        for n in sizes:
            query, db = builder(n)
            rows[query.input_size(db)] = [
                measure(alg, query, db, tau=tau, measure_memory=False)
                for alg in algorithms
            ]
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        f"fig9_throughput_{case}",
        render_table(
            f"Figure 9 ({case}): throughput (results/s) vs input size N",
            rows, metric="throughput", x_label="N",
        )
        + "\n"
        + render_table(
            f"Figure 9 ({case}): raw runtime and result counts",
            rows, metric="results", x_label="N",
        ),
    )

    # Output-sensitivity: once the output dominates (largest sizes), the
    # per-result cost must not blow up — throughput at the largest N stays
    # within a small factor of the mid sizes for every algorithm.
    for alg in algorithms:
        series = [
            m.throughput
            for n in sorted(rows)
            for m in rows[n]
            if m.algorithm == alg and m.result_count > 0
        ]
        assert len(series) >= 3, f"{alg}: not enough non-empty points"
        tail = series[-3:]
        assert max(tail) < 25 * min(tail), (
            f"{case}/{alg}: throughput not flat: {series}"
        )
