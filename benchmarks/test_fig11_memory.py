"""Figure 11: peak memory on TPC-BiH per query per algorithm.

The paper's memory plot confirms the runtime story of Figure 10 (left):
on Q_tpc3 BASELINE uses the least memory (there is nothing to prune), on
Q_tpc9/Q_tpc10 the toolkit's pruning keeps memory at a fraction of
BASELINE's exploding intermediates (paper: ~20%).
"""

import pytest

from repro.bench.harness import compare_algorithms
from repro.bench.reporting import render_table
from repro.workloads import tpc_bih

from conftest import record_report

ALGORITHMS = ["baseline", "timefirst", "hybrid", "hybrid-interval"]
CONFIG = tpc_bih.TPCBiHConfig(seed=51)


@pytest.mark.benchmark(group="fig11")
def test_fig11_peak_memory(benchmark):
    database = tpc_bih.generate_database(CONFIG)
    rows = {}

    def run():
        for qname, qf in tpc_bih.ALL_QUERIES.items():
            query = qf()
            db = {n: database[n] for n in query.edge_names}
            rows[qname] = compare_algorithms(
                ALGORITHMS, query, db, tau=0, measure_memory=True,
                validate=False,
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        "fig11_memory",
        render_table(
            "Figure 11: peak memory on TPC-BiH",
            rows, metric="memory", x_label="query",
        ),
    )

    by = {
        qname: {m.algorithm: m for m in ms if m.ok} for qname, ms in rows.items()
    }
    # The explosion queries: some toolkit algorithm uses well under
    # BASELINE's peak (paper: ~20%; we assert < 60% for robustness).
    for qname in ["Q_tpc9", "Q_tpc10"]:
        base = by[qname]["baseline"].peak_bytes
        best = min(
            m.peak_bytes for name, m in by[qname].items() if name != "baseline"
        )
        assert best < 0.6 * base, (qname, best, base)
