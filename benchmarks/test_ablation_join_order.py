"""Ablation: BASELINE's join-order search (Section 6.1's "best join order").

The paper's BASELINE "always picks the best join order". This bench
quantifies what that buys on the TPC-BiH explosion query: the chosen
order versus the worst connected order, in time and in materialized
intermediate rows.
"""

import itertools
import time

import pytest

from repro.algorithms.baseline import baseline_join, choose_join_order
from repro.bench.reporting import render_series
from repro.workloads import tpc_bih

from conftest import record_report


@pytest.mark.benchmark(group="ablation")
def test_join_order_search_pays_off(benchmark):
    query = tpc_bih.q_tpc9()
    db = tpc_bih.query_database(query, tpc_bih.TPCBiHConfig(seed=52))

    results = {}

    def run():
        orders = {}
        for perm in itertools.permutations(query.edge_names):
            # connected prefixes only
            hg = query.hypergraph
            covered = set(hg.edge(perm[0]))
            ok = True
            for name in perm[1:]:
                if not (covered & set(hg.edge(name))):
                    ok = False
                    break
                covered |= set(hg.edge(name))
            if not ok:
                continue
            sizes = []
            start = time.perf_counter()
            baseline_join(query, db, order=list(perm), track_intermediates=sizes)
            orders[" ⋈ ".join(perm)] = (time.perf_counter() - start, sum(sizes))
        chosen = choose_join_order(query, db)
        results["orders"] = orders
        results["chosen"] = " ⋈ ".join(chosen)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    orders = results["orders"]
    names = list(orders)
    record_report(
        "ablation_join_order",
        render_series(
            f"BASELINE join orders on Q_tpc9 (search picked: {results['chosen']})",
            names,
            {
                "seconds": [orders[n][0] for n in names],
                "intermediate_rows": [float(orders[n][1]) for n in names],
            },
            x_label="order",
        ),
    )
    times = {name: t for name, (t, _) in orders.items()}
    chosen_time = times.get(results["chosen"])
    assert chosen_time is not None
    best = min(times.values())
    worst = max(times.values())
    # Order choice matters a lot on the explosion query...
    assert worst > 2 * best, (worst, best)
    # ...and the value-based System-R estimator cannot reliably find the
    # *temporal* optimum (here it is fooled by the version skew) — exactly
    # the gap the paper's Section 6.3 names as future work ("a cost-based
    # optimizer aware of both query structure and data characteristics").
    # We assert only that the chosen order is one of the enumerated
    # connected orders; the report shows where it landed.
    assert results["chosen"] in times
