"""Ablation: the §4.2 interval-join shortcut inside HYBRID-INTERVAL.

Algorithm 6 solves each residual join with TIMEFIRST in general, but for
a two-group Cartesian residual the paper replaces it with a plane-sweep
interval join (improving line joins from O(N²+K) to O(N^1.5+K)). The
``residual_strategy`` knob isolates exactly that substitution.
"""

import pytest

from repro.algorithms.hybrid_interval import hybrid_interval_join
from repro.bench.harness import Measurement
from repro.bench.reporting import render_table
from repro.core.query import JoinQuery
from repro.workloads.synthetic import SyntheticConfig, generate

from conftest import record_report

CONFIG = SyntheticConfig(n_dangling=350, n_results=80, seed=21)


@pytest.mark.benchmark(group="ablation")
def test_interval_join_beats_residual_sweep(benchmark):
    import time

    query = JoinQuery.line(3)
    db = generate(query, CONFIG)
    rows = {}

    def run():
        for strategy in ["auto", "sweep"]:
            start = time.perf_counter()
            result = hybrid_interval_join(query, db, residual_strategy=strategy)
            elapsed = time.perf_counter() - start
            rows[strategy] = [
                Measurement(
                    algorithm=f"residual={strategy}", seconds=elapsed,
                    peak_bytes=0, result_count=len(result),
                    input_size=query.input_size(db), tau=0,
                )
            ]
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        "ablation_interval_join",
        render_table(
            "Algorithm 6 residual strategies on the synthetic line-3 join",
            rows, metric="seconds", x_label="strategy",
        ),
    )
    auto = rows["auto"][0]
    sweep = rows["sweep"][0]
    assert auto.result_count == sweep.result_count
    # The forward-scan shortcut must not lose to spawning a sweep per
    # core tuple; on this instance it should clearly win.
    assert auto.seconds < sweep.seconds
