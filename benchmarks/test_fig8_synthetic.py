"""Figure 8: runtime (top) and peak memory (bottom) on synthetic data.

Line (Q_L4), star (Q_S4) and cyclic (Q_C4) joins over the dangling-heavy
synthetic generator, for durability thresholds τ ∈ {0 … 800}; compared
algorithms follow the paper: TIMEFIRST, HYBRID, HYBRID-INTERVAL (where
applicable) and BASELINE.

Expected shape (asserted loosely): BASELINE pays for the dangling
intermediate mass, our algorithms do not; the gap is largest on star
joins (Theorem 6's output-sensitivity) and HYBRID beats BASELINE on the
cycle; memory gaps mirror the time gaps.
"""

import pytest

from repro.bench.harness import compare_algorithms
from repro.bench.reporting import render_table
from repro.core.query import JoinQuery
from repro.workloads.synthetic import SyntheticConfig, generate

from conftest import record_report

TAUS = [0, 100, 200, 400, 800]
CONFIG = SyntheticConfig(n_dangling=300, n_results=110, seed=8)

CASES = {
    "line_QL4": (JoinQuery.line(4), ["timefirst", "hybrid", "hybrid-interval", "baseline"]),
    "star_QS4": (JoinQuery.star(4), ["timefirst", "hybrid-interval", "baseline"]),
    "cycle_QC4": (JoinQuery.cycle(4), ["timefirst", "hybrid", "baseline"]),
}


@pytest.fixture(scope="module")
def databases():
    return {name: generate(query, CONFIG) for name, (query, _) in CASES.items()}


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("case", list(CASES))
def test_fig8_runtime_and_memory(benchmark, databases, case):
    query, algorithms = CASES[case]
    db = databases[case]
    rows = {}

    def run():
        for tau in TAUS:
            rows[tau] = compare_algorithms(
                algorithms, query, db, tau=tau, measure_memory=True,
                validate=False,
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record_report(
        f"fig8_time_{case}",
        render_table(
            f"Figure 8 (top, {case}): runtime vs durability threshold",
            rows, metric="seconds", x_label="tau",
        ),
    )
    record_report(
        f"fig8_memory_{case}",
        render_table(
            f"Figure 8 (bottom, {case}): peak memory vs durability threshold",
            rows, metric="memory", x_label="tau",
        ),
    )

    # All algorithms agree on the result count at every tau.
    for tau, ms in rows.items():
        counts = {m.result_count for m in ms if m.ok}
        assert len(counts) == 1, (case, tau, [(m.algorithm, m.result_count) for m in ms])

    # Result counts decay with tau and hit 0 by tau >= max_durability.
    counts = [rows[tau][0].result_count for tau in TAUS]
    assert counts == sorted(counts, reverse=True)

    # Qualitative Figure 8 claims at tau = 0 (where the dangling mass is
    # fully active): the toolkit beats BASELINE.
    at0 = {m.algorithm: m for m in rows[0]}
    baseline = at0["baseline"]
    best_ours = min(
        (m for name, m in at0.items() if name != "baseline"),
        key=lambda m: m.seconds,
    )
    assert best_ours.seconds < baseline.seconds, (
        f"{case}: best toolkit {best_ours.algorithm}={best_ours.seconds:.3f}s "
        f"not faster than baseline {baseline.seconds:.3f}s"
    )
    if case == "star_QS4":
        # The star gap is the headline (paper: up to 60× time, 1000× memory).
        assert at0["timefirst"].seconds * 3 < baseline.seconds
        assert at0["timefirst"].peak_bytes * 3 < baseline.peak_bytes
