"""Figure 4 validation: measured scaling exponents vs the theory table.

The paper's complexity summary (Figure 4) promises:

* hierarchical temporal joins in O(N log N + K)  → measured exponent ≈ 1
  when K = Θ(N);
* the join-first / pairwise strategies degrade to the intermediate- or
  match-count growth, quadratic on adversarial instances → exponent ≈ 2.

We sweep N on instances engineered to keep K linear in N (so the
output term does not mask the input term) and fit log(time) ~ log(N).
Exponent bands are generous — wall-clock fits on small N are noisy — but
wide enough apart to separate linear from quadratic behaviour.
"""

import time

import pytest

from repro.bench.harness import scaling_exponent
from repro.bench.reporting import render_series
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.algorithms.registry import get_algorithm

from conftest import record_report

SIZES = [400, 800, 1600, 3200]


def star_instance(n):
    """Star join where K = n (each hub row pairs once) — linear output."""
    q = JoinQuery.star(3)
    db = {}
    for i in (1, 2, 3):
        rows = [((f"v{j}", f"h{j}"), Interval(j * 10, j * 10 + 5)) for j in range(n)]
        db[f"R{i}"] = TemporalRelation(f"R{i}", (f"x{i}", "y"), rows)
    return q, db


def joinfirst_trap(n):
    """Line-2 with a single hub value: n² value matches, zero temporal."""
    q = JoinQuery.line(2)
    left = [((f"a{i}", "hub"), Interval(2 * i, 2 * i + 1)) for i in range(n)]
    right = [
        (("hub", f"b{i}"), Interval(100000 + 2 * i, 100000 + 2 * i + 1))
        for i in range(n)
    ]
    return q, {
        "R1": TemporalRelation("R1", ("x1", "x2"), left),
        "R2": TemporalRelation("R2", ("x2", "x3"), right),
    }


def _sweep(builder, algorithm, sizes, repeat=3):
    fn = get_algorithm(algorithm)
    # Warm up caches (planner widths, attribute trees) off the clock.
    q, db = builder(sizes[0])
    fn(q, db)
    times = []
    for n in sizes:
        q, db = builder(n)
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn(q, db)
            best = min(best, time.perf_counter() - start)
        times.append(best)
    return times


@pytest.mark.benchmark(group="ablation")
def test_scaling_hierarchical_near_linear(benchmark):
    times = benchmark.pedantic(
        _sweep, args=(star_instance, "timefirst", SIZES), rounds=1, iterations=1
    )
    exponent = scaling_exponent(SIZES, times)
    record_report(
        "ablation_scaling_hierarchical",
        render_series(
            f"Hierarchical TIMEFIRST scaling (measured exponent {exponent:.2f}, "
            "theory 1 + log factor)",
            SIZES, {"seconds": times}, x_label="N",
        ),
    )
    assert exponent < 1.6, f"hierarchical sweep should be near-linear, got N^{exponent:.2f}"


@pytest.mark.benchmark(group="ablation")
def test_scaling_joinfirst_quadratic_on_trap(benchmark):
    sizes = [200, 400, 800, 1600]
    times = benchmark.pedantic(
        _sweep, args=(joinfirst_trap, "joinfirst", sizes), rounds=1, iterations=1
    )
    exponent = scaling_exponent(sizes, times)
    record_report(
        "ablation_scaling_joinfirst",
        render_series(
            f"JOINFIRST on the hub trap (measured exponent {exponent:.2f}, "
            "theory 2: it enumerates every value match)",
            sizes, {"seconds": times}, x_label="N",
        ),
    )
    assert exponent > 1.5, f"joinfirst should be ~quadratic here, got N^{exponent:.2f}"


@pytest.mark.benchmark(group="ablation")
def test_scaling_timefirst_escapes_the_trap(benchmark):
    sizes = [200, 400, 800, 1600]
    times = benchmark.pedantic(
        _sweep, args=(joinfirst_trap, "timefirst", sizes), rounds=1, iterations=1
    )
    exponent = scaling_exponent(sizes, times)
    record_report(
        "ablation_scaling_timefirst_trap",
        render_series(
            f"TIMEFIRST on the same trap (measured exponent {exponent:.2f}; "
            "output-sensitive: K = 0 here)",
            sizes, {"seconds": times}, x_label="N",
        ),
    )
    assert exponent < 1.6, f"timefirst should stay near-linear, got N^{exponent:.2f}"
