"""Ablation: hashed vs comparison-model §3.2 structures.

The paper analyzes the Theorem 6 structure in the comparison model
(BST indexes + t⁺ min-heaps, O(log N) per operation); the production
state here uses hash maps (expected O(1)). Both are exact; this bench
measures the constant-factor gap on a star-join sweep and checks both
scale near-linearly.
"""

import time

import pytest

from repro.algorithms.registry import get_algorithm
from repro.bench.harness import scaling_exponent
from repro.bench.reporting import render_series
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation

from conftest import record_report

SIZES = [400, 800, 1600, 3200]


def star_instance(n):
    q = JoinQuery.star(3)
    db = {}
    for i in (1, 2, 3):
        rows = [
            ((j, f"h{j % (n // 8 + 1)}"), Interval(j % 97, j % 97 + 40))
            for j in range(n)
        ]
        db[f"R{i}"] = TemporalRelation(f"R{i}", (f"x{i}", "y"), rows)
    return q, db


@pytest.mark.benchmark(group="ablation")
def test_hashed_vs_comparison_model(benchmark):
    results = {}

    def run():
        for name in ["timefirst", "timefirst-cm"]:
            fn = get_algorithm(name)
            q, db = star_instance(SIZES[0])
            fn(q, db)  # warm caches off the clock
            times = []
            for n in SIZES:
                q, db = star_instance(n)
                best = float("inf")
                for _ in range(2):
                    start = time.perf_counter()
                    out = fn(q, db)
                    best = min(best, time.perf_counter() - start)
                times.append(best)
            results[name] = (times, len(out))
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        "ablation_datastructure",
        render_series(
            "Hashed vs comparison-model hierarchical state (star sweep)",
            SIZES,
            {name: times for name, (times, _) in results.items()},
            x_label="N",
        ),
    )
    hashed_times, hashed_k = results["timefirst"]
    cm_times, cm_k = results["timefirst-cm"]
    assert hashed_k == cm_k  # same answers
    # Both near-linear (the log factor hides in the noise band).
    assert scaling_exponent(SIZES, hashed_times) < 1.7
    assert scaling_exponent(SIZES, cm_times) < 1.8
    # The comparison model pays a constant factor, not an asymptotic one.
    assert cm_times[-1] < 25 * hashed_times[-1]
