"""Tests for the measurement harness and reporting."""

import math

from repro.bench.harness import (
    Measurement,
    compare_algorithms,
    measure,
    measure_scaling,
    scaling_exponent,
)
from repro.bench.reporting import (
    format_bytes,
    format_seconds,
    render_ratio_table,
    render_scaling_table,
    render_series,
    render_stats_table,
    render_table,
)
from repro.obs import ExecutionStats
from repro.core.query import JoinQuery

from conftest import random_database


class TestMeasure:
    def test_measure_fields(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=10, domain=3)
        m = measure("timefirst", q, db)
        assert m.algorithm == "timefirst"
        assert m.seconds > 0
        assert m.peak_bytes > 0
        assert m.result_count >= 0
        assert m.input_size == q.input_size(db)
        assert m.ok

    def test_memory_can_be_skipped(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=8, domain=3)
        m = measure("timefirst", q, db, measure_memory=False)
        assert m.peak_bytes == 0

    def test_throughput(self):
        m = Measurement("x", seconds=2.0, peak_bytes=0, result_count=10,
                        input_size=5, tau=0)
        assert m.throughput == 5.0

    def test_throughput_zero_results_zero_seconds_is_zero(self):
        # A zero-result cell measured at 0 s used to report inf results/s.
        m = Measurement("x", seconds=0.0, peak_bytes=0, result_count=0,
                        input_size=5, tau=0)
        assert m.throughput == 0.0

    def test_throughput_zero_results_positive_seconds_is_zero(self):
        m = Measurement("x", seconds=1.5, peak_bytes=0, result_count=0,
                        input_size=5, tau=0)
        assert m.throughput == 0.0

    def test_throughput_positive_results_zero_seconds_stays_inf(self):
        m = Measurement("x", seconds=0.0, peak_bytes=0, result_count=3,
                        input_size=5, tau=0)
        assert m.throughput == float("inf")

    def test_shared_kwargs_stripped_per_algorithm(self, rng):
        # One common kwargs dict aimed at algorithms with differing
        # signatures: baseline accepts order=, timefirst does not;
        # workers= is a dispatch-level kwarg every algorithm tolerates.
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=10, domain=3)
        common = dict(
            workers=2, parallel_mode="inline", order=("R3", "R2", "R1")
        )
        counts = set()
        for name in ("timefirst", "baseline", "joinfirst"):
            m = measure(name, q, db, measure_memory=False, **common)
            assert m.ok
            assert m.workers == 2
            counts.add(m.result_count)
        assert len(counts) == 1

    def test_measure_with_workers_collects_parallel_stats(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=12, domain=3)
        m = measure(
            "timefirst", q, db, measure_memory=False, collect_stats=True,
            workers=2, parallel_mode="inline",
        )
        assert m.stats is not None
        assert m.stats.get("parallel.shards", 0) >= 1

    def test_stats_off_by_default(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=8, domain=3)
        m = measure("timefirst", q, db, measure_memory=False)
        assert m.stats is None

    def test_collect_stats(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=8, domain=3)
        m = measure(
            "timefirst", q, db, measure_memory=False, collect_stats=True
        )
        assert m.stats is not None
        assert m.stats["results"] == m.result_count
        assert m.stats["sweep.events"] == 2 * m.input_size


class TestCompare:
    def test_cross_validation_passes(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=10, domain=3)
        ms = compare_algorithms(
            ["timefirst", "baseline", "hybrid-interval"], q, db,
            measure_memory=False,
        )
        assert all(m.ok for m in ms)
        assert len({m.result_count for m in ms}) == 1

    def test_inapplicable_algorithm_reported_not_raised(self, rng):
        q = JoinQuery.triangle()
        db = random_database(q, rng, n=8, domain=3)
        ms = compare_algorithms(
            ["hybrid", "hybrid-interval"], q, db, measure_memory=False
        )
        by_name = {m.algorithm: m for m in ms}
        assert by_name["hybrid"].ok
        assert not by_name["hybrid-interval"].ok
        assert "guarded" in by_name["hybrid-interval"].note


class TestCompareSharedKwargs:
    def test_common_workers_dict_across_signatures(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=10, domain=3)
        ms = compare_algorithms(
            ["timefirst", "baseline", "joinfirst"], q, db,
            measure_memory=False, workers=2, parallel_mode="inline",
        )
        assert all(m.ok for m in ms)
        assert len({m.result_count for m in ms}) == 1
        assert all(m.workers == 2 for m in ms)


class TestMeasureScaling:
    def test_scaling_cells_agree_and_carry_workers(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=12, domain=3)
        ms = measure_scaling(
            "timefirst", q, db, workers_list=(1, 2, 3),
            parallel_mode="inline",
        )
        assert [m.workers for m in ms] == [1, 2, 3]
        assert all(m.ok for m in ms)
        assert len({m.result_count for m in ms}) == 1

    def test_render_scaling_table(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=10, domain=3)
        ms = measure_scaling(
            "timefirst", q, db, workers_list=(1, 2), parallel_mode="inline"
        )
        text = render_scaling_table("Scaling", {"timefirst": ms})
        assert "workers=1" in text and "workers=2" in text
        assert "×1.00" in text  # the serial anchor's own speedup

    def test_render_scaling_table_flags_mismatch(self):
        a = Measurement("x", 0.2, 0, 5, 50, 0, workers=1)
        b = Measurement("x", 0.1, 0, 5, 50, 0, workers=2, ok=False,
                        note="RESULT MISMATCH vs workers=1")
        text = render_scaling_table("Scaling", {"x": [a, b]})
        assert "MISMATCH" in text


class TestScalingExponent:
    def test_linear(self):
        sizes = [100, 200, 400, 800]
        times = [0.1 * s for s in sizes]
        assert math.isclose(scaling_exponent(sizes, times), 1.0, abs_tol=1e-6)

    def test_quadratic(self):
        sizes = [100, 200, 400]
        times = [1e-6 * s * s for s in sizes]
        assert math.isclose(scaling_exponent(sizes, times), 2.0, abs_tol=1e-6)


class TestReporting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MiB"

    def test_format_seconds(self):
        assert format_seconds(0.5e-4).endswith("µs")
        assert format_seconds(0.05).endswith("ms")
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(float("nan")) == "n/a"

    def _measurements(self):
        a = Measurement("timefirst", 0.1, 1000, 5, 50, 0)
        b = Measurement("baseline", 0.2, 4000, 5, 50, 0)
        return {0: [a, b], 100: [a, b]}

    def test_render_table(self):
        text = render_table("Fig", self._measurements(), metric="seconds", x_label="tau")
        assert "timefirst" in text and "baseline" in text
        assert "100" in text

    def test_render_table_memory(self):
        text = render_table("Fig", self._measurements(), metric="memory")
        assert "KiB" in text

    def test_render_ratio_table(self):
        text = render_ratio_table("Fig10", self._measurements(), x_label="tau")
        assert "0.50" in text  # timefirst/baseline = 0.5
        assert "baseline" not in text.splitlines()[3]

    def test_render_series(self):
        text = render_series("Fig1", [0, 1], {"path2": [10.0, 5.0]}, x_label="tau")
        assert "path2" in text and "10" in text

    def test_render_stats_table(self):
        a = Measurement("timefirst", 0.1, 0, 5, 50, 0)
        a.stats = ExecutionStats()
        a.stats.incr("sweep.events", 100)
        b = Measurement("baseline", 0.2, 0, 5, 50, 0)  # no stats collected
        text = render_stats_table("Counters", {0: [a, b]}, x_label="tau")
        assert "sweep.events" in text
        assert "100" in text
        assert "timefirst" in text and "baseline" in text

    def test_render_stats_table_column_filter(self):
        a = Measurement("timefirst", 0.1, 0, 5, 50, 0)
        a.stats = ExecutionStats()
        a.stats.incr("sweep.events", 100)
        a.stats.incr("results", 5)
        text = render_stats_table("Counters", {0: [a]}, counters=["results"])
        assert "results" in text
        assert "sweep.events" not in text
