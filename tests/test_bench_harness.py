"""Tests for the measurement harness and reporting."""

import math

from repro.bench.harness import Measurement, compare_algorithms, measure, scaling_exponent
from repro.bench.reporting import (
    format_bytes,
    format_seconds,
    render_ratio_table,
    render_series,
    render_stats_table,
    render_table,
)
from repro.obs import ExecutionStats
from repro.core.query import JoinQuery

from conftest import random_database


class TestMeasure:
    def test_measure_fields(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=10, domain=3)
        m = measure("timefirst", q, db)
        assert m.algorithm == "timefirst"
        assert m.seconds > 0
        assert m.peak_bytes > 0
        assert m.result_count >= 0
        assert m.input_size == q.input_size(db)
        assert m.ok

    def test_memory_can_be_skipped(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=8, domain=3)
        m = measure("timefirst", q, db, measure_memory=False)
        assert m.peak_bytes == 0

    def test_throughput(self):
        m = Measurement("x", seconds=2.0, peak_bytes=0, result_count=10,
                        input_size=5, tau=0)
        assert m.throughput == 5.0

    def test_stats_off_by_default(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=8, domain=3)
        m = measure("timefirst", q, db, measure_memory=False)
        assert m.stats is None

    def test_collect_stats(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=8, domain=3)
        m = measure(
            "timefirst", q, db, measure_memory=False, collect_stats=True
        )
        assert m.stats is not None
        assert m.stats["results"] == m.result_count
        assert m.stats["sweep.events"] == 2 * m.input_size


class TestCompare:
    def test_cross_validation_passes(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=10, domain=3)
        ms = compare_algorithms(
            ["timefirst", "baseline", "hybrid-interval"], q, db,
            measure_memory=False,
        )
        assert all(m.ok for m in ms)
        assert len({m.result_count for m in ms}) == 1

    def test_inapplicable_algorithm_reported_not_raised(self, rng):
        q = JoinQuery.triangle()
        db = random_database(q, rng, n=8, domain=3)
        ms = compare_algorithms(
            ["hybrid", "hybrid-interval"], q, db, measure_memory=False
        )
        by_name = {m.algorithm: m for m in ms}
        assert by_name["hybrid"].ok
        assert not by_name["hybrid-interval"].ok
        assert "guarded" in by_name["hybrid-interval"].note


class TestScalingExponent:
    def test_linear(self):
        sizes = [100, 200, 400, 800]
        times = [0.1 * s for s in sizes]
        assert math.isclose(scaling_exponent(sizes, times), 1.0, abs_tol=1e-6)

    def test_quadratic(self):
        sizes = [100, 200, 400]
        times = [1e-6 * s * s for s in sizes]
        assert math.isclose(scaling_exponent(sizes, times), 2.0, abs_tol=1e-6)


class TestReporting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MiB"

    def test_format_seconds(self):
        assert format_seconds(0.5e-4).endswith("µs")
        assert format_seconds(0.05).endswith("ms")
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(float("nan")) == "n/a"

    def _measurements(self):
        a = Measurement("timefirst", 0.1, 1000, 5, 50, 0)
        b = Measurement("baseline", 0.2, 4000, 5, 50, 0)
        return {0: [a, b], 100: [a, b]}

    def test_render_table(self):
        text = render_table("Fig", self._measurements(), metric="seconds", x_label="tau")
        assert "timefirst" in text and "baseline" in text
        assert "100" in text

    def test_render_table_memory(self):
        text = render_table("Fig", self._measurements(), metric="memory")
        assert "KiB" in text

    def test_render_ratio_table(self):
        text = render_ratio_table("Fig10", self._measurements(), x_label="tau")
        assert "0.50" in text  # timefirst/baseline = 0.5
        assert "baseline" not in text.splitlines()[3]

    def test_render_series(self):
        text = render_series("Fig1", [0, 1], {"path2": [10.0, 5.0]}, x_label="tau")
        assert "path2" in text and "10" in text

    def test_render_stats_table(self):
        a = Measurement("timefirst", 0.1, 0, 5, 50, 0)
        a.stats = ExecutionStats()
        a.stats.incr("sweep.events", 100)
        b = Measurement("baseline", 0.2, 0, 5, 50, 0)  # no stats collected
        text = render_stats_table("Counters", {0: [a, b]}, x_label="tau")
        assert "sweep.events" in text
        assert "100" in text
        assert "timefirst" in text and "baseline" in text

    def test_render_stats_table_column_filter(self):
        a = Measurement("timefirst", 0.1, 0, 5, 50, 0)
        a.stats = ExecutionStats()
        a.stats.incr("sweep.events", 100)
        a.stats.incr("results", 5)
        text = render_stats_table("Counters", {0: [a]}, counters=["results"])
        assert "results" in text
        assert "sweep.events" not in text
