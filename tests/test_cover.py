"""Tests for fractional edge covers and ρ(Q) (LP (3) of the paper)."""

import math

import pytest

from repro.core.hypergraph import Hypergraph
from repro.core.query import JoinQuery
from repro.nontemporal.cover import (
    agm_bound,
    fractional_edge_cover,
    integral_edge_cover,
    rho,
)


class TestRho:
    def test_single_edge(self):
        assert rho(Hypergraph({"R": ("a", "b", "c")})) == 1.0

    def test_triangle_is_1_5(self):
        # The classic: ρ(Q_Δ) = 3/2.
        assert rho(JoinQuery.triangle().hypergraph) == 1.5

    @pytest.mark.parametrize("n,expected", [(4, 2.0), (5, 2.5), (6, 3.0)])
    def test_cycles(self, n, expected):
        assert rho(JoinQuery.cycle(n).hypergraph) == expected

    def test_line_join(self):
        # Line n: ρ = ceil((n+1)/2) edges... as fractional: matching-based,
        # ρ(L3) = 2 (R1 and R3 cover everything).
        assert rho(JoinQuery.line(3).hypergraph) == 2.0

    def test_star(self):
        # Star n: every leaf attribute forces its own edge: ρ = n... but the
        # center is covered for free: ρ(S3) = 3.
        assert rho(JoinQuery.star(3).hypergraph) == 3.0

    def test_weights_form_feasible_cover(self):
        hg = JoinQuery.bowtie().hypergraph
        value, weights = fractional_edge_cover(hg)
        for attr in hg.attrs:
            total = sum(weights[n] for n in hg.edges_of(attr))
            assert total >= 1 - 1e-7
        assert math.isclose(value, sum(weights.values()), rel_tol=1e-6)

    def test_rho_at_most_integral_cover(self):
        for query in [JoinQuery.line(4), JoinQuery.cycle(5), JoinQuery.bowtie()]:
            hg = query.hypergraph
            integral_size, _ = integral_edge_cover(hg)
            assert rho(hg) <= integral_size + 1e-9


class TestIntegralCover:
    def test_line3(self):
        size, chosen = integral_edge_cover(JoinQuery.line(3).hypergraph)
        assert size == 2
        assert set(chosen) == {"R1", "R3"}

    def test_triangle(self):
        size, _ = integral_edge_cover(JoinQuery.triangle().hypergraph)
        assert size == 2

    def test_single_edge(self):
        size, chosen = integral_edge_cover(Hypergraph({"R": ("a",)}))
        assert size == 1 and chosen == ["R"]


class TestAGM:
    def test_triangle_bound(self):
        hg = JoinQuery.triangle().hypergraph
        bound = agm_bound(hg, {"R1": 100, "R2": 100, "R3": 100})
        assert math.isclose(bound, 100**1.5, rel_tol=1e-6)

    def test_single_edge_bound_is_size(self):
        hg = Hypergraph({"R": ("a", "b")})
        assert math.isclose(agm_bound(hg, {"R": 57}), 57.0, rel_tol=1e-6)

    def test_zero_size_clamped(self):
        hg = Hypergraph({"R": ("a",)})
        assert agm_bound(hg, {"R": 0}) == 1.0
