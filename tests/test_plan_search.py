"""Optimality oracle, metamorphic and budget-degradation tests for the
exact minimum-width decomposition search (``repro.nontemporal.search``).

The oracle cross-checks the branch-and-bound against the exhaustive
partition enumeration on hypothesis-generated hypergraphs: the widths
must agree exactly *and* the returned GHD must be the identical
partition (the search promises enumeration's tie-breaks, which the
Figure-6/Table-1 shape pins ride on). The metamorphic suite pins the
renaming invariance of the persistent cache key, and the budget tests
pin the graceful-degradation contract: an exhausted budget yields a
valid best-found plan flagged ``optimal=False``, never an error.
"""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.plans import verify_ghd
from repro.core.errors import QueryError
from repro.core.hypergraph import Hypergraph
from repro.core.planner import _CACHES, plan
from repro.core.plancache import PlanCache, cache_key
from repro.core.query import JoinQuery
from repro.nontemporal.ghd import (
    MAX_ENUMERATION_EDGES,
    enumerate_partition_ghds,
    fhtw,
    fhtw_ghd,
    hhtw,
    hhtw_ghd,
)
from repro.nontemporal.search import (
    SEARCH_MODES,
    clear_search_memo,
    exact_ghd_search,
    greedy_ghd,
    min_width_ghd,
)
from repro.obs import ExecutionStats

ATTRS = ["a", "b", "c", "d", "e", "f"]


@pytest.fixture(autouse=True)
def fresh_search_state():
    """Every test starts memo-cold so node counters are deterministic."""
    clear_search_memo()
    _CACHES.clear()
    yield
    clear_search_memo()
    _CACHES.clear()


@st.composite
def hypergraphs(draw, max_edges=6):
    """Random hypergraphs with at most 6 edges over a 6-attr universe."""
    n_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = {}
    for i in range(n_edges):
        size = draw(st.integers(min_value=1, max_value=3))
        attrs = draw(
            st.lists(st.sampled_from(ATTRS), min_size=size, max_size=size,
                     unique=True)
        )
        edges[f"R{i}"] = tuple(attrs)
    return Hypergraph(edges)


def partition_of(ghd):
    """A GHD's home-group partition as a comparable set of edge sets."""
    return frozenset(frozenset(g) for g in ghd.groups.values())


# ----------------------------------------------------------------------
# Optimality oracle: exact == enumeration, witness re-verified
# ----------------------------------------------------------------------
class TestOptimalityOracle:
    @settings(max_examples=50, deadline=None)
    @given(hypergraphs())
    def test_exact_matches_enumeration_width(self, hg):
        clear_search_memo()
        exact = min_width_ghd(hg, hierarchical=False, search="exact")
        brute = min_width_ghd(hg, hierarchical=False, search="enumerate")
        assert exact.optimal
        assert exact.width == brute.width
        verify_ghd(exact.ghd)

    @settings(max_examples=50, deadline=None)
    @given(hypergraphs())
    def test_exact_matches_enumeration_hierarchical(self, hg):
        clear_search_memo()
        exact = min_width_ghd(hg, hierarchical=True, search="exact")
        brute = min_width_ghd(hg, hierarchical=True, search="enumerate")
        assert exact.optimal
        assert exact.width == brute.width
        assert exact.ghd.is_hierarchical()
        verify_ghd(exact.ghd)

    @settings(max_examples=50, deadline=None)
    @given(hypergraphs())
    def test_exact_returns_the_identical_partition(self, hg):
        # Stronger than width equality: the search promises the very
        # same winner (enumeration order + tie-breaks preserved), which
        # is what keeps the Figure-6/Table-1 GHD shape pins stable.
        clear_search_memo()
        exact = min_width_ghd(hg, hierarchical=False, search="exact")
        brute = min_width_ghd(hg, hierarchical=False, search="enumerate")
        assert partition_of(exact.ghd) == partition_of(brute.ghd)

    @settings(max_examples=50, deadline=None)
    @given(hypergraphs())
    def test_width_functions_agree_across_engines(self, hg):
        clear_search_memo()
        assert fhtw(hg, search="exact") == fhtw(hg, search="enumerate")
        assert hhtw(hg, search="exact") == hhtw(hg, search="enumerate")

    @settings(max_examples=50, deadline=None)
    @given(hypergraphs())
    def test_greedy_is_a_sound_upper_bound(self, hg):
        clear_search_memo()
        greedy = min_width_ghd(hg, hierarchical=False, search="greedy")
        exact = min_width_ghd(hg, hierarchical=False, search="exact")
        assert not greedy.optimal
        assert greedy.width >= exact.width
        verify_ghd(greedy.ghd)

    def test_named_families_pin_widths(self):
        # The Table 1 anchor shapes, both engines, exact equality.
        for query in [
            JoinQuery.line(3),
            JoinQuery.star(3),
            JoinQuery.triangle(),
            JoinQuery.cycle(4),
            JoinQuery.bowtie(),
            JoinQuery.hier(),
        ]:
            hg = query.hypergraph
            clear_search_memo()
            fw, fg = fhtw_ghd(hg, search="exact")
            hw, hgh = hhtw_ghd(hg, search="exact")
            assert fw == fhtw(hg, search="enumerate")
            assert hw == hhtw(hg, search="enumerate")
            verify_ghd(fg)
            verify_ghd(hgh)
            assert hgh.is_hierarchical()


# ----------------------------------------------------------------------
# Search-engine mechanics: modes, memo, counters
# ----------------------------------------------------------------------
class TestSearchMechanics:
    def test_unknown_mode_is_a_query_error(self):
        hg = JoinQuery.triangle().hypergraph
        with pytest.raises(QueryError, match="unknown search mode"):
            min_width_ghd(hg, search="annealing")
        assert set(SEARCH_MODES) == {"exact", "greedy", "enumerate"}

    def test_cold_search_expands_nodes_memo_hit_reports_zero(self):
        hg = JoinQuery.cycle(4).hypergraph
        cold = min_width_ghd(hg, hierarchical=False, search="exact")
        assert cold.nodes > 0
        warm = min_width_ghd(hg, hierarchical=False, search="exact")
        assert warm.nodes == 0
        assert warm.lb_prunes == 0
        assert warm.width == cold.width
        assert warm.optimal

    def test_lower_bound_actually_prunes(self):
        # cycle(4) is small enough to check by hand: the branch-and-
        # bound must visit strictly fewer leaves than Bell(4) = 15
        # partitions while still matching enumeration's answer.
        hg = JoinQuery.cycle(4).hypergraph
        res = exact_ghd_search(hg)
        assert res.optimal
        assert res.lb_prunes > 0
        assert res.width == min_width_ghd(hg, search="enumerate").width

    def test_greedy_ghd_is_valid_and_hierarchical_on_request(self):
        hg = JoinQuery.bowtie().hypergraph
        plain = greedy_ghd(hg)
        assert plain.is_valid()
        hier = greedy_ghd(hg, hierarchical=True)
        assert hier.is_valid()
        assert hier.is_hierarchical()


# ----------------------------------------------------------------------
# Enumeration guard: Bell-number blowup refused, search still works
# ----------------------------------------------------------------------
class TestEnumerationGuard:
    def test_enumerate_refuses_large_queries_eagerly(self):
        hg = JoinQuery.cycle(MAX_ENUMERATION_EDGES + 4).hypergraph
        with pytest.raises(QueryError, match="Bell-number"):
            enumerate_partition_ghds(hg)
        with pytest.raises(QueryError, match="Bell-number"):
            min_width_ghd(hg, search="enumerate")

    def test_twelve_edge_cycle_exact_search_under_budget(self):
        # The regression the guard exists for: cycle(12) has ~4.2M set
        # partitions and used to hang the enumerator. The budgeted
        # branch-and-bound must return a *valid* decomposition promptly
        # instead (possibly without an optimality proof).
        hg = JoinQuery.cycle(12).hypergraph
        res = min_width_ghd(
            hg, hierarchical=False, search="exact", budget=5000
        )
        assert res.ghd.is_valid()
        verify_ghd(res.ghd)
        assert res.width >= 1.0
        assert res.nodes <= 5000
        if not res.optimal:
            assert res.reason is not None

    def test_twelve_edge_cycle_time_budget(self):
        hg = JoinQuery.cycle(12).hypergraph
        res = exact_ghd_search(hg, time_budget=0.5)
        assert res.ghd.is_valid()
        verify_ghd(res.ghd)


# ----------------------------------------------------------------------
# Metamorphic suite: renamings and permutations hit the same plan
# ----------------------------------------------------------------------
class TestMetamorphic:
    def _renamed(self, query, prefix="S"):
        """The same shape under fresh relation names."""
        return JoinQuery(
            {
                f"{prefix}{i}": query.edge(name)
                for i, name in enumerate(query.edge_names)
            }
        )

    def _permuted(self, query):
        """The same query with the output attribute order reversed."""
        return JoinQuery(
            {name: query.edge(name) for name in query.edge_names},
            attr_order=tuple(reversed(query.attrs)),
        )

    @pytest.mark.parametrize(
        "family",
        [JoinQuery.triangle, lambda: JoinQuery.cycle(4), JoinQuery.bowtie,
         JoinQuery.hier],
        ids=["triangle", "cycle4", "bowtie", "hier"],
    )
    def test_renaming_preserves_widths_and_cache_key(self, family):
        query = family()
        other = self._renamed(query)
        base = plan(query)
        twin = plan(other)
        assert twin.fhtw == base.fhtw
        assert twin.hhtw == base.hhtw
        assert twin.exponent == base.exponent
        assert twin.query_class == base.query_class
        assert cache_key(other.hypergraph) == cache_key(query.hypergraph)

    def test_attr_permutation_preserves_widths_and_cache_key(self):
        query = JoinQuery.cycle(4)
        other = self._permuted(query)
        base = plan(query)
        twin = plan(other)
        assert twin.fhtw == base.fhtw
        assert twin.hhtw == base.hhtw
        assert cache_key(other.hypergraph) == cache_key(query.hypergraph)

    def test_renamed_query_hits_the_persistent_cache(self, tmp_path):
        # The whole point of the renaming-invariant key: a renamed twin
        # planned in the same cache performs zero search work.
        cache = PlanCache(str(tmp_path / "plans"))
        query = JoinQuery.cycle(4)
        cold = ExecutionStats()
        plan(query, cache=cache, stats=cold)
        assert cold.get("planner.cache_misses") == 1
        assert cold.get("planner.cache_hits") == 0

        clear_search_memo()
        warm = ExecutionStats()
        plan(self._renamed(query), cache=cache, stats=warm)
        assert warm.get("planner.cache_hits") == 1
        assert warm.get("planner.cache_misses") == 0
        assert warm.get("planner.search_nodes") == 0


# ----------------------------------------------------------------------
# Budget degradation: best-found plan, flagged, never an error
# ----------------------------------------------------------------------
class TestBudgetDegradation:
    def test_budget_one_degrades_to_greedy_plan(self):
        query = JoinQuery.cycle(4)
        stats = ExecutionStats()
        degraded = plan(query, budget=1, stats=stats)
        assert degraded.optimal is False
        assert degraded.fhtw_witness.is_valid()
        assert degraded.hhtw_witness.is_valid()
        assert degraded.hhtw_witness.is_hierarchical()
        assert "planner.budget_exhausted" in stats.notes
        assert "node budget" in stats.notes["planner.budget_exhausted"]
        assert any("best-found upper bounds" in n for n in degraded.notes)

    def test_degraded_widths_are_upper_bounds(self):
        query = JoinQuery.cycle(4)
        degraded = plan(query, budget=1)
        clear_search_memo()
        full = plan(query)
        assert full.optimal
        assert degraded.fhtw >= full.fhtw
        assert degraded.hhtw >= full.hhtw

    def test_explain_surfaces_the_degradation(self):
        degraded = plan(JoinQuery.cycle(4), budget=1)
        text = degraded.explain()
        assert "optimal    : no" in text
        assert "best-found upper bounds" in text
        full = plan(JoinQuery.triangle())
        assert "optimal    : no" not in full.explain()

    def test_budget_truncated_results_are_not_memoized(self):
        # A later unbudgeted call must still be able to prove optimality.
        hg = JoinQuery.cycle(4).hypergraph
        truncated = min_width_ghd(hg, search="exact", budget=1)
        assert not truncated.optimal
        retried = min_width_ghd(hg, search="exact")
        assert retried.optimal
        assert retried.nodes > 0

    def test_env_budget_is_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER_BUDGET", "soon")
        with pytest.raises(QueryError, match="REPRO_PLANNER_BUDGET"):
            plan(JoinQuery.triangle())

    def test_env_budget_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER_BUDGET", "1")
        degraded = plan(JoinQuery.cycle(4))
        assert degraded.optimal is False

    def test_env_search_mode_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_SEARCH", "greedy")
        greedy = plan(JoinQuery.cycle(4))
        assert greedy.optimal is False
        monkeypatch.setenv("REPRO_PLAN_SEARCH", "bogus")
        with pytest.raises(QueryError, match="unknown search mode"):
            plan(JoinQuery.cycle(4))


# ----------------------------------------------------------------------
# Planner counters land in stats
# ----------------------------------------------------------------------
class TestPlannerCounters:
    def test_cold_plan_records_search_work(self):
        stats = ExecutionStats()
        plan(JoinQuery.cycle(4), stats=stats)
        assert stats.get("planner.search_nodes") > 0
        assert stats.get("planner.lb_prunes") > 0
        assert "phase.planner.search" in stats.timers

    def test_memo_warm_plan_records_zero_nodes(self):
        plan(JoinQuery.cycle(4))
        stats = ExecutionStats()
        plan(JoinQuery.cycle(4), stats=stats)
        assert stats.get("planner.search_nodes") == 0
        assert stats.get("planner.lb_prunes") == 0

    def test_cache_counters_only_emitted_when_cache_configured(self):
        stats = ExecutionStats()
        plan(JoinQuery.cycle(4), stats=stats)
        assert "planner.cache_hits" not in stats
        assert "planner.cache_misses" not in stats
