"""Tests for the bench-planner entry point and its regression gate."""

import json

from repro.bench.planner import (
    FLEET,
    MIN_AMORTIZATION,
    check_against_baseline,
    main,
    run_bench,
)


def _tiny_doc():
    return run_bench(repeat=1)


def _pinned_doc():
    # Gate-logic tests compare ratios, not machines: pin the measured
    # amortization so timing noise cannot change which rule fires.
    doc = _tiny_doc()
    for cell in doc["cells"]:
        cell["amortized_speedup"] = 20.0
    return doc


class TestRunBench:
    def test_document_shape(self):
        doc = _tiny_doc()
        assert doc["benchmark"] == "planner"
        (cell,) = doc["cells"]
        assert cell["ok"], cell
        assert cell["queries"] == len(FLEET)
        assert cell["fleet"] == [name for name, _ in FLEET]
        assert cell["cold_seconds"] > 0
        assert cell["warm_seconds"] > 0
        # The cache contract the gate enforces, measured for real here:
        # the warm arm searches nothing and hits on every query.
        assert cell["cold"]["search_nodes"] > 0
        assert cell["warm"]["search_nodes"] == 0
        assert cell["warm"]["cache_hits"] == len(FLEET)
        assert cell["warm"]["cache_misses"] == 0
        assert "speedup" in doc["rendered"]

    def test_fleet_widths_are_the_table_one_anchors(self):
        doc = _tiny_doc()
        widths = doc["cells"][0]["widths"]
        assert widths["triangle"]["fhtw"] == 1.5
        assert widths["triangle"]["hhtw"] == 1.5
        assert widths["cycle4"]["fhtw"] == 2.0
        assert widths["line3"]["fhtw"] == 1.0
        assert widths["line3"]["hhtw"] == 2.0
        assert widths["hier"]["hhtw"] == 1.0


class TestGate:
    def test_passes_against_itself(self):
        doc = _pinned_doc()
        assert check_against_baseline(doc, doc, tolerance=0.15) == []

    def test_flags_regression_beyond_tolerance(self):
        doc = _pinned_doc()
        inflated = json.loads(json.dumps(doc))
        for cell in inflated["cells"]:
            cell["amortized_speedup"] *= 10
        failures = check_against_baseline(doc, inflated, tolerance=0.15)
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_flags_amortization_below_floor(self):
        doc = _pinned_doc()
        slow = json.loads(json.dumps(doc))
        slow["cells"][0]["amortized_speedup"] = MIN_AMORTIZATION / 2
        failures = check_against_baseline(slow, doc, tolerance=0.15)
        assert any("floor" in f for f in failures)

    def test_flags_warm_search_work(self):
        doc = _pinned_doc()
        dirty = json.loads(json.dumps(doc))
        dirty["cells"][0]["warm"]["search_nodes"] = 7
        failures = check_against_baseline(dirty, doc, tolerance=0.15)
        assert any("cache contract" in f for f in failures)

    def test_flags_missed_hits(self):
        doc = _pinned_doc()
        missed = json.loads(json.dumps(doc))
        missed["cells"][0]["warm"]["cache_hits"] -= 1
        failures = check_against_baseline(missed, doc, tolerance=0.15)
        assert any("must hit" in f for f in failures)

    def test_flags_plan_disagreement(self):
        doc = _pinned_doc()
        bad = json.loads(json.dumps(doc))
        bad["cells"][0]["ok"] = False
        failures = check_against_baseline(bad, doc, tolerance=0.15)
        assert any("disagree" in f for f in failures)

    def test_new_fleet_has_nothing_to_regress_against(self):
        doc = _pinned_doc()
        assert check_against_baseline(doc, {"cells": []}) == []


class TestMain:
    def test_writes_json_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_planner.json"
        rc = main(["--out", str(out), "--repeat", "1"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["benchmark"] == "planner"
        assert "plan cache" in capsys.readouterr().out

    def test_check_mode_round_trips(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main(["--out", str(baseline), "--repeat", "1"])
        assert rc == 0
        # Generous tolerance: exercises the round-trip mechanics, not
        # run-to-run timing stability at repeat=1.
        rc = main([
            "--check", "--baseline", str(baseline),
            "--repeat", "1", "--tolerance", "0.9",
        ])
        assert rc == 0
        assert "gate passed" in capsys.readouterr().out

    def test_check_mode_missing_baseline(self, tmp_path, capsys):
        rc = main([
            "--check", "--baseline", str(tmp_path / "nope.json"),
            "--repeat", "1",
        ])
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().out
