"""Property tests for theoretical invariants (AGM bound, reducer, widths)."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algorithms.naive import naive_nontemporal_join
from repro.core.hypergraph import Hypergraph
from repro.core.query import JoinQuery
from repro.nontemporal.cover import agm_bound, rho
from repro.nontemporal.generic_join import generic_join
from repro.nontemporal.hash_join import semijoin
from repro.nontemporal.yannakakis import yannakakis

from conftest import random_database, random_relation


QUERY_POOL = [
    JoinQuery.line(3),
    JoinQuery.star(3),
    JoinQuery.triangle(),
    JoinQuery.cycle(4),
    JoinQuery.bowtie(),
    JoinQuery.hier(),
]


class TestAGMBound:
    """|Q(R)| ≤ Π |R_e|^{x_e} for the optimal fractional cover [21]."""

    @pytest.mark.parametrize("qidx", range(len(QUERY_POOL)))
    @pytest.mark.parametrize("seed", range(4))
    def test_output_never_exceeds_agm(self, qidx, seed):
        query = QUERY_POOL[qidx]
        rng = random.Random(seed * 31 + qidx)
        db = random_database(query, rng, n=rng.randrange(3, 12), domain=3)
        results = generic_join(query.hypergraph, db)
        sizes = {name: len(db[name]) for name in query.edge_names}
        bound = agm_bound(query.hypergraph, sizes)
        assert len(results) <= bound + 1e-6

    def test_agm_tight_for_cartesian(self):
        hg = Hypergraph({"R1": ("a",), "R2": ("b",)})
        db = {
            "R1": random_relation("R1", ("a",), 5, 10, 10, random.Random(1)),
            "R2": random_relation("R2", ("b",), 7, 10, 10, random.Random(2)),
        }
        results = generic_join(hg, db)
        assert len(results) == 35
        assert abs(agm_bound(hg, {"R1": 5, "R2": 7}) - 35.0) < 1e-6

    def test_rho_lower_bound_realized_on_worst_case(self):
        # The classic AGM-tight triangle instance: R_i = A×B with |A| =
        # |B| = m gives N = m² per relation and m³ = N^1.5 results.
        m = 4
        rows = [((a, b), (0, 1)) for a in range(m) for b in range(m)]
        q = JoinQuery.triangle()
        from repro.core.relation import TemporalRelation

        db = {
            n: TemporalRelation(n, q.edge(n), rows, check_distinct=False)
            for n in q.edge_names
        }
        results = generic_join(q.hypergraph, db)
        assert len(results) == m**3
        assert rho(q.hypergraph) == 1.5


class TestFullReducer:
    """After the Yannakakis reducer, nothing dangles (non-temporal)."""

    @pytest.mark.parametrize("qname", ["line4", "star4", "hier"])
    @pytest.mark.parametrize("seed", range(4))
    def test_empty_output_implies_empty_reduced_relation(self, qname, seed):
        query = {
            "line4": JoinQuery.line(4),
            "star4": JoinQuery.star(4),
            "hier": JoinQuery.hier(),
        }[qname]
        rng = random.Random(seed * 977 + 5)
        db = random_database(query, rng, n=5, domain=4)
        nontemporal = naive_nontemporal_join(query, db)
        if nontemporal:
            return
        # Simulate the reducer: iterate pairwise semijoins to fixpoint;
        # some relation must become empty.
        rels = dict(db)
        changed = True
        while changed:
            changed = False
            for a in query.edge_names:
                for b in query.edge_names:
                    if a == b:
                        continue
                    reduced = semijoin(rels[a], rels[b])
                    if len(reduced) != len(rels[a]):
                        rels[a] = reduced
                        changed = True
        assert any(len(r) == 0 for r in rels.values())

    @pytest.mark.parametrize("seed", range(5))
    def test_yannakakis_no_dangling_exploration(self, seed):
        # Output-sensitivity witness: with intervals disabled, Yannakakis
        # must return exactly the non-temporal join — its enumeration
        # never visits a partial assignment that dies.
        query = JoinQuery.line(4)
        rng = random.Random(seed + 41)
        db = random_database(query, rng, n=8, domain=3)
        got = yannakakis(
            query.hypergraph, db, attr_order=query.attrs,
            intersect_intervals=False,
        )
        want = naive_nontemporal_join(query, db)
        assert sorted(got.values_only()) == sorted(want)


class TestWidthOrderings:
    """The Section 4.1 remark's orderings on acyclic queries."""

    def test_hierarchical_ordering(self):
        # hierarchical: hhtw = 1 < fhtw + 1 = 2.
        from repro.nontemporal.ghd import fhtw, hhtw

        for q in [JoinQuery.star(3), JoinQuery.hier()]:
            hg = q.hypergraph
            assert hhtw(hg) == 1.0
            assert hhtw(hg) < fhtw(hg) + 1

    def test_acyclic_non_hierarchical_ordering(self):
        # acyclic non-hierarchical: fhtw + 1 = 2 ≤ hhtw.
        from repro.nontemporal.ghd import fhtw, hhtw

        for n in (3, 4, 5):
            hg = JoinQuery.line(n).hypergraph
            assert fhtw(hg) + 1 <= hhtw(hg) + 1e-9
