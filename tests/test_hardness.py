"""Tests for the §5 hardness constructions."""

import itertools
import random

import pytest

from repro.algorithms.hardness import (
    counterpart_instance,
    nontemporal_counterpart,
    triangle_listing_instance,
    triangles_from_line3_results,
)
from repro.algorithms.naive import naive_nontemporal_join
from repro.algorithms.registry import temporal_join
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.core.errors import QueryError


def brute_triangles(edges):
    adj = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    out = set()
    for u, v in edges:
        for w in adj[u] & adj[v]:
            out.add(frozenset((u, v, w)))
    return out


class TestTriangleReduction:
    def test_instance_shape(self):
        db = triangle_listing_instance([(1, 2), (2, 3), (1, 3)])
        assert len(db["R1"]) == 6 and len(db["R2"]) == 6 and len(db["R3"]) == 6

    def test_duplicate_edges_ignored(self):
        db = triangle_listing_instance([(1, 2), (2, 1)])
        assert len(db["R2"]) == 2

    def test_single_triangle_recovered(self):
        edges = [(1, 2), (2, 3), (1, 3)]
        db = triangle_listing_instance(edges)
        results = temporal_join(JoinQuery.line(3), db, algorithm="timefirst")
        assert triangles_from_line3_results(results) == {frozenset((1, 2, 3))}

    def test_triangle_free_graph_gives_none(self):
        edges = [(1, 2), (2, 3), (3, 4)]
        db = triangle_listing_instance(edges)
        results = temporal_join(JoinQuery.line(3), db, algorithm="timefirst")
        assert triangles_from_line3_results(results) == set()

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_one_to_one(self, seed):
        rng = random.Random(seed)
        vertices = list(range(1, 13))
        edges = set()
        while len(edges) < 22:
            u, v = rng.sample(vertices, 2)
            edges.add((min(u, v), max(u, v)))
        db = triangle_listing_instance(sorted(edges))
        results = temporal_join(JoinQuery.line(3), db, algorithm="auto")
        assert triangles_from_line3_results(results) == brute_triangles(edges)

    def test_results_per_triangle_is_six(self):
        # The proof lists six join results per triangle.
        edges = [(1, 2), (2, 3), (1, 3)]
        db = triangle_listing_instance(edges)
        results = temporal_join(JoinQuery.line(3), db)
        assert len(results) == 6


class TestNonTemporalCounterpart:
    def test_query_shape(self):
        q = JoinQuery.line(3)
        qs = nontemporal_counterpart(q, ["R1", "R3"])
        assert qs.edge("R1") == ("x1", "x2", "__t__")
        assert qs.edge("R2") == ("x2", "x3")
        assert qs.edge("R3") == ("x3", "x4", "__t__")

    def test_counterpart_of_line3_is_triangleish(self):
        # With S = {R1, R3} the counterpart contains a triangle pattern on
        # (x2-ish, x3-ish, __t__): it must be cyclic.
        qs = nontemporal_counterpart(JoinQuery.line(3), ["R1", "R3"])
        assert not qs.is_acyclic

    def test_instance_translation_equivalence(self):
        q = JoinQuery.line(3)
        db = triangle_listing_instance([(1, 2), (2, 3), (1, 3), (3, 4)])
        temporal = temporal_join(q, db)
        qs = nontemporal_counterpart(q, ["R1", "R3"])
        translated = counterpart_instance(q, db, ["R1", "R3"])
        nontemporal = naive_nontemporal_join(qs, translated)
        got = {values[:-1] for values in nontemporal}
        want = set(temporal.values_only())
        assert got == want

    def test_translation_requires_instants(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 5))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (0, 5))]),
        }
        with pytest.raises(QueryError):
            counterpart_instance(q, db, ["R1"])
