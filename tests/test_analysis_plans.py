"""Tests for the static plan/decomposition verifier (repro.analysis.plans)."""

import pytest

from repro.analysis.plans import (
    PlanVerificationError,
    check_attribute_tree,
    check_ghd,
    check_plan,
    verify_attribute_tree,
    verify_ghd,
    verify_plan,
)
from repro.core.classification import AttributeTree
from repro.core.planner import plan
from repro.core.query import JoinQuery
from repro.nontemporal.ghd import (
    enumerate_partition_ghds,
    fhtw_ghd,
    hhtw_ghd,
    trivial_ghd,
)

QUERIES = {
    "line2": JoinQuery.line(2),
    "line3": JoinQuery.line(3),
    "line4": JoinQuery.line(4),
    "star3": JoinQuery.star(3),
    "hier": JoinQuery.hier(),
    "triangle": JoinQuery.triangle(),
    "bowtie": JoinQuery.bowtie(),
    "cycle4": JoinQuery.cycle(4),
    "cycle5": JoinQuery.cycle(5),
}


class TestCheckGHD:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_width_decompositions_verify(self, name):
        hg = QUERIES[name].hypergraph
        for _, ghd in (fhtw_ghd(hg), hhtw_ghd(hg)):
            assert check_ghd(ghd) == []
            verify_ghd(ghd)  # no raise

    def test_every_enumerated_ghd_verifies(self):
        hg = JoinQuery.line(3).hypergraph
        count = 0
        for ghd in enumerate_partition_ghds(hg):
            assert check_ghd(ghd) == []
            count += 1
        assert count > 1

    def test_coverage_violation_detected(self):
        ghd = trivial_ghd(JoinQuery.line(3).hypergraph)
        bag = next(iter(ghd.bags))
        ghd.bags[bag] = ghd.bags[bag][:1]  # drop an attribute from a bag
        issues = check_ghd(ghd)
        assert any("covered by no bag" in i for i in issues)
        with pytest.raises(PlanVerificationError):
            verify_ghd(ghd)

    def test_running_intersection_violation_detected(self):
        # Star bags all share the center: re-rooting is fine, but cutting
        # the tree into disconnected pieces is not.
        ghd = trivial_ghd(JoinQuery.line(4).hypergraph)
        for bag in ghd.parent:
            ghd.parent[bag] = None  # forest of isolated bags
        issues = check_ghd(ghd)
        assert any("running-intersection" in i for i in issues)

    def test_home_group_violations_detected(self):
        ghd = trivial_ghd(JoinQuery.line(3).hypergraph)
        bags = list(ghd.groups)
        moved = ghd.groups[bags[0]].pop()
        # Edge homed at a bag that does not cover it.
        other = next(b for b in bags if set(ghd.query.edge(moved)) - set(ghd.bags[b]))
        ghd.groups[other].append(moved)
        issues = check_ghd(ghd)
        assert any("not covered by it" in i for i in issues)

    def test_unhomed_edge_detected(self):
        ghd = trivial_ghd(JoinQuery.line(3).hypergraph)
        first = next(iter(ghd.groups))
        ghd.groups[first] = []
        issues = check_ghd(ghd)
        assert any("partition the edge set" in i for i in issues)

    def test_parent_map_shape_checked(self):
        ghd = trivial_ghd(JoinQuery.line(3).hypergraph)
        ghd.parent["ghost"] = None
        assert any("parent map keys" in i for i in check_ghd(ghd))


class TestCheckAttributeTree:
    @pytest.mark.parametrize("name", ["line2", "star3", "hier"])
    def test_hierarchical_trees_verify(self, name):
        tree = AttributeTree(QUERIES[name].hypergraph)
        assert check_attribute_tree(tree) == []
        verify_attribute_tree(tree)  # no raise

    def test_tampered_path_detected(self):
        tree = AttributeTree(JoinQuery.hier().hypergraph)
        node = next(n for n in tree.nodes if n.attr is not None)
        node.path_attrs = node.path_attrs + ("bogus",)
        issues = check_attribute_tree(tree)
        assert issues

    def test_hierarchical_order_violation_detected(self):
        # Swap a parent/child attribute pair: E_child ⊆ E_parent breaks.
        tree = AttributeTree(JoinQuery.hier().hypergraph)
        child = next(
            n for n in tree.nodes
            if n.attr is not None
            and n.parent is not None
            and tree.nodes[n.parent].attr is not None
            and tree.hypergraph.edges_of(n.attr)
            < tree.hypergraph.edges_of(tree.nodes[n.parent].attr)
        )
        parent = tree.nodes[child.parent]
        child.attr, parent.attr = parent.attr, child.attr
        issues = check_attribute_tree(tree)
        assert any("hierarchical order violated" in i for i in issues)

    def test_relation_leaf_mismatch_detected(self):
        tree = AttributeTree(JoinQuery.hier().hypergraph)
        name = next(iter(tree.leaf_of_relation))
        leaf = tree.nodes[tree.leaf_of_relation[name]]
        leaf.relation = None
        issues = check_attribute_tree(tree)
        assert any(name in i for i in issues)

    def test_broken_parent_child_link_detected(self):
        tree = AttributeTree(JoinQuery.hier().hypergraph)
        node = next(n for n in tree.nodes if n.parent is not None)
        tree.nodes[node.parent].children.remove(node.node_id)
        issues = check_attribute_tree(tree)
        assert any("children" in i for i in issues)


class TestCheckPlan:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_planner_output_verifies(self, name):
        p = plan(QUERIES[name])
        assert check_plan(p) == []
        verify_plan(p)  # no raise

    def test_exponent_mismatch_detected(self):
        p = plan(JoinQuery.triangle())
        p.exponent += 1.0
        issues = check_plan(p)
        assert any("min(fhtw+1, hhtw)" in i for i in issues)
        with pytest.raises(PlanVerificationError):
            verify_plan(p)

    def test_width_mismatch_detected(self):
        p = plan(JoinQuery.bowtie())
        p.fhtw = 99.0
        assert any("fhtw" in i for i in check_plan(p))

    def test_guarded_flag_mismatch_detected(self):
        p = plan(JoinQuery.line(3))
        p.guarded = not p.guarded
        assert any("guarded" in i for i in check_plan(p))

    def test_unknown_algorithm_detected(self):
        p = plan(JoinQuery.line(3))
        p.algorithm = "quantum-join"
        assert any("unknown algorithm" in i for i in check_plan(p))

    def test_inapplicable_choice_detected(self):
        p = plan(JoinQuery.triangle())
        p.algorithm = "hybrid-interval"  # triangle has no guarded partition
        assert any("guarded partition" in i for i in check_plan(p))


class TestPlannerHook:
    def test_verify_true_runs_verifier(self, monkeypatch):
        calls = []
        import repro.analysis.plans as plans_mod

        monkeypatch.setattr(
            plans_mod, "verify_plan", lambda p: calls.append(p) or p
        )
        plan(JoinQuery.line(3), verify=True)
        assert len(calls) == 1

    def test_env_flag_runs_verifier(self, monkeypatch):
        calls = []
        import repro.analysis.plans as plans_mod

        monkeypatch.setattr(
            plans_mod, "verify_plan", lambda p: calls.append(p) or p
        )
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        plan(JoinQuery.triangle())
        assert len(calls) == 1

    def test_default_is_off(self, monkeypatch):
        calls = []
        import repro.analysis.plans as plans_mod

        monkeypatch.setattr(
            plans_mod, "verify_plan", lambda p: calls.append(p) or p
        )
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        plan(JoinQuery.line(3))
        assert calls == []

    def test_verify_accepts_real_plans_end_to_end(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        for q in QUERIES.values():
            plan(q)  # no PlanVerificationError
