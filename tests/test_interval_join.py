"""Tests for forward-scan and index-based interval joins."""

import random

import pytest

from repro.algorithms.interval_join import (
    forward_scan_join,
    index_nested_join,
    self_overlap_pairs,
)
from repro.core.interval import Interval


def brute_pairs(left, right):
    out = []
    for a, ia in left:
        for b, ib in right:
            hit = ia.intersect(ib)
            if hit is not None:
                out.append((a, b, hit))
    return sorted(out)


def random_items(rng, n, prefix, span=60):
    items = []
    for i in range(n):
        lo = rng.randrange(span)
        items.append((f"{prefix}{i}", Interval(lo, lo + rng.randrange(20))))
    return items


class TestForwardScan:
    def test_simple_overlap(self):
        left = [("a", Interval(0, 5))]
        right = [("b", Interval(3, 9))]
        assert forward_scan_join(left, right) == [("a", "b", Interval(3, 5))]

    def test_touching(self):
        left = [("a", Interval(0, 5))]
        right = [("b", Interval(5, 9))]
        assert forward_scan_join(left, right) == [("a", "b", Interval(5, 5))]

    def test_disjoint(self):
        left = [("a", Interval(0, 2))]
        right = [("b", Interval(3, 9))]
        assert forward_scan_join(left, right) == []

    def test_empty_sides(self):
        assert forward_scan_join([], [("b", Interval(0, 1))]) == []
        assert forward_scan_join([("a", Interval(0, 1))], []) == []

    def test_each_pair_exactly_once(self):
        rng = random.Random(5)
        left = random_items(rng, 40, "l")
        right = random_items(rng, 40, "r")
        pairs = forward_scan_join(left, right)
        keys = [(a, b) for a, b, _ in pairs]
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_against_brute(self, seed):
        rng = random.Random(seed)
        left = random_items(rng, 30, "l")
        right = random_items(rng, 35, "r")
        assert sorted(forward_scan_join(left, right)) == brute_pairs(left, right)

    def test_identical_starts(self):
        left = [("a", Interval(3, 5)), ("b", Interval(3, 8))]
        right = [("c", Interval(3, 4))]
        got = sorted(forward_scan_join(left, right))
        assert got == brute_pairs(left, right)


class TestIndexNested:
    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_against_brute(self, seed):
        rng = random.Random(seed + 50)
        left = random_items(rng, 25, "l")
        right = random_items(rng, 50, "r")
        assert sorted(index_nested_join(left, right)) == brute_pairs(left, right)

    def test_swaps_to_smaller_probe_side(self):
        rng = random.Random(1)
        left = random_items(rng, 50, "l")
        right = random_items(rng, 5, "r")
        got = sorted(index_nested_join(left, right))
        assert got == brute_pairs(left, right)

    def test_agrees_with_forward_scan(self):
        rng = random.Random(9)
        left = random_items(rng, 30, "l")
        right = random_items(rng, 30, "r")
        fs = sorted(forward_scan_join(left, right))
        ix = sorted(index_nested_join(left, right))
        assert fs == ix


class TestSelfOverlap:
    def test_unordered_pairs_once(self):
        items = [
            ("a", Interval(0, 5)),
            ("b", Interval(3, 9)),
            ("c", Interval(20, 30)),
        ]
        pairs = self_overlap_pairs(items)
        assert [(a, b) for a, b, _ in pairs] == [("a", "b")]

    def test_count_matches_brute(self):
        rng = random.Random(4)
        items = random_items(rng, 30, "x")
        pairs = self_overlap_pairs(items)
        brute = 0
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                if items[i][1].intersects(items[j][1]):
                    brute += 1
        assert len(pairs) == brute
