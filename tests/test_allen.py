"""Tests for the extended Allen predicate suite and the lazy sweep.

Three layers:

* atom semantics — ``lazy_sweep_join`` against a naive O(n*m) oracle
  for every atom and a set of ``-or-`` unions, over adversarial data
  (duplicates, touching endpoints, instants, ±inf endpoints);
* strategy equality — every registered binary strategy returns the
  same multiset on the same (overlaps) workload, property-tested;
* registry dispatch — ``temporal_join(..., predicate=...)`` matches
  the oracle on binary queries across engines, applies τ after pair
  production, and raises the documented errors everywhere else.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.algorithms.allen import (  # noqa: E402
    ATOMS,
    lazy_sweep_join,
    pair_interval,
    parse_predicate,
    predicate_names,
)
from repro.algorithms.interval_join import (  # noqa: E402
    JOIN_STRATEGIES,
    forward_scan_join,
    interval_join,
)
from repro.algorithms.registry import explain_analyze, temporal_join  # noqa: E402
from repro.core.errors import QueryError  # noqa: E402
from repro.core.interval import Interval  # noqa: E402
from repro.core.query import JoinQuery  # noqa: E402
from repro.core.relation import TemporalRelation  # noqa: E402
from repro.obs import ExecutionStats  # noqa: E402

INF = float("inf")

#: Every atom plus unions covering both disjoint and overlapping atoms.
PREDICATES = sorted(ATOMS) + [
    "overlaps-or-meets",
    "before-or-meets",
    "during-or-equals",
    "starts-or-started-by-or-equals",
    "finishes-or-finished-by",
    "before-or-during",
]


def oracle(left, right, predicate):
    """O(n*m) reference: a pair appears once iff any atom holds."""
    atoms = [ATOMS[a].holds for a in parse_predicate(predicate)]
    out = []
    for lpay, livl in left:
        for rpay, rivl in right:
            if any(h(livl.lo, livl.hi, rivl.lo, rivl.hi) for h in atoms):
                out.append((
                    lpay, rpay,
                    Interval(*pair_interval(livl.lo, livl.hi, rivl.lo, rivl.hi)),
                ))
    return sorted(out)


# ---------------------------------------------------------------------------
# Hypothesis strategies: integer endpoints so equality-shaped atoms fire,
# instants (lo == hi), duplicates, and the occasional infinite endpoint.
# ---------------------------------------------------------------------------

def _interval(draw):
    special = draw(st.integers(0, 19))
    if special == 0:
        return Interval(-INF, draw(st.integers(-3, 8)))
    if special == 1:
        return Interval(draw(st.integers(-3, 8)), INF)
    if special == 2:
        return Interval(-INF, INF)
    lo = draw(st.integers(-3, 8))
    return Interval(lo, lo + draw(st.integers(0, 5)))


@st.composite
def items(draw, prefix, max_n=10):
    n = draw(st.integers(0, max_n))
    return [(f"{prefix}{i}", _interval(draw)) for i in range(n)]


# ---------------------------------------------------------------------------
# Atom semantics
# ---------------------------------------------------------------------------

class TestPredicateParsing:
    def test_atoms_registered(self):
        assert set(ATOMS) == {
            "overlaps", "before", "meets", "starts", "started-by",
            "finishes", "finished-by", "during", "contains", "equals",
        }
        assert predicate_names() == sorted(ATOMS)

    def test_union_split_and_dedup(self):
        assert parse_predicate("overlaps") == ("overlaps",)
        assert parse_predicate("before-or-meets") == ("before", "meets")
        assert parse_predicate("meets-or-meets") == ("meets",)

    def test_unknown_atom_lists_names(self):
        with pytest.raises(QueryError) as exc:
            parse_predicate("before-or-sideways")
        msg = str(exc.value)
        assert "sideways" in msg
        for name in predicate_names():
            assert name in msg

    def test_pair_interval_intersection_and_gap(self):
        assert pair_interval(0, 5, 3, 9) == (3, 5)
        assert pair_interval(0, 5, 5, 9) == (5, 5)  # touching instant
        assert pair_interval(0, 2, 5, 9) == (2, 5)  # before: the gap


class TestAtomSemantics:
    @pytest.mark.parametrize("predicate", PREDICATES)
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_sweep_matches_oracle(self, predicate, data):
        left = data.draw(items("l"))
        right = data.draw(items("r"))
        got = sorted(lazy_sweep_join(left, right, predicate=predicate))
        assert got == oracle(left, right, predicate)

    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_sweep_matches_oracle_dense(self, predicate):
        # Dense deterministic instance: every endpoint collides somewhere.
        rng = random.Random(hash(predicate) % 100000)
        left = []
        right = []
        for i in range(40):
            lo = rng.randrange(8)
            left.append((f"l{i}", Interval(lo, lo + rng.randrange(4))))
            lo = rng.randrange(8)
            right.append((f"r{i}", Interval(lo, lo + rng.randrange(4))))
        got = sorted(lazy_sweep_join(left, right, predicate=predicate))
        assert got == oracle(left, right, predicate)

    def test_stats_do_not_change_output(self):
        rng = random.Random(7)
        left = [(f"l{i}", Interval(rng.randrange(10), rng.randrange(10) + 10))
                for i in range(30)]
        right = [(f"r{i}", Interval(rng.randrange(10), rng.randrange(10) + 10))
                 for i in range(30)]
        for predicate in ("overlaps", "during", "before-or-meets"):
            stats = ExecutionStats()
            with_stats = lazy_sweep_join(
                left, right, predicate=predicate, stats=stats
            )
            without = lazy_sweep_join(left, right, predicate=predicate)
            assert with_stats == without  # order-identical, not just multiset
            assert stats["allen.pairs"] == len(with_stats)
            assert stats["allen.events"] > 0

    def test_active_peak_counter(self):
        left = [("a", Interval(0, 10)), ("b", Interval(1, 9))]
        right = [("c", Interval(2, 8))]
        stats = ExecutionStats()
        lazy_sweep_join(left, right, stats=stats)
        assert stats["allen.active_peak"] >= 2
        assert stats["allen.pairs"] == 2


# ---------------------------------------------------------------------------
# Strategy equality (overlaps is the only predicate every strategy speaks)
# ---------------------------------------------------------------------------

class TestStrategyEquality:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_all_strategies_same_multiset(self, data):
        left = data.draw(items("l"))
        right = data.draw(items("r"))
        want = sorted(forward_scan_join(left, right))
        for strategy in sorted(JOIN_STRATEGIES):
            got = sorted(interval_join(left, right, strategy=strategy))
            assert got == want, strategy

    def test_zero_length_touching_duplicates(self):
        left = [("a", Interval(5, 5)), ("b", Interval(5, 5)),
                ("c", Interval(0, 5)), ("d", Interval(0, 5))]
        right = [("e", Interval(5, 9)), ("f", Interval(5, 5))]
        want = sorted(forward_scan_join(left, right))
        assert len(want) == 8  # every left touches every right at t=5
        for strategy in sorted(JOIN_STRATEGIES):
            assert sorted(interval_join(left, right, strategy=strategy)) == want


# ---------------------------------------------------------------------------
# Registry dispatch
# ---------------------------------------------------------------------------

def line2_database(rng, n=20, domain=3, span=25):
    """A line-2 instance where every row is distinct (one unique attr)."""
    query = JoinQuery.line(2)
    db = {}
    for name in query.edge_names:
        attrs = query.edge(name)
        uniq = 0 if name == "R1" else 1
        rows = []
        for i in range(n):
            vals = [f"v{rng.randrange(domain)}" for _ in attrs]
            vals[uniq] = f"u{i}"
            lo = rng.randrange(span)
            rows.append((tuple(vals), (lo, lo + rng.randrange(6))))
        db[name] = TemporalRelation(name, attrs, rows)
    return query, db


def registry_oracle(query, db, predicate, tau=0.0):
    """Brute-force binary predicate join in output-attribute order."""
    atoms = [ATOMS[a].holds for a in parse_predicate(predicate)]
    n1, n2 = query.edge_names
    r1, r2 = db[n1], db[n2]
    shared = [a for a in r1.attrs if a in set(r2.attrs)]
    rows = []
    for vals1, iv1 in r1:
        for vals2, iv2 in r2:
            if (r1.project_values(vals1, shared)
                    != r2.project_values(vals2, shared)):
                continue
            if not any(h(iv1.lo, iv1.hi, iv2.lo, iv2.hi) for h in atoms):
                continue
            merged = dict(zip(r1.attrs, vals1))
            merged.update(zip(r2.attrs, vals2))
            out_vals = tuple(merged[a] for a in query.attrs)
            ivl = Interval(*pair_interval(iv1.lo, iv1.hi, iv2.lo, iv2.hi))
            if ivl.duration >= tau:
                rows.append((out_vals, ivl))
    return sorted(rows, key=lambda r: (r[0], r[1].lo, r[1].hi))


class TestRegistryDispatch:
    @pytest.mark.parametrize("predicate", sorted(ATOMS))
    def test_every_engine_matches_oracle(self, predicate):
        query, db = line2_database(random.Random(hash(predicate) % 9999))
        want = registry_oracle(query, db, predicate)
        for kwargs in (
            {},                      # auto → kernel path
            {"engine": "object"},
            {"engine": "kernel"},
            {"algorithm": "baseline"},
        ):
            got = temporal_join(query, db, predicate=predicate, **kwargs)
            assert got.normalized() == want, kwargs

    def test_prepared_columns_path(self):
        from repro.kernels.prepared import prepare

        query, db = line2_database(random.Random(42))
        artifact = prepare(db)
        for predicate in ("during", "overlaps-or-meets"):
            got = temporal_join(query, db, predicate=predicate, prepared=artifact)
            assert got.normalized() == registry_oracle(query, db, predicate)

    def test_tau_filters_pair_intervals(self):
        query, db = line2_database(random.Random(3))
        for predicate in ("overlaps-or-meets", "before"):
            got = temporal_join(query, db, predicate=predicate, tau=3)
            assert got.normalized() == registry_oracle(query, db, predicate, tau=3)

    def test_overlaps_predicate_is_passthrough(self):
        query, db = line2_database(random.Random(11))
        explicit = temporal_join(query, db, predicate="overlaps")
        default = temporal_join(query, db)
        assert explicit.normalized() == default.normalized()

    def test_union_with_overlaps_uses_predicate_path(self):
        query, db = line2_database(random.Random(12))
        got = temporal_join(query, db, predicate="overlaps-or-before")
        assert got.normalized() == registry_oracle(
            query, db, "overlaps-or-before"
        )

    def test_stats_counters_flow_through(self):
        query, db = line2_database(random.Random(5))
        stats = ExecutionStats()
        temporal_join(query, db, predicate="during", stats=stats)
        assert stats["allen.events"] > 0
        assert stats["results"] == len(
            registry_oracle(query, db, "during")
        )

    def test_explain_analyze_predicate(self):
        query, db = line2_database(random.Random(6))
        report = explain_analyze(query, db, predicate="meets")
        assert report.algorithm == "lazy-sweep"
        assert "predicate" in report.plan_explanation
        assert report.stats["allen.pairs"] >= 0
        rendered = report.render()
        assert "allen.events" in rendered

    def test_non_binary_query_rejected(self):
        query = JoinQuery.line(3)
        rng = random.Random(8)
        db = {
            name: TemporalRelation(
                name, query.edge(name),
                [((f"u{i}", f"w{i}"), (i, i + 2)) for i in range(4)],
            )
            for name in query.edge_names
        }
        with pytest.raises(QueryError, match="binary"):
            temporal_join(query, db, predicate="meets")

    def test_workers_rejected(self):
        query, db = line2_database(random.Random(9))
        with pytest.raises(QueryError, match="workers"):
            temporal_join(query, db, predicate="meets", workers=2)

    def test_wrong_algorithm_rejected(self):
        query, db = line2_database(random.Random(10))
        with pytest.raises(QueryError, match="predicate"):
            temporal_join(query, db, predicate="meets", algorithm="timefirst")
