"""Smoke tests: every example script must run end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # Shrink heavy example configs is unnecessary: they are already sized
    # to finish in seconds; just run them.
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "dblp_patterns", "flight_routes",
            "trading_behavior", "temporal_predicates"} <= names
