"""Tests for repro.core.result.JoinResultSet."""

import pytest

from repro.core.interval import Interval
from repro.core.result import JoinResultSet, merge_result_sets
from repro.core.errors import SchemaError


def build(rows):
    out = JoinResultSet(("a", "b"))
    for values, iv in rows:
        out.append(values, Interval.coerce(iv))
    return out


class TestContainer:
    def test_append_iter_len(self):
        rs = build([((1, 2), (0, 5)), ((3, 4), (1, 2))])
        assert len(rs) == 2
        assert rs[0] == ((1, 2), Interval(0, 5))
        assert bool(rs)

    def test_empty_falsy(self):
        assert not JoinResultSet(("a",))

    def test_extend(self):
        rs = build([((1, 2), (0, 5))])
        rs.extend([((9, 9), Interval(0, 1))])
        assert len(rs) == 2


class TestComparisons:
    def test_normalized_sorts(self):
        rs = build([((3, 4), (1, 2)), ((1, 2), (0, 5))])
        assert rs.normalized()[0][0] == (1, 2)

    def test_same_results_order_insensitive(self):
        a = build([((1, 2), (0, 5)), ((3, 4), (1, 2))])
        b = build([((3, 4), (1, 2)), ((1, 2), (0, 5))])
        assert a.same_results(b)

    def test_same_results_interval_sensitive(self):
        a = build([((1, 2), (0, 5))])
        b = build([((1, 2), (0, 6))])
        assert not a.same_results(b)

    def test_same_results_needs_same_attrs(self):
        a = build([((1, 2), (0, 5))])
        b = JoinResultSet(("x", "y"), a.rows)
        assert not a.same_results(b)


class TestTransformations:
    def test_filter_durable(self):
        rs = build([((1, 2), (0, 5)), ((3, 4), (1, 2))])
        assert len(rs.filter_durable(3)) == 1

    def test_filter_durable_boundary_inclusive(self):
        rs = build([((1, 2), (0, 5))])
        assert len(rs.filter_durable(5)) == 1
        assert len(rs.filter_durable(5.0001)) == 0

    def test_expand_intervals(self):
        rs = build([((1, 2), (2, 5))]).expand_intervals(2)
        assert rs[0][1] == Interval(0, 7)

    def test_expand_zero_is_identity(self):
        rs = build([((1, 2), (2, 5))])
        assert rs.expand_intervals(0) is rs

    def test_values_only(self):
        rs = build([((1, 2), (0, 5)), ((3, 4), (1, 2))])
        assert rs.values_only() == [(1, 2), (3, 4)]

    def test_count_by_thresholds(self):
        rs = build([((1, 2), (0, 5)), ((3, 4), (0, 2)), ((5, 6), (0, 9))])
        counts = rs.count_by_thresholds([0, 3, 6, 100])
        assert counts == {0: 3, 3: 2, 6: 1, 100: 0}

    def test_project_dedupes(self):
        rs = build([((1, 2), (0, 5)), ((1, 3), (2, 9))])
        proj = rs.project(("a",))
        assert proj.attrs == ("a",)
        assert len(proj) == 1

    def test_project_widens_interval(self):
        rs = build([((1, 2), (0, 5)), ((1, 3), (2, 9))])
        proj = rs.project(("a",))
        assert proj[0][1] == Interval(0, 9)


class TestMerge:
    def test_merge_ok(self):
        a = build([((1, 2), (0, 5))])
        b = build([((3, 4), (1, 2))])
        merged = merge_result_sets(("a", "b"), [a, b])
        assert len(merged) == 2

    def test_merge_layout_mismatch(self):
        a = build([((1, 2), (0, 5))])
        b = JoinResultSet(("x", "y"))
        with pytest.raises(SchemaError):
            merge_result_sets(("a", "b"), [a, b])
