"""Tests for the end-to-end multi-interval join wrapper."""

import random

import pytest

from repro.algorithms.naive import naive_join
from repro.core.durability import temporal_join_multi
from repro.core.interval import Interval, IntervalSet
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation


class TestTemporalJoinMulti:
    def test_episodes_join_independently(self):
        q = JoinQuery.line(2)
        dbs = {
            "R1": [((1, 2), IntervalSet([(0, 5), (10, 20)]))],
            "R2": [((2, 3), IntervalSet([(3, 12)]))],
        }
        out = temporal_join_multi(q, dbs)
        rows = sorted((v, iv) for v, iv in out)
        assert rows == [
            ((1, 2, 3), Interval(3, 5)),
            ((1, 2, 3), Interval(10, 12)),
        ]

    def test_adjacent_output_episodes_coalesce(self):
        q = JoinQuery.line(2)
        dbs = {
            "R1": [((1, 2), IntervalSet([(0, 5), (5, 9)]))],  # coalesces on input
            "R2": [((2, 3), IntervalSet([(0, 9)]))],
        }
        out = temporal_join_multi(q, dbs)
        assert out.rows == [((1, 2, 3), Interval(0, 9))]

    def test_touching_episodes_from_different_pairs_merge(self):
        # Two episode combinations yield [0,5] and [5,9]: the coalesced
        # output is a single [0,9] row.
        q = JoinQuery.line(2)
        dbs = {
            "R1": [((1, 2), IntervalSet([(0, 5)])), ],
            "R2": [((2, 3), IntervalSet([(0, 9)]))],
        }
        dbs["R1"] = [((1, 2), IntervalSet([(0, 5)]))]
        out1 = temporal_join_multi(q, dbs)
        assert out1.rows == [((1, 2, 3), Interval(0, 5))]

    def test_durable_filter_per_episode(self):
        q = JoinQuery.line(2)
        dbs = {
            "R1": [((1, 2), IntervalSet([(0, 2), (10, 30)]))],
            "R2": [((2, 3), IntervalSet([(0, 40)]))],
        }
        out = temporal_join_multi(q, dbs, tau=5)
        assert out.rows == [((1, 2, 3), Interval(10, 30))]

    def test_attrs_have_no_episode_columns(self):
        q = JoinQuery.line(2)
        dbs = {
            "R1": [((1, 2), IntervalSet([(0, 2)]))],
            "R2": [((2, 3), IntervalSet([(1, 4)]))],
        }
        out = temporal_join_multi(q, dbs)
        assert out.attrs == q.attrs

    def test_single_episode_matches_plain_join(self, rng):
        from conftest import random_database

        q = JoinQuery.star(3)
        db = random_database(q, rng, n=10, domain=3)
        dbs = {
            name: [(v, IntervalSet([iv])) for v, iv in db[name]]
            for name in q.edge_names
        }
        multi = temporal_join_multi(q, dbs)
        plain = naive_join(q, db)
        # With single-episode inputs the outputs coincide (up to the
        # coalescing of identical value tuples, which cannot happen here
        # since tuples are distinct).
        assert multi.normalized() == plain.normalized()

    def test_randomized_against_exploded_naive(self, rng):
        q = JoinQuery.line(3)
        for _ in range(3):
            dbs = {}
            for name in q.edge_names:
                rows = []
                for i in range(6):
                    episodes = []
                    for _ in range(rng.randrange(1, 3)):
                        lo = rng.randrange(30)
                        episodes.append((lo, lo + rng.randrange(8)))
                    rows.append(
                        ((rng.randrange(3), rng.randrange(3)), IntervalSet(episodes))
                    )
                # dedupe value tuples (the model requires distinct tuples)
                seen = {}
                for values, ivs in rows:
                    seen.setdefault(values, ivs)
                dbs[name] = list(seen.items())
            out = temporal_join_multi(q, dbs)
            # Reference: brute force over episode choices, then coalesce.
            from repro.core.durability import coalesce_results
            from repro.core.result import JoinResultSet

            ref_rows = []
            r1, r2, r3 = (dict(dbs[n]) for n in q.edge_names)
            for v1, s1 in r1.items():
                for v2, s2 in r2.items():
                    if v1[1] != v2[0]:
                        continue
                    for v3, s3 in r3.items():
                        if v2[1] != v3[0]:
                            continue
                        joint = s1.intersect(s2).intersect(s3)
                        for iv in joint:
                            ref_rows.append(
                                ((v1[0], v1[1], v2[1], v3[1]), iv)
                            )
            ref = JoinResultSet(tuple(q.attrs) + ("e",), [])
            # coalesce reference per value tuple
            grouped = {}
            for values, iv in ref_rows:
                grouped.setdefault(values, []).append(iv)
            expected = []
            for values, ivs in grouped.items():
                for iv in IntervalSet(ivs):
                    expected.append((values, iv))
            assert sorted(out.rows) == sorted(expected)
