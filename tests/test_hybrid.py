"""Tests for HYBRID (Algorithm 5) and bag materialization."""

import pytest

from repro.algorithms.hybrid import hybrid_join, materialize_bag, select_hybrid_ghd
from repro.algorithms.naive import naive_join
from repro.core.errors import PlanError
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.nontemporal.ghd import ghd_from_partition

from conftest import random_database


class TestMaterializeBag:
    def test_full_edges_carry_intervals(self):
        q = JoinQuery.line(3)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 10))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (5, 20))]),
            "R3": TemporalRelation("R3", ("x3", "x4"), [((3, 4), (0, 30))]),
        }
        bag = materialize_bag(q.hypergraph, db, ("x1", "x2", "x3"))
        rows = {v: iv for v, iv in bag}
        key = tuple(sorted(bag.attrs))
        assert key == ("x1", "x2", "x3")
        # Interval = R1 ∩ R2 (both fully inside the bag) = [5, 10].
        assert list(rows.values()) == [Interval(5, 10)]

    def test_partial_edges_widen_to_always(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 10))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (100, 200))]),
        }
        bag = materialize_bag(q.hypergraph, db, ("x1", "x2"))
        # R2 participates only as the projection π_{x2}; its disjoint
        # interval must not kill the bag tuple.
        assert len(bag) == 1

    def test_semijoin_effect_of_partial_edges(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation(
                "R1", ("x1", "x2"), [((1, 2), (0, 10)), ((1, 9), (0, 10))]
            ),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (0, 10))]),
        }
        bag = materialize_bag(q.hypergraph, db, ("x1", "x2"))
        # x2=9 has no support in π_{x2}(R2): dropped by GenericJoin.
        assert [dict(zip(bag.attrs, v))["x2"] for v, _ in bag] == [2]

    def test_empty_interval_bag_tuples_dropped(self):
        hg = JoinQuery({"R1": ("a", "b"), "R2": ("a", "b")}).hypergraph
        db = {
            "R1": TemporalRelation("R1", ("a", "b"), [((1, 2), (0, 5))]),
            "R2": TemporalRelation("R2", ("a", "b"), [((1, 2), (50, 60))]),
        }
        bag = materialize_bag(hg, db, ("a", "b"))
        assert len(bag) == 0


class TestSelectGHD:
    def test_modes(self):
        hg = JoinQuery.cycle(4).hypergraph
        f = select_hybrid_ghd(hg, "fhtw")
        h = select_hybrid_ghd(hg, "hierarchical")
        a = select_hybrid_ghd(hg, "auto")
        assert f.is_valid() and h.is_valid() and a.is_valid()
        assert h.is_hierarchical()

    def test_bad_mode(self):
        with pytest.raises(PlanError):
            select_hybrid_ghd(JoinQuery.cycle(4).hypergraph, "banana")

    def test_auto_prefers_hierarchical_when_cheap(self):
        # C4: fhtw = 2, hhtw = 2 → hierarchical wins the tie (h ≤ f+1).
        ghd = select_hybrid_ghd(JoinQuery.cycle(4).hypergraph, "auto")
        assert ghd.is_hierarchical()


class TestHybridJoin:
    @pytest.mark.parametrize(
        "query",
        [
            JoinQuery.line(3),
            JoinQuery.star(3),
            JoinQuery.triangle(),
            JoinQuery.cycle(4),
            JoinQuery.cycle(5),
            JoinQuery.bowtie(),
            JoinQuery.hier(),
        ],
    )
    def test_matches_naive(self, query, rng):
        for _ in range(3):
            db = random_database(query, rng, n=10, domain=3)
            got = hybrid_join(query, db)
            want = naive_join(query, db)
            assert got.normalized() == want.normalized()

    @pytest.mark.parametrize("mode", ["auto", "fhtw", "hierarchical"])
    def test_modes_agree(self, mode, rng):
        query = JoinQuery.cycle(4)
        db = random_database(query, rng, n=12, domain=3)
        got = hybrid_join(query, db, mode=mode)
        want = naive_join(query, db)
        assert got.normalized() == want.normalized()

    def test_durable(self, rng):
        query = JoinQuery.cycle(4)
        for tau in [0, 4, 10]:
            db = random_database(query, rng, n=12, domain=3)
            got = hybrid_join(query, db, tau=tau)
            want = naive_join(query, db, tau=tau)
            assert got.normalized() == want.normalized()

    def test_explicit_ghd(self, rng):
        query = JoinQuery.line(3)
        ghd = ghd_from_partition(query.hypergraph, [["R1", "R2"], ["R3"]])
        db = random_database(query, rng, n=10, domain=3)
        got = hybrid_join(query, db, ghd=ghd)
        assert got.normalized() == naive_join(query, db).normalized()

    def test_track_intermediates(self, rng):
        query = JoinQuery.cycle(4)
        db = random_database(query, rng, n=12, domain=3)
        sizes = []
        hybrid_join(query, db, track_intermediates=sizes)
        ghd = select_hybrid_ghd(query.hypergraph, "auto")
        assert len(sizes) == len(ghd.bags)
        assert all(s >= 0 for s in sizes)
