"""Tests for JoinQuery.parse (the paper's ⋈ notation)."""

import pytest

from repro.core.errors import QueryError
from repro.core.query import JoinQuery


class TestParse:
    def test_basic(self):
        q = JoinQuery.parse("R1(x1, x2) ⋈ R2(x2, x3)")
        assert q.edge_names == ["R1", "R2"]
        assert q.edge("R1") == ("x1", "x2")
        assert q.hypergraph == JoinQuery.line(2).hypergraph

    def test_ascii_join_symbols(self):
        a = JoinQuery.parse("R1(a,b) |x| R2(b,c)")
        b = JoinQuery.parse("R1(a,b) JOIN R2(b,c)")
        c = JoinQuery.parse("R1(a,b) ⋈ R2(b,c)")
        assert a.hypergraph == b.hypergraph == c.hypergraph

    def test_whitespace_tolerant(self):
        q = JoinQuery.parse("  R1( a , b )   ⋈R2(b,c)")
        assert q.edge("R1") == ("a", "b")

    def test_triangle(self):
        q = JoinQuery.parse("R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x3,x1)")
        assert q.hypergraph == JoinQuery.triangle().hypergraph

    def test_wide_relation(self):
        q = JoinQuery.parse("L(ok, pk, sk) ⋈ PS(pk, sk)")
        assert q.edge("L") == ("ok", "pk", "sk")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery.parse("   ")

    def test_missing_parens_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery.parse("R1 x1 x2 ⋈ R2(x2)")

    def test_empty_attrs_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery.parse("R1() ⋈ R2(a)")

    def test_duplicate_relation_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery.parse("R(a,b) ⋈ R(b,c)")

    def test_parsed_query_runs(self, rng):
        from conftest import random_database
        from repro.algorithms.registry import temporal_join

        q = JoinQuery.parse("R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4)")
        db = random_database(q, rng, n=8, domain=3)
        out = temporal_join(q, db)
        ref = temporal_join(q, db, algorithm="naive")
        assert out.normalized() == ref.normalized()
