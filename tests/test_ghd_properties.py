"""Property tests for the GHD/width machinery on random hypergraphs."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.classification import is_hierarchical
from repro.core.hypergraph import Hypergraph
from repro.nontemporal.cover import rho
from repro.nontemporal.ghd import (
    enumerate_partition_ghds,
    fhtw,
    fhtw_ghd,
    find_guarded_partition,
    hhtw,
    hhtw_ghd,
)

ATTRS = ["a", "b", "c", "d", "e"]


@st.composite
def hypergraphs(draw, max_edges=4):
    """Random connected-ish hypergraphs over a 5-attribute universe."""
    n_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = {}
    for i in range(n_edges):
        size = draw(st.integers(min_value=1, max_value=3))
        attrs = draw(
            st.lists(st.sampled_from(ATTRS), min_size=size, max_size=size,
                     unique=True)
        )
        edges[f"R{i}"] = tuple(attrs)
    return Hypergraph(edges)


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_every_partition_ghd_is_valid(hg):
    for ghd in enumerate_partition_ghds(hg):
        assert ghd.is_valid()


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_fhtw_at_most_hhtw(hg):
    assert fhtw(hg) <= hhtw(hg) + 1e-9


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_fhtw_at_most_rho(hg):
    # The single-bag GHD has width ρ(Q), so fhtw ≤ ρ.
    assert fhtw(hg) <= rho(hg) + 1e-9


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_widths_at_least_one(hg):
    assert fhtw(hg) >= 1.0 - 1e-9
    assert hhtw(hg) >= 1.0 - 1e-9


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_acyclic_iff_fhtw_one_on_reduced(hg):
    # For reduced hypergraphs (no edge contained in another), acyclic
    # queries have fhtw exactly 1 via the trivial GHD; cyclic queries
    # need width > 1 in the partition search.
    reduced, _ = hg.reduce()
    if reduced.is_acyclic():
        assert fhtw(reduced) == 1.0


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_hierarchical_queries_have_hhtw_one(hg):
    if is_hierarchical(hg):
        assert hhtw(hg) == 1.0
        _, ghd = hhtw_ghd(hg)
        assert ghd.is_hierarchical()


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_hhtw_ghd_always_hierarchical(hg):
    _, ghd = hhtw_ghd(hg)
    assert ghd.is_hierarchical()
    assert ghd.is_valid()


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_guarded_partition_structure(hg):
    gp = find_guarded_partition(hg)
    if gp is None:
        return
    i_set = set(gp.I)
    j_set = set(gp.J)
    # (I, J) partitions the attributes.
    assert i_set | j_set == set(hg.attrs)
    assert not (i_set & j_set)
    # Core edges avoid I entirely; residual edges touch it.
    for name in gp.core_edges:
        assert not (set(hg.edge(name)) & i_set)
    for name in gp.residual_edges:
        assert set(hg.edge(name)) & i_set
    # Every I attribute is private to one edge.
    for attr in gp.I:
        assert len(hg.edges_of(attr)) == 1
    # Product flag is consistent with pairwise disjointness on I.
    restrictions = [set(hg.edge(n)) & i_set for n in gp.residual_edges]
    disjoint = all(
        not (restrictions[i] & restrictions[j])
        for i in range(len(restrictions))
        for j in range(i + 1, len(restrictions))
    )
    assert gp.residual_product == disjoint
