"""Tests for temporal graphs and pattern counting."""

import pytest

from repro.core.interval import Interval, IntervalSet
from repro.core.query import JoinQuery
from repro.workloads.graphs import (
    TemporalGraph,
    count_durable_patterns,
    pattern_query,
    random_temporal_graph,
)


def toy() -> TemporalGraph:
    g = TemporalGraph()
    g.add_edge("A", "B", (0, 10))
    g.add_edge("B", "C", (5, 15))
    g.add_edge("A", "C", (8, 12))
    g.add_edge("C", "D", (100, 110))
    return g


class TestTemporalGraph:
    def test_counts(self):
        g = toy()
        assert g.vertex_count == 4
        assert g.edge_count == 4

    def test_edge_relation_symmetric(self):
        rel = toy().edge_relation()
        assert len(rel) == 8

    def test_edge_relation_directed(self):
        rel = toy().edge_relation(symmetric=False)
        assert len(rel) == 4

    def test_multi_edge_keeps_most_durable_episode(self):
        g = TemporalGraph()
        g.add_edge("A", "B", (0, 2))
        g.add_edge("A", "B", (10, 30))
        rel = g.edge_relation(symmetric=False)
        assert rel.rows == [(("A", "B"), Interval(10, 30))]

    def test_overlapping_multi_edges_coalesce(self):
        g = TemporalGraph()
        g.add_edge("A", "B", (0, 5))
        g.add_edge("A", "B", (3, 9))
        rel = g.edge_relation(symmetric=False)
        assert rel.rows == [(("A", "B"), Interval(0, 9))]

    def test_episodes_export(self):
        g = TemporalGraph()
        g.add_edge("A", "B", (0, 2))
        g.add_edge("A", "B", (10, 30))
        episodes = dict(g.edge_relation_episodes())
        assert episodes[("A", "B")] == IntervalSet([(0, 2), (10, 30)])

    def test_pattern_join_triangle(self):
        g = toy()
        out = g.pattern_join(JoinQuery.triangle())
        # A-B-C triangle alive during [8, 10]; symmetric table gives six
        # oriented copies.
        assert len(out) == 6
        assert all(iv == Interval(8, 10) for _, iv in out)


class TestPatternCounting:
    def test_triangle_counted_once(self):
        counts = count_durable_patterns(toy(), "triangle", [0, 1, 2, 3])
        assert counts[0] == 1
        assert counts[2] == 1
        assert counts[3] == 0  # durability 2 < 3

    def test_path2_excludes_repeated_vertices(self):
        g = TemporalGraph()
        g.add_edge("A", "B", (0, 10))
        counts = count_durable_patterns(g, "path2", [0])
        assert counts[0] == 0  # A-B-A is not a pattern

    def test_path2_counts(self):
        counts = count_durable_patterns(toy(), "path2", [0])
        # Durable 2-paths among A,B,C at τ=0: A-B-C, B-A-C, A-C-B (+D?
        # C-D overlaps nothing else). Canonical: each counted once.
        assert counts[0] == 3

    def test_monotone_in_tau(self):
        g = random_temporal_graph(60, 150, seed=5)
        for pattern in ["path2", "star3", "triangle"]:
            counts = count_durable_patterns(g, pattern, [0, 10, 40, 90])
            values = [counts[t] for t in [0, 10, 40, 90]]
            assert values == sorted(values, reverse=True)

    def test_pattern_query_lookup(self):
        assert pattern_query("path3").hypergraph == JoinQuery.line(3).hypergraph
        with pytest.raises(KeyError):
            pattern_query("decagon")

    def test_algorithms_agree_on_counts(self):
        g = random_temporal_graph(40, 100, seed=8)
        for alg in ["timefirst", "baseline", "joinfirst"]:
            counts = count_durable_patterns(g, "path2", [0, 20], algorithm=alg)
            reference = count_durable_patterns(g, "path2", [0, 20], algorithm="naive")
            assert counts == reference


class TestRandomGraph:
    def test_size_and_determinism(self):
        a = random_temporal_graph(50, 120, seed=1)
        b = random_temporal_graph(50, 120, seed=1)
        assert a.edge_count == b.edge_count == 120
        assert a.edges == b.edges

    def test_no_self_loops_or_duplicates(self):
        g = random_temporal_graph(30, 80, seed=2)
        seen = set()
        for u, v, _ in g.edges:
            assert u != v
            key = (min(u, v), max(u, v))
            assert key not in seen
            seen.add(key)
