"""Tests for the bench-smoke entry point (inline mode: no process spawns)."""

import json

from repro.bench.smoke import main, run_smoke


class TestRunSmoke:
    def test_document_shape(self):
        doc = run_smoke(
            algorithms=("timefirst",), workers_list=(1, 2),
            n_dangling=20, n_results=5, repeat=1, parallel_mode="inline",
        )
        assert doc["benchmark"] == "parallel-smoke"
        assert doc["parallel_mode"] == "inline"
        assert doc["workload"]["n_dangling"] == 20
        assert len(doc["cells"]) == 2
        assert "workers=2" in doc["rendered"]

    def test_cells_agree_and_carry_parallel_counters(self):
        doc = run_smoke(
            algorithms=("timefirst",), workers_list=(1, 2),
            n_dangling=20, n_results=5, repeat=1, parallel_mode="inline",
        )
        by_workers = {c["workers"]: c for c in doc["cells"]}
        assert all(c["ok"] for c in doc["cells"])
        assert by_workers[1]["results"] == by_workers[2]["results"]
        assert by_workers[1]["speedup_vs_serial"] == 1.0
        sharded = by_workers[2]
        assert sharded["shards"] == 2
        assert sharded["replicated_tuples"] >= 0
        assert sharded["skew_pct"] >= 100
        assert sharded["max_shard_seconds"] > 0
        assert sharded["critical_path_speedup"] > 0

    def test_serial_cells_have_no_shard_counters(self):
        doc = run_smoke(
            algorithms=("timefirst",), workers_list=(1,),
            n_dangling=15, n_results=3, repeat=1, parallel_mode="inline",
        )
        (cell,) = doc["cells"]
        assert "shards" not in cell


class TestMain:
    def test_writes_json_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_parallel.json"
        rc = main([
            "--out", str(out), "--algorithms", "timefirst",
            "--workers", "1", "2", "--dangling", "20", "--results", "5",
            "--repeat", "1", "--mode", "inline",
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["benchmark"] == "parallel-smoke"
        captured = capsys.readouterr()
        assert "Parallel smoke" in captured.out
        assert str(out) in captured.out
