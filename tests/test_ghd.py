"""Tests for GHDs, fhtw, hhtw (Definitions 7, 8, 11, 13; Figure 6)."""

import pytest

from repro.analysis.plans import check_ghd, verify_ghd
from repro.core.errors import PlanError
from repro.core.hypergraph import Hypergraph
from repro.core.query import JoinQuery
from repro.nontemporal.ghd import (
    enumerate_partition_ghds,
    fhtw,
    fhtw_ghd,
    find_guarded_partition,
    ghd_from_partition,
    hhtw,
    hhtw_ghd,
    trivial_ghd,
)


class TestGHDConstruction:
    def test_trivial_ghd_for_acyclic(self):
        ghd = trivial_ghd(JoinQuery.line(3).hypergraph)
        verify_ghd(ghd)  # independent static check of the same invariants
        assert ghd.is_valid()
        assert ghd.is_trivial()
        assert ghd.width() == 1.0

    def test_trivial_ghd_rejected_for_cyclic(self):
        with pytest.raises(PlanError):
            trivial_ghd(JoinQuery.triangle().hypergraph)

    def test_partition_ghd_line(self):
        hg = JoinQuery.line(3).hypergraph
        ghd = ghd_from_partition(hg, [["R1", "R2"], ["R3"]])
        assert ghd is not None and ghd.is_valid()
        assert check_ghd(ghd) == []
        bags = sorted(frozenset(b) for b in ghd.bags.values())
        assert frozenset({"x1", "x2", "x3"}) in bags
        assert frozenset({"x3", "x4"}) in bags

    def test_single_bag_always_valid(self):
        for q in [JoinQuery.triangle(), JoinQuery.bowtie(), JoinQuery.cycle(5)]:
            ghd = ghd_from_partition(q.hypergraph, [q.edge_names])
            assert ghd is not None and ghd.is_valid()
            assert check_ghd(ghd) == []

    def test_invalid_partition_returns_none(self):
        # Bags {R1,R3} (x1x2x3x4 minus x2x3? = {x1,x2,x3,x4}) and {R2}:
        # that one is actually fine; use a cycle partition that breaks
        # the running intersection instead.
        hg = JoinQuery.cycle(4).hypergraph
        bad = ghd_from_partition(hg, [["R1"], ["R2"], ["R3"], ["R4"]])
        assert bad is None  # cycle's trivial partition is cyclic

    def test_derived_edges_restrict(self):
        hg = JoinQuery.line(3).hypergraph
        ghd = ghd_from_partition(hg, [["R1", "R2"], ["R3"]])
        bag = next(b for b, lam in ghd.bags.items() if set(lam) == {"x1", "x2", "x3"})
        derived = ghd.derived_edges(bag)
        assert derived["R3"] == ("x3",)
        assert derived["R1"] == ("x1", "x2")

    def test_enumerate_includes_single_bag(self):
        ghds = list(enumerate_partition_ghds(JoinQuery.triangle().hypergraph))
        assert any(len(g.bags) == 1 for g in ghds)


class TestWidths:
    """Pin the width values the paper states (Figure 6 and Section 4)."""

    def test_acyclic_fhtw_is_1(self):
        for q in [JoinQuery.line(4), JoinQuery.star(4), JoinQuery.hier()]:
            assert fhtw(q.hypergraph) == 1.0

    def test_triangle_fhtw(self):
        assert fhtw(JoinQuery.triangle().hypergraph) == 1.5

    def test_cycle4_fhtw(self):
        assert fhtw(JoinQuery.cycle(4).hypergraph) == 2.0

    def test_bowtie_widths_match_figure6(self):
        # Figure 6, first example: two triangles sharing a vertex have
        # fhtw = hhtw = 1.5.
        hg = JoinQuery.bowtie().hypergraph
        assert fhtw(hg) == 1.5
        assert hhtw(hg) == 1.5

    def test_line_hhtw_is_2(self):
        # Figure 6, second example: acyclic but non-hierarchical line has
        # hhtw = 2 (two bags).
        for n in [3, 4]:
            assert hhtw(JoinQuery.line(n).hypergraph) == 2.0

    def test_hierarchical_hhtw_is_1(self):
        for q in [JoinQuery.star(4), JoinQuery.hier()]:
            assert hhtw(q.hypergraph) == 1.0

    def test_hhtw_ghd_is_hierarchical(self):
        for q in [JoinQuery.line(4), JoinQuery.cycle(4), JoinQuery.bowtie()]:
            _, ghd = hhtw_ghd(q.hypergraph)
            verify_ghd(ghd)
            assert ghd.is_hierarchical()
            assert ghd.is_valid()

    def test_fhtw_ghd_valid(self):
        for q in [JoinQuery.cycle(5), JoinQuery.bowtie()]:
            width, ghd = fhtw_ghd(q.hypergraph)
            verify_ghd(ghd)
            assert ghd.is_valid()
            assert ghd.width() == width

    def test_fhtw_leq_hhtw(self):
        # Hierarchical GHDs are GHDs, so fhtw ≤ hhtw always.
        for q in [JoinQuery.line(3), JoinQuery.cycle(4), JoinQuery.bowtie(),
                  JoinQuery.star(3)]:
            assert fhtw(q.hypergraph) <= hhtw(q.hypergraph) + 1e-9

    def test_cycle4_hybrid_bags_are_line2(self):
        # The paper: "HYBRID only materializes line-2 joins" on Q_C4.
        _, ghd = hhtw_ghd(JoinQuery.cycle(4).hypergraph)
        assert len(ghd.bags) == 2
        assert all(len(lam) == 3 for lam in ghd.bags.values())


class TestGuardedPartitions:
    def test_line3_partition_matches_table1(self):
        gp = find_guarded_partition(JoinQuery.line(3).hypergraph)
        assert gp is not None
        assert set(gp.I) == {"x1", "x4"}
        assert set(gp.J) == {"x2", "x3"}
        assert set(gp.core_edges) == {"R2"}
        assert set(gp.residual_edges) == {"R1", "R3"}
        assert gp.residual_product

    def test_line4_partition_matches_table1(self):
        gp = find_guarded_partition(JoinQuery.line(4).hypergraph)
        assert set(gp.I) == {"x1", "x5"}
        assert set(gp.J) == {"x2", "x3", "x4"}
        assert set(gp.core_edges) == {"R2", "R3"}

    def test_star_partition(self):
        gp = find_guarded_partition(JoinQuery.star(3).hypergraph)
        assert set(gp.J) == {"y"}
        assert len(gp.residual_edges) == 3
        assert gp.residual_product

    def test_cycles_not_guarded(self):
        for n in [3, 4, 5]:
            assert find_guarded_partition(JoinQuery.cycle(n).hypergraph) is None

    def test_bowtie_not_guarded(self):
        # x2..x5 all have degree 2; only no attribute is private → None…
        # actually bowtie has no private attributes at all.
        assert find_guarded_partition(JoinQuery.bowtie().hypergraph) is None

    def test_cartesian_product_not_guarded(self):
        hg = Hypergraph({"R1": ("a",), "R2": ("b",)})
        assert find_guarded_partition(hg) is None
