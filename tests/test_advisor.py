"""Tests for the cost-based advisor (the paper's §6.3 future work)."""

import pytest

from repro.core.advisor import advise
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.workloads.synthetic import SyntheticConfig, generate

from conftest import random_database


class TestMechanics:
    def test_ranking_is_sorted(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=12, domain=3)
        advice = advise(q, db)
        costs = [c.cost for c in advice.ranked]
        assert costs == sorted(costs)

    def test_all_applicable_algorithms_ranked(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=12, domain=3)
        names = {c.algorithm for c in advise(q, db).ranked}
        assert names == {"baseline", "timefirst", "hybrid", "hybrid-interval", "joinfirst"}

    def test_unguarded_query_omits_hybrid_interval(self, rng):
        q = JoinQuery.triangle()
        db = random_database(q, rng, n=10, domain=3)
        names = {c.algorithm for c in advise(q, db).ranked}
        assert "hybrid-interval" not in names

    def test_deterministic(self, rng):
        q = JoinQuery.star(3)
        db = random_database(q, rng, n=12, domain=3)
        a = advise(q, db, seed=5)
        b = advise(q, db, seed=5)
        assert [c.algorithm for c in a.ranked] == [c.algorithm for c in b.ranked]

    def test_explain_renders(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=10, domain=3)
        text = advise(q, db).explain()
        assert "ranking" in text and "estimated output" in text

    def test_selectivities_in_unit_interval(self, rng):
        q = JoinQuery.line(4)
        db = random_database(q, rng, n=12, domain=3)
        advice = advise(q, db)
        assert all(0.0 <= s <= 1.0 for s in advice.temporal_selectivities.values())


class TestRegimes:
    """The Section 6.3 summary regimes, as ground-truth checks."""

    def test_dangling_heavy_star_prefers_the_toolkit(self):
        q = JoinQuery.star(4)
        db = generate(q, SyntheticConfig(n_dangling=200, n_results=40, seed=2))
        advice = advise(q, db)
        assert advice.best in ("timefirst", "hybrid-interval")

    def test_joinfirst_wins_tiny_nontemporal_output(self):
        # Distinct join values everywhere: the non-temporal result is
        # tiny, so enumerating it first is the cheapest plan.
        q = JoinQuery.line(3)
        db = {}
        for i, name in enumerate(q.edge_names):
            rows = [
                ((f"v{j}", f"w{j}"), Interval(j, j + 5)) for j in range(60)
            ]
            db[name] = TemporalRelation(name, q.edge(name), rows)
        advice = advise(q, db)
        by_name = {c.algorithm: c.cost for c in advice.ranked}
        # The sweep pays per input tuple; joinfirst only pays per match.
        assert by_name["joinfirst"] < by_name["timefirst"]

    def test_temporal_selectivity_detected(self):
        # Value matches everywhere, zero temporal overlap: the advisor's
        # sampled selectivity must be ~0 and the output estimate tiny.
        q = JoinQuery.line(2)
        left = [((f"a{i}", "hub"), Interval(2 * i, 2 * i + 1)) for i in range(50)]
        right = [
            (("hub", f"b{i}"), Interval(10_000 + i, 10_001 + i)) for i in range(50)
        ]
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), left),
            "R2": TemporalRelation("R2", ("x2", "x3"), right),
        }
        advice = advise(q, db)
        assert advice.temporal_selectivities[("R1", "R2")] == 0.0
        assert advice.estimated_output < 10

    def test_advice_best_is_actually_competitive(self, rng):
        """End-to-end: the advisor's pick is within 4x of the true best."""
        import time

        from repro.algorithms.registry import get_algorithm

        q = JoinQuery.star(3)
        db = generate(q, SyntheticConfig(n_dangling=120, n_results=30, seed=4))
        advice = advise(q, db)
        timings = {}
        for cand in advice.ranked:
            fn = get_algorithm(cand.algorithm)
            start = time.perf_counter()
            fn(q, db)
            timings[cand.algorithm] = time.perf_counter() - start
        best_actual = min(timings.values())
        assert timings[advice.best] <= max(4 * best_actual, best_actual + 0.05)
