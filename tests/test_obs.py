"""Tests for repro.obs: ExecutionStats and the Tracer protocol."""

import time

from repro.obs import NULL_TRACER, ExecutionStats, NullTracer, Tracer


class TestCounters:
    def test_incr_default_and_amount(self):
        s = ExecutionStats()
        s.incr("a")
        s.incr("a", 4)
        assert s["a"] == 5

    def test_peak_keeps_max(self):
        s = ExecutionStats()
        s.peak("p", 3)
        s.peak("p", 9)
        s.peak("p", 5)
        assert s["p"] == 9

    def test_observe_count_total_max(self):
        s = ExecutionStats()
        for v in (4, 1, 7):
            s.observe("rows", v)
        assert s["rows.count"] == 3
        assert s["rows.total"] == 12
        assert s["rows.max"] == 7
        assert s.mean("rows") == 4.0

    def test_mean_unseen_is_none(self):
        assert ExecutionStats().mean("rows") is None

    def test_get_and_contains(self):
        s = ExecutionStats()
        s.incr("x")
        assert "x" in s and "y" not in s
        assert s.get("y") == 0
        assert s.get("y", -1) == -1

    def test_bool(self):
        s = ExecutionStats()
        assert not s
        s.incr("x")
        assert s


class TestTimers:
    def test_timer_accumulates(self):
        s = ExecutionStats()
        with s.timer("phase.a"):
            time.sleep(0.001)
        first = s.timers["phase.a"]
        assert first > 0
        with s.timer("phase.a"):
            pass
        assert s.timers["phase.a"] >= first

    def test_timer_records_on_exception(self):
        s = ExecutionStats()
        try:
            with s.timer("phase.x"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert s.timers["phase.x"] >= 0

    def test_add_time(self):
        s = ExecutionStats()
        s.add_time("phase.y", 0.25)
        s.add_time("phase.y", 0.25)
        assert s.timers["phase.y"] == 0.5


class TestMergeAndRender:
    def test_merge_adds_counters_and_times(self):
        a, b = ExecutionStats(), ExecutionStats()
        a.incr("n", 2)
        b.incr("n", 3)
        a.add_time("phase.z", 0.1)
        b.add_time("phase.z", 0.2)
        a.merge(b)
        assert a["n"] == 5
        assert abs(a.timers["phase.z"] - 0.3) < 1e-12

    def test_merge_maxes_peaks_and_distribution_max(self):
        a, b = ExecutionStats(), ExecutionStats()
        a.peak("active_peak", 10)
        b.peak("active_peak", 4)
        a.observe("rows", 2)
        b.observe("rows", 8)
        a.merge(b)
        assert a["active_peak"] == 10
        assert a["rows.max"] == 8
        assert a["rows.count"] == 2
        assert a["rows.total"] == 10

    def test_as_dict_flattens(self):
        s = ExecutionStats()
        s.incr("n", 7)
        s.add_time("phase.t", 0.5)
        d = s.as_dict()
        assert d["n"] == 7 and d["phase.t"] == 0.5

    def test_render_empty(self):
        assert "no telemetry" in ExecutionStats().render()

    def test_render_lists_counters_and_timers(self):
        s = ExecutionStats()
        s.incr("sweep.events", 10)
        s.add_time("phase.sweep", 0.0012)
        text = s.render()
        assert "sweep.events" in text and "10" in text
        assert "phase.sweep" in text and "ms" in text


class TestTracerProtocol:
    def test_execution_stats_is_a_tracer(self):
        assert isinstance(ExecutionStats(), Tracer)

    def test_null_tracer_is_a_tracer(self):
        assert isinstance(NULL_TRACER, Tracer)
        assert isinstance(NullTracer(), Tracer)

    def test_null_tracer_swallows_everything(self):
        NULL_TRACER.incr("x")
        NULL_TRACER.peak("x", 5)
        NULL_TRACER.observe("x", 5)
        with NULL_TRACER.timer("phase.x"):
            pass
