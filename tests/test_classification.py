"""Tests for query classification, attribute trees, instance reduction."""

import pytest

from repro.core.classification import (
    AttributeTree,
    QueryClass,
    classify,
    is_hierarchical,
    is_r_hierarchical,
    reduce_instance,
)
from repro.core.errors import QueryError
from repro.core.hypergraph import Hypergraph
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation


class TestHierarchicalPredicate:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_stars_hierarchical(self, n):
        assert is_hierarchical(JoinQuery.star(n).hypergraph)

    def test_qhier_hierarchical(self):
        assert is_hierarchical(JoinQuery.hier().hypergraph)

    def test_line2_hierarchical(self):
        # R1(x1,x2) ⋈ R2(x2,x3): E_x1={R1}, E_x2={R1,R2}, E_x3={R2}.
        assert is_hierarchical(JoinQuery.line(2).hypergraph)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_longer_lines_not_hierarchical(self, n):
        assert not is_hierarchical(JoinQuery.line(n).hypergraph)

    def test_cycles_not_hierarchical(self):
        assert not is_hierarchical(JoinQuery.triangle().hypergraph)

    def test_single_relation_hierarchical(self):
        assert is_hierarchical(Hypergraph({"R": ("a", "b", "c")}))

    def test_cartesian_product_hierarchical(self):
        assert is_hierarchical(Hypergraph({"R1": ("a",), "R2": ("b",)}))


class TestRHierarchical:
    def test_hierarchical_implies_r_hierarchical(self):
        assert is_r_hierarchical(JoinQuery.star(3).hypergraph)

    def test_containment_makes_r_hierarchical(self):
        # Non-hierarchical as written (E_a and E_b incomparable through
        # R2/R3) but reduced to a single edge.
        h = Hypergraph({"R1": ("a", "b", "c"), "R2": ("a", "b"), "R3": ("b", "c")})
        assert not is_hierarchical(h)
        assert is_r_hierarchical(h)

    def test_line3_not_r_hierarchical(self):
        assert not is_r_hierarchical(JoinQuery.line(3).hypergraph)

    def test_classify_levels(self):
        assert classify(JoinQuery.star(3).hypergraph) is QueryClass.HIERARCHICAL
        h = Hypergraph({"R1": ("a", "b", "c"), "R2": ("a", "b"), "R3": ("b", "c")})
        assert classify(h) is QueryClass.R_HIERARCHICAL
        assert classify(JoinQuery.line(3).hypergraph) is QueryClass.ACYCLIC
        assert classify(JoinQuery.cycle(4).hypergraph) is QueryClass.CYCLIC


class TestReduceInstance:
    def test_absorption_intersects_intervals(self):
        h = Hypergraph({"Big": ("a", "b"), "Small": ("a",)})
        db = {
            "Big": TemporalRelation(
                "Big", ("a", "b"), [((1, 2), (0, 10)), ((3, 4), (0, 10))]
            ),
            "Small": TemporalRelation("Small", ("a",), [((1,), (5, 20))]),
        }
        reduced, new_db = reduce_instance(h, db)
        assert reduced.edge_names == ["Big"]
        rows = {v: iv for v, iv in new_db["Big"]}
        assert rows == {(1, 2): Interval(5, 10)}  # (3,4) has no match

    def test_absorption_drops_empty_intersections(self):
        h = Hypergraph({"Big": ("a", "b"), "Small": ("a",)})
        db = {
            "Big": TemporalRelation("Big", ("a", "b"), [((1, 2), (0, 3))]),
            "Small": TemporalRelation("Small", ("a",), [((1,), (5, 9))]),
        }
        _, new_db = reduce_instance(h, db)
        assert len(new_db["Big"]) == 0

    def test_chained_absorption(self):
        h = Hypergraph({"A": ("a", "b", "c"), "B": ("a", "b"), "C": ("a",)})
        db = {
            "A": TemporalRelation("A", ("a", "b", "c"), [((1, 2, 3), (0, 100))]),
            "B": TemporalRelation("B", ("a", "b"), [((1, 2), (10, 50))]),
            "C": TemporalRelation("C", ("a",), [((1,), (20, 80))]),
        }
        reduced, new_db = reduce_instance(h, db)
        assert reduced.edge_names == ["A"]
        rows = {v: iv for v, iv in new_db["A"]}
        assert rows == {(1, 2, 3): Interval(20, 50)}

    def test_reduction_preserves_join(self):
        from repro.algorithms.naive import naive_join

        h = Hypergraph({"Big": ("a", "b"), "Small": ("b",)})
        db = {
            "Big": TemporalRelation(
                "Big", ("a", "b"), [((1, 2), (0, 10)), ((5, 2), (4, 12))]
            ),
            "Small": TemporalRelation("Small", ("b",), [((2,), (5, 30))]),
        }
        original = naive_join(JoinQuery.from_hypergraph(h), db)
        reduced_hg, reduced_db = reduce_instance(h, db)
        q2 = JoinQuery({n: reduced_hg.edge(n) for n in reduced_hg.edge_names},
                       attr_order=("a", "b"))
        reduced_result = naive_join(q2, reduced_db)
        assert sorted(original.values_only()) == sorted(reduced_result.values_only())


class TestAttributeTree:
    def test_rejects_non_hierarchical(self):
        with pytest.raises(QueryError):
            AttributeTree(JoinQuery.line(3).hypergraph)

    def test_star_shape(self):
        tree = AttributeTree(JoinQuery.star(3).hypergraph)
        root = tree.root
        # Virtual root → y → {x1, x2, x3 leaves}.
        assert root.attr is None
        assert len(root.children) == 1
        y_node = tree.node(root.children[0])
        assert y_node.attr == "y"
        leaf_attrs = {tree.node(c).attr for c in y_node.children}
        assert leaf_attrs == {"x1", "x2", "x3"}

    def test_every_relation_is_root_path(self):
        for query in [JoinQuery.star(4), JoinQuery.hier(), JoinQuery.line(2)]:
            tree = AttributeTree(query.hypergraph)
            for name in query.edge_names:
                leaf = tree.node(tree.leaf_of_relation[name])
                assert set(leaf.path_attrs) == set(query.edge(name))

    def test_qhier_structure_matches_figure5(self):
        tree = AttributeTree(JoinQuery.hier().hypergraph)
        # Find the attribute nodes.
        by_attr = {n.attr: n for n in tree.nodes if n.attr is not None}
        assert tree.node(by_attr["B"].parent).attr == "A"
        assert tree.node(by_attr["C"].parent).attr == "A"
        assert tree.node(by_attr["D"].parent).attr == "B"
        assert tree.node(by_attr["E"].parent).attr == "B"
        assert tree.node(by_attr["F"].parent).attr == "C"
        assert tree.node(by_attr["G"].parent).attr == "C"

    def test_r1_gets_explicit_leaf_in_qhier(self):
        # R1(A,B) ends at internal node B, so it needs a relation leaf.
        tree = AttributeTree(JoinQuery.hier().hypergraph)
        leaf = tree.node(tree.leaf_of_relation["R1"])
        assert leaf.relation == "R1"
        assert leaf.attr is None
        assert set(leaf.path_attrs) == {"A", "B"}

    def test_path_attrs_are_prefixes(self):
        tree = AttributeTree(JoinQuery.hier().hypergraph)
        for node in tree.nodes:
            parent = tree.parent(node.node_id)
            if parent is not None:
                plen = len(parent.path_attrs)
                assert node.path_attrs[:plen] == parent.path_attrs

    def test_equal_incidence_attrs_chained(self):
        h = Hypergraph({"R1": ("a", "b"), "R2": ("a", "b", "c")})
        tree = AttributeTree(h)
        # a and b have E={R1,R2}: they form a chain, c hangs below.
        by_attr = {n.attr: n for n in tree.nodes if n.attr is not None}
        chain = {by_attr["a"].attr, by_attr["b"].attr}
        assert chain == {"a", "b"}
        c_parent = tree.node(by_attr["c"].parent)
        assert c_parent.attr in ("a", "b")

    def test_depth_constant(self):
        tree = AttributeTree(JoinQuery.star(5).hypergraph)
        assert tree.depth() == 2  # root → y → x_i (two edges)

    def test_pretty_renders(self):
        text = AttributeTree(JoinQuery.hier().hypergraph).pretty()
        assert "A" in text and "leaf[R1" in text

    def test_leaves_cover_all_relations(self):
        tree = AttributeTree(JoinQuery.hier().hypergraph)
        assert set(tree.leaf_of_relation) == set(JoinQuery.hier().edge_names)
