"""Tests for the online (streaming) temporal join operator."""

import random

import pytest

from repro.algorithms.naive import naive_join
from repro.algorithms.online import (
    OnlineTemporalJoin,
    arrivals_from_database,
    stream_temporal_join,
)
from repro.core.errors import QueryError
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.core.result import JoinResultSet

from conftest import random_database


class TestBasics:
    def test_simple_pair_emitted_at_expiry(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        assert op.insert("R1", (1, "h"), (0, 10)) == []
        assert op.insert("R2", (2, "h"), (2, 5)) == []
        out = op.advance_to(6)
        assert out == [((1, "h", 2), Interval(2, 5))]

    def test_insert_drains_earlier_expirations(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 3))
        op.insert("R2", (2, "h"), (1, 2))
        # An arrival at t=5 proves both earlier tuples expired.
        out = op.insert("R1", (9, "h"), (5, 8))
        assert out == [((1, "h", 2), Interval(1, 2))]

    def test_touching_arrival_at_watermark_joins(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 5))
        op.advance_to(5)  # must NOT expire [0,5] yet
        op.insert("R2", (2, "h"), (5, 9))
        out = op.finish()
        assert ((1, "h", 2), Interval(5, 5)) in out

    def test_finish_flushes_and_closes(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 5))
        op.insert("R2", (2, "h"), (0, 5))
        out = op.finish()
        assert len(out) == 1
        with pytest.raises(QueryError):
            op.insert("R1", (3, "h"), (9, 10))
        with pytest.raises(QueryError):
            op.advance_to(100)

    def test_strict_rejects_out_of_order(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 2))
        op.insert("R1", (2, "h"), (10, 12))  # drains the first expiry
        with pytest.raises(QueryError):
            op.insert("R2", (3, "h"), (1, 20))

    def test_lenient_clamps_out_of_order(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q, strict=False)
        op.insert("R1", (1, "h"), (0, 2))
        op.insert("R1", (2, "h"), (10, 12))
        op.insert("R2", (3, "h"), (1, 20))  # clamped to [2, 20]
        out = op.finish()
        values = {v for v, _ in out}
        assert (2, "h", 3) in values  # joins the second tuple
        assert (1, "h", 3) not in values  # the first was already expired

    def test_active_count_is_bounded(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        for i in range(50):
            op.insert("R1", (i, "h"), (i, i + 1))
            assert op.active_count <= 2
        op.finish()
        assert op.active_count == 0


class TestEquivalenceWithOffline:
    @pytest.mark.parametrize(
        "query",
        [JoinQuery.star(3), JoinQuery.line(3), JoinQuery.triangle(), JoinQuery.hier()],
    )
    def test_stream_matches_offline(self, query, rng):
        from repro.algorithms.timefirst import timefirst_join

        for _ in range(3):
            db = random_database(query, rng, n=12, domain=3)
            arrivals = arrivals_from_database(db)
            streamed = JoinResultSet(
                query.attrs, stream_temporal_join(query, arrivals)
            )
            offline = naive_join(query, db)
            assert streamed.normalized() == offline.normalized()

    def test_results_accumulate(self, rng):
        query = JoinQuery.star(2)
        db = random_database(query, rng, n=15, domain=3)
        op = OnlineTemporalJoin(query)
        emitted = []
        for relation, values, interval in arrivals_from_database(db):
            emitted.extend(op.insert(relation, values, interval))
        emitted.extend(op.finish())
        assert sorted(emitted) == sorted(op.results().rows)

    def test_each_result_emitted_once(self, rng):
        query = JoinQuery.star(2)
        db = random_database(query, rng, n=15, domain=2, time_span=10)
        arrivals = arrivals_from_database(db)
        rows = list(stream_temporal_join(query, arrivals))
        assert len(rows) == len(set(rows))


class TestBoundaryExpiry:
    """Watermark exactly at a tuple's right endpoint (closed-interval edge).

    ``advance_to(w)`` drains strictly below ``w``: a tuple expiring
    exactly at ``w`` may still join a future arrival starting at ``w``
    (closed intervals touch), so boundary expiry must be deferred — and
    then finalized *exactly once* by a later watermark or ``finish()``.
    """

    def _pair(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 5))
        op.insert("R2", (2, "h"), (2, 5))
        return op

    def test_watermark_at_right_endpoint_defers_expiry(self):
        op = self._pair()
        assert op.advance_to(5) == []
        assert op.active_count == 2  # nothing finalized yet

    def test_repeated_boundary_watermarks_do_not_duplicate(self):
        op = self._pair()
        assert op.advance_to(5) == []
        assert op.advance_to(5) == []
        out = op.advance_to(5.1)
        assert out == [((1, "h", 2), Interval(2, 5))]
        assert op.advance_to(5.1) == []
        assert op.finish() == []

    def test_boundary_expiry_then_finish_emits_exactly_once(self):
        op = self._pair()
        op.advance_to(5)
        out = op.finish()
        assert out == [((1, "h", 2), Interval(2, 5))]
        assert op.results().rows.count(((1, "h", 2), Interval(2, 5))) == 1

    def test_arrival_at_boundary_still_joins_deferred_tuple(self):
        op = self._pair()
        op.advance_to(5)
        out = op.insert("R2", (3, "h"), (5, 7))
        # Inserting at t=5 drains strictly-before-5 only; both results
        # appear when the boundary tuples finally expire.
        final = out + op.finish()
        assert sorted(final) == [
            ((1, "h", 2), Interval(2, 5)),
            ((1, "h", 3), Interval(5, 5)),
        ]

    def test_instant_tuple_at_watermark(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (3, 3))
        op.insert("R2", (2, "h"), (3, 3))
        assert op.advance_to(3) == []  # the instant [3,3] is not yet safe
        assert op.finish() == [((1, "h", 2), Interval(3, 3))]
