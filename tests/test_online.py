"""Tests for the online (streaming) temporal join operator."""

import random

import pytest

from repro.algorithms.naive import naive_join
from repro.algorithms.online import (
    OnlineTemporalJoin,
    arrivals_from_database,
    stream_temporal_join,
)
from repro.core.errors import QueryError
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.core.result import JoinResultSet
from repro.obs import ExecutionStats

from conftest import random_database


class TestBasics:
    def test_simple_pair_emitted_at_expiry(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        assert op.insert("R1", (1, "h"), (0, 10)) == []
        assert op.insert("R2", (2, "h"), (2, 5)) == []
        out = op.advance_to(6)
        assert out == [((1, "h", 2), Interval(2, 5))]

    def test_insert_drains_earlier_expirations(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 3))
        op.insert("R2", (2, "h"), (1, 2))
        # An arrival at t=5 proves both earlier tuples expired.
        out = op.insert("R1", (9, "h"), (5, 8))
        assert out == [((1, "h", 2), Interval(1, 2))]

    def test_touching_arrival_at_watermark_joins(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 5))
        op.advance_to(5)  # must NOT expire [0,5] yet
        op.insert("R2", (2, "h"), (5, 9))
        out = op.finish()
        assert ((1, "h", 2), Interval(5, 5)) in out

    def test_finish_flushes_and_closes(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 5))
        op.insert("R2", (2, "h"), (0, 5))
        out = op.finish()
        assert len(out) == 1
        with pytest.raises(QueryError):
            op.insert("R1", (3, "h"), (9, 10))
        with pytest.raises(QueryError):
            op.advance_to(100)

    def test_strict_rejects_out_of_order(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 2))
        op.insert("R1", (2, "h"), (10, 12))  # drains the first expiry
        with pytest.raises(QueryError):
            op.insert("R2", (3, "h"), (1, 20))

    def test_lenient_clamps_out_of_order(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q, strict=False)
        op.insert("R1", (1, "h"), (0, 2))
        op.insert("R1", (2, "h"), (10, 12))
        op.insert("R2", (3, "h"), (1, 20))  # clamped to [2, 20]
        out = op.finish()
        values = {v for v, _ in out}
        assert (2, "h", 3) in values  # joins the second tuple
        assert (1, "h", 3) not in values  # the first was already expired

    def test_active_count_is_bounded(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        for i in range(50):
            op.insert("R1", (i, "h"), (i, i + 1))
            assert op.active_count <= 2
        op.finish()
        assert op.active_count == 0


class TestEquivalenceWithOffline:
    @pytest.mark.parametrize(
        "query",
        [JoinQuery.star(3), JoinQuery.line(3), JoinQuery.triangle(), JoinQuery.hier()],
    )
    def test_stream_matches_offline(self, query, rng):
        from repro.algorithms.timefirst import timefirst_join

        for _ in range(3):
            db = random_database(query, rng, n=12, domain=3)
            arrivals = arrivals_from_database(db)
            streamed = JoinResultSet(
                query.attrs, stream_temporal_join(query, arrivals)
            )
            offline = naive_join(query, db)
            assert streamed.normalized() == offline.normalized()

    def test_results_accumulate(self, rng):
        query = JoinQuery.star(2)
        db = random_database(query, rng, n=15, domain=3)
        op = OnlineTemporalJoin(query)
        emitted = []
        for relation, values, interval in arrivals_from_database(db):
            emitted.extend(op.insert(relation, values, interval))
        emitted.extend(op.finish())
        assert sorted(emitted) == sorted(op.results().rows)

    def test_each_result_emitted_once(self, rng):
        query = JoinQuery.star(2)
        db = random_database(query, rng, n=15, domain=2, time_span=10)
        arrivals = arrivals_from_database(db)
        rows = list(stream_temporal_join(query, arrivals))
        assert len(rows) == len(set(rows))


class TestBoundaryExpiry:
    """Watermark exactly at a tuple's right endpoint (closed-interval edge).

    ``advance_to(w)`` drains strictly below ``w``: a tuple expiring
    exactly at ``w`` may still join a future arrival starting at ``w``
    (closed intervals touch), so boundary expiry must be deferred — and
    then finalized *exactly once* by a later watermark or ``finish()``.
    """

    def _pair(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 5))
        op.insert("R2", (2, "h"), (2, 5))
        return op

    def test_watermark_at_right_endpoint_defers_expiry(self):
        op = self._pair()
        assert op.advance_to(5) == []
        assert op.active_count == 2  # nothing finalized yet

    def test_repeated_boundary_watermarks_do_not_duplicate(self):
        op = self._pair()
        assert op.advance_to(5) == []
        assert op.advance_to(5) == []
        out = op.advance_to(5.1)
        assert out == [((1, "h", 2), Interval(2, 5))]
        assert op.advance_to(5.1) == []
        assert op.finish() == []

    def test_boundary_expiry_then_finish_emits_exactly_once(self):
        op = self._pair()
        op.advance_to(5)
        out = op.finish()
        assert out == [((1, "h", 2), Interval(2, 5))]
        assert op.results().rows.count(((1, "h", 2), Interval(2, 5))) == 1

    def test_arrival_at_boundary_still_joins_deferred_tuple(self):
        op = self._pair()
        op.advance_to(5)
        out = op.insert("R2", (3, "h"), (5, 7))
        # Inserting at t=5 drains strictly-before-5 only; both results
        # appear when the boundary tuples finally expire.
        final = out + op.finish()
        assert sorted(final) == [
            ((1, "h", 2), Interval(2, 5)),
            ((1, "h", 3), Interval(5, 5)),
        ]

    def test_instant_tuple_at_watermark(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (3, 3))
        op.insert("R2", (2, "h"), (3, 3))
        assert op.advance_to(3) == []  # the instant [3,3] is not yet safe
        assert op.finish() == [((1, "h", 2), Interval(3, 3))]


class TestTelemetry:
    """``stats=`` wiring: the online operator reports the offline sweep's
    counters (satellite of the serving PR; exactness asserted below)."""

    #: Counters that must match the offline sweep *exactly* after a full
    #: endpoint-ordered replay. State-level totals (``hier.inserts`` /
    #: ``hier.deletes``) are order-invariant and included; tie-order
    #: sensitive internals (e.g. which of two same-endpoint tuples
    #: enumerates a shared result) are deliberately not.
    EXACT = (
        "sweep.events",
        "sweep.inserts",
        "sweep.enumerate_calls",
        "sweep.active_peak",
        "results",
        "hier.inserts",
        "hier.deletes",
    )

    @pytest.mark.parametrize(
        "query",
        [JoinQuery.star(3), JoinQuery.line(3), JoinQuery.hier(), JoinQuery.triangle()],
    )
    def test_counters_match_offline_sweep(self, query, rng):
        from repro.algorithms.timefirst import timefirst_join

        for _ in range(3):
            db = random_database(query, rng, n=14, domain=3)
            offline_stats = ExecutionStats()
            offline = timefirst_join(query, db, stats=offline_stats)

            online_stats = ExecutionStats()
            op = OnlineTemporalJoin(query, stats=online_stats)
            for relation, values, interval in arrivals_from_database(db):
                op.insert(relation, values, interval)
            op.finish()

            assert op.results().normalized() == offline.normalized()
            for name in self.EXACT:
                assert online_stats.get(name) == offline_stats.get(name), name

    def test_no_stats_records_nothing(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 3))
        op.finish()
        assert op._stats is None  # the stats=None path stays dark

    def test_stream_facade_forwards_stats(self, rng):
        q = JoinQuery.star(2)
        db = random_database(q, rng, n=10, domain=3)
        stats = ExecutionStats()
        rows = list(
            stream_temporal_join(q, arrivals_from_database(db), stats=stats)
        )
        assert stats["sweep.inserts"] == sum(len(r) for r in db.values())
        assert stats.get("results") == len(rows)

    def test_active_peak_tracks_pending(self):
        q = JoinQuery.star(2)
        stats = ExecutionStats()
        op = OnlineTemporalJoin(q, stats=stats)
        op.insert("R1", (1, "h"), (0, 10))
        op.insert("R2", (2, "h"), (1, 9))
        op.insert("R1", (3, "h"), (2, 8))
        assert stats["sweep.active_peak"] == 3
        op.finish()
        assert stats["sweep.active_peak"] == 3
        assert stats["sweep.events"] == 6


class TestClampTelemetry:
    """Non-strict clamps must never be silent (satellite 2)."""

    def test_clamp_records_counter_and_note(self):
        q = JoinQuery.star(2)
        stats = ExecutionStats()
        op = OnlineTemporalJoin(q, strict=False, stats=stats)
        op.insert("R1", (1, "h"), (0, 2))
        op.insert("R1", (2, "h"), (10, 12))  # drains [0,2] -> watermark 2
        op.insert("R2", (3, "h"), (1, 20))  # clamped to [2, 20]
        assert stats["online.clamped"] == 1
        assert "online.clamp_reason" in stats.notes
        reason = stats.notes["online.clamp_reason"]
        assert "clamped" in reason and "watermark 2" in reason

    def test_clamp_at_equal_watermark_is_not_a_clamp(self):
        q = JoinQuery.star(2)
        stats = ExecutionStats()
        op = OnlineTemporalJoin(q, strict=False, stats=stats)
        op.insert("R1", (1, "h"), (0, 2))
        op.advance_to(5)
        # Start exactly at the watermark: legal, no clamp, no note.
        out = op.insert("R2", (2, "h"), (5, 6))
        assert out == []
        assert stats.get("online.clamped") == 0
        assert "online.clamp_reason" not in stats.notes
        # Strict mode accepts it too.
        op2 = OnlineTemporalJoin(q, strict=True)
        op2.insert("R1", (1, "h"), (0, 2))
        op2.advance_to(5)
        op2.insert("R2", (2, "h"), (5, 6))  # must not raise

    def test_clamp_of_zero_length_interval(self):
        q = JoinQuery.star(2)
        stats = ExecutionStats()
        op = OnlineTemporalJoin(q, strict=False, stats=stats)
        op.insert("R1", (1, "h"), (0, 10))
        op.advance_to(5)
        # An instant tuple entirely in the past collapses to [w, w] and
        # can still join tuples alive at the watermark.
        out = op.insert("R2", (2, "h"), (3, 3))
        assert out == []
        assert stats["online.clamped"] == 1
        assert "[5, 5]" in stats.notes["online.clamp_reason"]
        final = op.finish()
        assert ((1, "h", 2), Interval(5, 5)) in final

    def test_strict_mode_rejects_instead_of_clamping(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q, strict=True)
        op.insert("R1", (1, "h"), (0, 10))
        op.advance_to(5)
        with pytest.raises(QueryError):
            op.insert("R2", (2, "h"), (3, 3))


class TestWatermarkContract:
    """advance_to monotonicity and finish() idempotency (satellite 3)."""

    def test_advance_to_declares_watermark(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        assert op.watermark is None
        op.advance_to(7)
        assert op.watermark == 7
        with pytest.raises(QueryError):
            op.insert("R1", (1, "h"), (3, 9))  # violates the declaration

    def test_non_monotone_watermark_is_a_noop(self):
        q = JoinQuery.star(2)
        stats = ExecutionStats()
        op = OnlineTemporalJoin(q, stats=stats)
        op.insert("R1", (1, "h"), (0, 4))
        op.insert("R2", (2, "h"), (1, 4))
        op.advance_to(10)
        assert op.watermark == 10
        out = op.advance_to(3)  # regression: no-op, nothing re-emitted
        assert out == []
        assert op.watermark == 10
        assert stats["online.watermark_regressions"] == 1
        # An equal watermark is idempotent, not a regression.
        assert op.advance_to(10) == []
        assert stats["online.watermark_regressions"] == 1

    def test_results_not_duplicated_after_regression(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 4))
        op.insert("R2", (2, "h"), (1, 4))
        first = op.advance_to(10)
        assert len(first) == 1
        assert op.advance_to(2) == []
        assert op.finish() == []
        assert len(op.results()) == 1

    def test_finish_is_idempotent(self):
        q = JoinQuery.star(2)
        op = OnlineTemporalJoin(q)
        op.insert("R1", (1, "h"), (0, 5))
        op.insert("R2", (2, "h"), (2, 5))
        first = op.finish()
        assert first == [((1, "h", 2), Interval(2, 5))]
        assert op.finish() == []  # second call: empty, no re-emission
        assert op.finish() == []
        assert len(op.results()) == 1
