"""Tests for the bench-kernels entry point and its regression gate."""

import json

from repro.bench.kernels import (
    check_against_baseline,
    main,
    run_bench,
    run_cell,
)


def _tiny_doc():
    # The "1k" size keeps the test fast while still timing real sweeps.
    return run_bench(sizes=("1k",), repeat=1)


def _pinned_doc():
    # Gate-logic tests compare ratios, not machines: pin the measured
    # speedups so a noisy cell (e.g. a sub-1.0x blip under suite load)
    # cannot change which gate rule fires.
    doc = _tiny_doc()
    for cell in doc["cells"]:
        cell["speedup"] = 2.0
    return doc


class TestRunBench:
    def test_document_shape(self):
        doc = _tiny_doc()
        assert doc["benchmark"] == "kernels"
        assert {c["family"] for c in doc["cells"]} == {"line3", "star3"}
        for cell in doc["cells"]:
            assert cell["ok"], cell
            assert cell["object_seconds"] > 0
            assert cell["kernel_seconds"] > 0
            assert cell["kernel"]["sort_calls"] == 1
            assert cell["kernel"]["rows"] == cell["input_tuples"]
        assert "speedup" in doc["rendered"]

    def test_cell_validates_engine_agreement(self):
        cell = run_cell("star3", "1k", repeat=1)
        assert cell["ok"]
        assert cell["results"] > 0


class TestGate:
    def test_passes_against_itself(self):
        doc = _pinned_doc()
        assert check_against_baseline(doc, doc, tolerance=0.15) == []

    def test_flags_regression_beyond_tolerance(self):
        doc = _pinned_doc()
        inflated = json.loads(json.dumps(doc))
        for cell in inflated["cells"]:
            cell["speedup"] *= 10
        failures = check_against_baseline(doc, inflated, tolerance=0.15)
        assert len(failures) == len(doc["cells"])
        assert all("regressed" in f for f in failures)

    def test_flags_kernel_slower_than_object(self):
        doc = _pinned_doc()
        slow = json.loads(json.dumps(doc))
        for cell in slow["cells"]:
            cell["speedup"] = 0.5
        failures = check_against_baseline(slow, doc, tolerance=0.15)
        assert all("slower than object" in f for f in failures)

    def test_flags_result_mismatch(self):
        doc = _pinned_doc()
        bad = json.loads(json.dumps(doc))
        bad["cells"][0]["ok"] = False
        failures = check_against_baseline(bad, doc, tolerance=0.15)
        assert any("different results" in f for f in failures)

    def test_new_cells_have_nothing_to_regress_against(self):
        doc = _pinned_doc()
        empty_baseline = {"cells": []}
        assert check_against_baseline(doc, empty_baseline) == []


class TestMain:
    def test_writes_json_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernels.json"
        rc = main(["--out", str(out), "--sizes", "1k", "--repeat", "1"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["benchmark"] == "kernels"
        captured = capsys.readouterr()
        assert "Kernel vs object" in captured.out

    def test_check_mode_round_trips(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main(["--out", str(baseline), "--sizes", "1k", "--repeat", "1"])
        assert rc == 0
        # Generous tolerance: this test exercises the round-trip
        # mechanics (write, read back, compare, exit 0), not the
        # machine's run-to-run timing stability at repeat=1.
        rc = main([
            "--check", "--baseline", str(baseline),
            "--sizes", "1k", "--repeat", "1", "--tolerance", "0.9",
        ])
        assert rc == 0
        assert "gate passed" in capsys.readouterr().out

    def test_check_mode_missing_baseline(self, tmp_path, capsys):
        rc = main([
            "--check", "--baseline", str(tmp_path / "nope.json"),
            "--sizes", "1k", "--repeat", "1",
        ])
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().out
