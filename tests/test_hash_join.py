"""Tests for binary hash joins and semijoins."""

from repro.core.interval import Interval
from repro.core.relation import TemporalRelation
from repro.nontemporal.hash_join import (
    estimate_join_size,
    hash_join,
    lookup_index,
    semijoin,
    shared_attrs,
)


def rel(name, attrs, rows):
    return TemporalRelation(name, attrs, rows)


R = rel("R", ("a", "b"), [((1, 2), (0, 10)), ((1, 3), (5, 15)), ((4, 2), (0, 2))])
S = rel("S", ("b", "c"), [((2, "x"), (8, 20)), ((3, "y"), (0, 4)), ((9, "z"), (0, 1))])


class TestSharedAttrs:
    def test_order_follows_left(self):
        assert shared_attrs(R, S) == ["b"]

    def test_disjoint(self):
        t = rel("T", ("z",), [((1,), (0, 1))])
        assert shared_attrs(R, t) == []


class TestHashJoin:
    def test_temporal_join_drops_disjoint(self):
        out = hash_join(R, S)
        rows = {v: iv for v, iv in out}
        # (1,2)+(2,x): [0,10]∩[8,20]=[8,10] ✓; (1,3)+(3,y): [5,15]∩[0,4]=∅ ✗
        # (4,2)+(2,x): [0,2]∩[8,20]=∅ ✗
        assert rows == {(1, 2, "x"): Interval(8, 10)}

    def test_schema_is_left_plus_right_extra(self):
        out = hash_join(R, S)
        assert out.attrs == ("a", "b", "c")

    def test_nontemporal_keeps_all_value_matches(self):
        out = hash_join(R, S, temporal=False)
        assert len(out) == 3

    def test_cartesian_when_no_shared(self):
        t = rel("T", ("z",), [(("u",), (0, 100)), (("v",), (50, 60))])
        out = hash_join(R, t)
        # Cartesian product of value tuples, filtered by interval overlap.
        expected = 0
        for v1, iv1 in R:
            for v2, iv2 in t:
                if iv1.intersects(iv2):
                    expected += 1
        assert len(out) == expected

    def test_join_empty_right(self):
        empty = rel("E", ("b", "c"), [])
        assert len(hash_join(R, empty)) == 0


class TestSemijoin:
    def test_keeps_matching(self):
        out = semijoin(R, S)
        assert sorted(v for v, _ in out) == [(1, 2), (1, 3), (4, 2)]

    def test_filters_nonmatching(self):
        s2 = rel("S2", ("b",), [((3,), (0, 1))])
        out = semijoin(R, s2)
        assert [v for v, _ in out] == [(1, 3)]

    def test_ignores_intervals(self):
        # Semijoin is value-only: disjoint intervals still match.
        s2 = rel("S2", ("b",), [((2,), (1000, 2000))])
        out = semijoin(R, s2)
        assert len(out) == 2

    def test_no_shared_attrs_nonempty_right(self):
        t = rel("T", ("z",), [((1,), (0, 1))])
        assert len(semijoin(R, t)) == len(R)

    def test_no_shared_attrs_empty_right(self):
        t = rel("T", ("z",), [])
        assert len(semijoin(R, t)) == 0


class TestEstimates:
    def test_shared_key_estimate(self):
        est = estimate_join_size(R, S)
        # |R|·|S| / max(d_b) = 9 / max(2, 3) = 3
        assert est == 3.0

    def test_cartesian_estimate(self):
        t = rel("T", ("z",), [((1,), (0, 1)), ((2,), (0, 1))])
        assert estimate_join_size(R, t) == 6.0

    def test_lookup_index(self):
        idx = lookup_index(R)
        assert idx[(1, 2)] == Interval(0, 10)
        assert len(idx) == 3
