"""Incremental-cache behavior: a warm run re-parses zero files, an edit
invalidates exactly the edited file, and warm results are byte-identical
to cold ones (including suppression accounting)."""

import json
import os

import pytest

from repro.analysis.cache import AnalysisCache, SCHEMA_VERSION, rules_salt
from repro.analysis.engine import run_lint
from repro.analysis.flow_rules import flow_rules
from repro.analysis.rules import default_rules


GOOD = "def add(a, b):\n    return a + b\n"
SUPPRESSED = (
    "def check(x):\n"
    "    assert x  # repro-lint: disable=no-bare-assert\n"
    "    return x\n"
)
BAD = "def check(x):\n    assert x\n    return x\n"


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "algorithms"
    pkg.mkdir(parents=True)
    (pkg / "good.py").write_text(GOOD)
    (pkg / "quiet.py").write_text(SUPPRESSED)
    (pkg / "bad.py").write_text(BAD)
    return tmp_path


def _run(tree, cache_dir):
    cwd = os.getcwd()
    os.chdir(tree)
    try:
        return run_lint(
            ["src"],
            default_rules() + flow_rules(),
            cache=AnalysisCache(str(cache_dir)),
        )
    finally:
        os.chdir(cwd)


class TestCacheLifecycle:
    def test_cold_then_warm(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = _run(tree, cache_dir)
        assert cold.files_scanned == 3
        assert cold.files_reparsed == 3
        assert cold.files_cached == 0

        warm = _run(tree, cache_dir)
        assert warm.files_scanned == 3
        assert warm.files_reparsed == 0
        assert warm.files_cached == 3

    def test_warm_results_identical(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = _run(tree, cache_dir)
        warm = _run(tree, cache_dir)
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]
        # The inline suppression in quiet.py replays from the cached table.
        assert cold.suppressed == warm.suppressed == 1
        assert [f.rule for f in cold.findings] == ["no-bare-assert"]

    def test_edit_invalidates_exactly_itself(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        _run(tree, cache_dir)
        target = tree / "src" / "repro" / "algorithms" / "good.py"
        target.write_text("def add(a, b):\n    return b + a\n")
        after = _run(tree, cache_dir)
        assert after.files_reparsed == 1
        assert after.files_cached == 2

    def test_cache_file_is_schema_stamped(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        _run(tree, cache_dir)
        payload = json.loads((cache_dir / "files.json").read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert len(payload["files"]) == 3

    def test_schema_mismatch_discards_cache(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        _run(tree, cache_dir)
        path = cache_dir / "files.json"
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        after = _run(tree, cache_dir)
        assert after.files_reparsed == 3
        assert after.files_cached == 0

    def test_corrupt_cache_file_is_tolerated(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        _run(tree, cache_dir)
        (cache_dir / "files.json").write_text("{not json")
        after = _run(tree, cache_dir)
        assert after.files_reparsed == 3

    def test_rule_set_change_invalidates(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        _run(tree, cache_dir)
        cwd = os.getcwd()
        os.chdir(tree)
        try:
            fewer = [r for r in default_rules() if r.id != "no-bare-assert"]
            report = run_lint(
                ["src"], fewer, cache=AnalysisCache(str(cache_dir))
            )
        finally:
            os.chdir(cwd)
        assert report.files_reparsed == 3
        assert report.findings == []


class TestDigest:
    def test_digest_depends_on_source_and_salt(self):
        salt_a = rules_salt(["r1", "r2"])
        salt_b = rules_salt(["r1"])
        assert AnalysisCache.digest("x = 1\n", salt_a) != AnalysisCache.digest(
            "x = 2\n", salt_a
        )
        assert AnalysisCache.digest("x = 1\n", salt_a) != AnalysisCache.digest(
            "x = 1\n", salt_b
        )

    def test_salt_is_order_insensitive(self):
        assert rules_salt(["a", "b"]) == rules_salt(["b", "a"])
