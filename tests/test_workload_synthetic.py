"""Tests for the synthetic workload generator (Section 6.1)."""

import pytest

from repro.algorithms.binary import binary_temporal_join
from repro.algorithms.registry import temporal_join
from repro.core.errors import QueryError
from repro.core.query import JoinQuery
from repro.workloads.synthetic import (
    SyntheticConfig,
    backbone_durations,
    expected_result_count,
    generate,
)

CFG = SyntheticConfig(n_dangling=60, n_results=25, seed=3)


class TestGenerate:
    def test_deterministic(self):
        q = JoinQuery.line(4)
        a = generate(q, CFG)
        b = generate(q, CFG)
        for name in q.edge_names:
            assert a[name].rows == b[name].rows

    def test_rejects_non_binary_queries(self):
        with pytest.raises(QueryError):
            generate(JoinQuery({"R": ("a", "b", "c")}), CFG)

    @pytest.mark.parametrize(
        "query", [JoinQuery.line(4), JoinQuery.star(4), JoinQuery.cycle(4)]
    )
    def test_final_results_are_exactly_the_backbone(self, query):
        db = generate(query, CFG)
        for tau in [0, 100, 500]:
            out = temporal_join(query, db, tau=tau)
            assert len(out) == expected_result_count(CFG, tau)

    def test_results_vanish_at_max_durability(self):
        q = JoinQuery.line(4)
        db = generate(q, CFG)
        assert len(temporal_join(q, db, tau=CFG.max_durability)) == 0

    def test_dangling_mass_creates_large_pairwise_joins(self):
        q = JoinQuery.line(4)
        db = generate(q, CFG)
        first = binary_temporal_join(db["R1"], db["R2"])
        # The pairwise intermediate must dwarf the final result count.
        assert len(first) > 10 * expected_result_count(CFG, 0)

    def test_dangling_prefixes_survive_until_last_join(self):
        # Every (n-1)-prefix of the dangling mass stays temporally alive —
        # the property that makes BASELINE's intermediates multiply — and
        # only the final join kills it.
        q = JoinQuery.line(4)
        db = generate(q, CFG)
        two = binary_temporal_join(db["R1"], db["R2"])
        three = binary_temporal_join(two, db["R3"])
        four = binary_temporal_join(three, db["R4"])
        backbone = expected_result_count(CFG, 0)
        assert len(three) > len(two)  # multiplicative growth
        assert len(four) == backbone  # full combinations: backbone only

    def test_input_sizes_roughly_balanced(self):
        q = JoinQuery.cycle(4)
        db = generate(q, CFG)
        sizes = [len(db[n]) for n in q.edge_names]
        assert max(sizes) <= 3 * min(sizes)


class TestBackbone:
    def test_durations_decay(self):
        durs = backbone_durations(CFG)
        assert durs == sorted(durs, reverse=True)
        assert all(0 < d < CFG.max_durability for d in durs)

    def test_expected_count_monotone(self):
        counts = [expected_result_count(CFG, tau) for tau in range(0, 1001, 100)]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == CFG.n_results
        assert counts[-1] == 0
