"""Tests for repro.core.interval: Interval and IntervalSet."""

import math

import pytest

from repro.core.errors import IntervalError
from repro.core.interval import Interval, IntervalSet, coalesce, intersect_all


class TestIntervalConstruction:
    def test_basic(self):
        iv = Interval(1, 5)
        assert iv.lo == 1 and iv.hi == 5

    def test_instant(self):
        iv = Interval.instant(3)
        assert iv.lo == iv.hi == 3
        assert iv.is_instant

    def test_always_is_unbounded(self):
        iv = Interval.always()
        assert iv.lo == -math.inf and iv.hi == math.inf
        assert not iv.is_bounded

    def test_empty_literal_rejected(self):
        with pytest.raises(IntervalError):
            Interval(5, 1)

    def test_nan_rejected(self):
        with pytest.raises(IntervalError):
            Interval(float("nan"), 1)

    def test_coerce_interval_passthrough(self):
        iv = Interval(1, 2)
        assert Interval.coerce(iv) is iv

    def test_coerce_pair(self):
        assert Interval.coerce((1, 4)) == Interval(1, 4)

    def test_coerce_list(self):
        assert Interval.coerce([2, 9]) == Interval(2, 9)

    def test_coerce_scalar_makes_instant(self):
        assert Interval.coerce(7) == Interval(7, 7)

    def test_coerce_garbage_rejected(self):
        with pytest.raises(IntervalError):
            Interval.coerce("nope")

    def test_frozen(self):
        iv = Interval(0, 1)
        with pytest.raises(AttributeError):
            iv.lo = 5  # type: ignore[misc]

    def test_ordering_is_lexicographic(self):
        assert Interval(1, 2) < Interval(1, 3) < Interval(2, 2)


class TestIntervalPredicates:
    def test_contains_interior_and_endpoints(self):
        iv = Interval(2, 6)
        assert iv.contains(2) and iv.contains(6) and iv.contains(4)
        assert not iv.contains(1.999) and not iv.contains(6.001)

    def test_intersects_overlap(self):
        assert Interval(1, 5).intersects(Interval(4, 9))

    def test_intersects_touching_endpoints(self):
        # Closed intervals: touching counts (load-bearing for the sweep).
        assert Interval(1, 5).intersects(Interval(5, 9))

    def test_intersects_disjoint(self):
        assert not Interval(1, 2).intersects(Interval(3, 4))

    def test_intersects_containment(self):
        assert Interval(0, 10).intersects(Interval(3, 4))

    def test_covers(self):
        assert Interval(0, 10).covers(Interval(3, 4))
        assert not Interval(3, 4).covers(Interval(0, 10))
        assert Interval(3, 4).covers(Interval(3, 4))

    def test_precedes_with_gap(self):
        assert Interval(0, 3).precedes(Interval(5, 6), gap=2)
        assert not Interval(0, 3).precedes(Interval(4, 6), gap=2)


class TestIntervalCombinators:
    def test_intersect_nonempty(self):
        assert Interval(1, 5).intersect(Interval(3, 9)) == Interval(3, 5)

    def test_intersect_touching_gives_instant(self):
        assert Interval(1, 5).intersect(Interval(5, 9)) == Interval(5, 5)

    def test_intersect_empty_gives_none(self):
        assert Interval(1, 2).intersect(Interval(3, 4)) is None

    def test_duration(self):
        assert Interval(3, 10).duration == 7
        assert Interval.instant(4).duration == 0
        assert Interval.always().duration == math.inf

    def test_shift(self):
        assert Interval(1, 3).shift(10) == Interval(11, 13)
        assert Interval(1, 3).shift(-1) == Interval(0, 2)

    def test_shrink_ok(self):
        assert Interval(0, 10).shrink(2) == Interval(2, 8)

    def test_shrink_to_instant(self):
        assert Interval(0, 10).shrink(5) == Interval(5, 5)

    def test_shrink_vanishes(self):
        assert Interval(0, 10).shrink(5.01) is None

    def test_expand_inverts_shrink(self):
        iv = Interval(3, 9)
        assert iv.shrink(2).expand(2) == iv

    def test_clip_alias(self):
        assert Interval(0, 4).clip(Interval(2, 9)) == Interval(2, 4)

    def test_shrink_infinite_amount_always_is_fixed_point(self):
        # Regression: -inf + inf = nan used to raise an opaque
        # IntervalError from the Interval constructor.
        assert Interval.always().shrink(math.inf) == Interval.always()

    def test_shrink_infinite_amount_half_bounded(self):
        assert Interval(5, math.inf).shrink(math.inf) == Interval(
            math.inf, math.inf
        )
        assert Interval(-math.inf, 5).shrink(math.inf) == Interval(
            -math.inf, -math.inf
        )

    def test_shrink_infinite_amount_bounded_vanishes(self):
        assert Interval(5, 10).shrink(math.inf) is None

    def test_infinite_endpoints_are_shrink_fixed_points(self):
        iv = Interval(0, math.inf)
        assert iv.shrink(3) == Interval(3, math.inf)
        assert Interval(-math.inf, 10).shrink(3) == Interval(-math.inf, 7)

    def test_infinite_endpoints_are_expand_fixed_points(self):
        assert Interval(3, math.inf).expand(3) == Interval(0, math.inf)
        assert Interval.always().expand(math.inf) == Interval.always()

    def test_expand_inverts_shrink_with_infinite_endpoints(self):
        for iv in (
            Interval.always(),
            Interval(0, math.inf),
            Interval(-math.inf, 10),
        ):
            assert iv.shrink(4).expand(4) == iv

    def test_iter_unpacks(self):
        lo, hi = Interval(2, 7)
        assert (lo, hi) == (2, 7)


class TestIntersectAll:
    def test_empty_iterable_is_always(self):
        assert intersect_all([]) == Interval.always()

    def test_chain(self):
        ivs = [Interval(0, 10), Interval(2, 8), Interval(4, 12)]
        assert intersect_all(ivs) == Interval(4, 8)

    def test_empty_result(self):
        assert intersect_all([Interval(0, 2), Interval(5, 7)]) is None

    def test_matches_pairwise_fold(self):
        ivs = [Interval(0, 9), Interval(1, 7), Interval(3, 11)]
        folded = ivs[0]
        for iv in ivs[1:]:
            folded = folded.intersect(iv)
        assert intersect_all(ivs) == folded


class TestIntervalSet:
    def test_coalesces_overlaps(self):
        s = IntervalSet([(0, 3), (2, 5), (7, 9)])
        assert list(s) == [Interval(0, 5), Interval(7, 9)]

    def test_coalesces_touching(self):
        s = IntervalSet([(0, 3), (3, 5)])
        assert list(s) == [Interval(0, 5)]

    def test_keeps_disjoint(self):
        s = IntervalSet([(0, 1), (3, 4)])
        assert len(s) == 2

    def test_empty(self):
        s = IntervalSet()
        assert not s and len(s) == 0 and s.span is None

    def test_contains(self):
        s = IntervalSet([(0, 2), (5, 7)])
        assert s.contains(1) and s.contains(5)
        assert not s.contains(3)

    def test_total_duration(self):
        assert IntervalSet([(0, 2), (5, 8)]).total_duration() == 5

    def test_intersect_sets(self):
        a = IntervalSet([(0, 5), (10, 15)])
        b = IntervalSet([(3, 12)])
        assert list(a.intersect(b)) == [Interval(3, 5), Interval(10, 12)]

    def test_intersect_disjoint_sets(self):
        a = IntervalSet([(0, 1)])
        b = IntervalSet([(2, 3)])
        assert not a.intersect(b)

    def test_union(self):
        a = IntervalSet([(0, 2)])
        b = IntervalSet([(1, 5)])
        assert list(a.union(b)) == [Interval(0, 5)]

    def test_shrink_drops_vanished(self):
        s = IntervalSet([(0, 2), (5, 20)]).shrink(2)
        assert list(s) == [Interval(7, 18)]

    def test_filter_durable(self):
        s = IntervalSet([(0, 2), (5, 20)]).filter_durable(5)
        assert list(s) == [Interval(5, 20)]

    def test_span(self):
        assert IntervalSet([(0, 1), (9, 12)]).span == Interval(0, 12)

    def test_equality_and_hash(self):
        a = IntervalSet([(0, 3), (2, 5)])
        b = IntervalSet([(0, 5)])
        assert a == b and hash(a) == hash(b)

    def test_indexing(self):
        s = IntervalSet([(5, 6), (0, 1)])
        assert s[0] == Interval(0, 1)

    def test_coalesce_helper(self):
        assert coalesce([(1, 2), (2, 4)]) == [Interval(1, 4)]
