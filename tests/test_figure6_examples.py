"""The three Figure 6 example joins, with their stated fhtw/hhtw values.

Figure 6 gives three queries and their widths:

1. two triangles sharing a vertex (the bowtie): fhtw = hhtw = 1.5;
2. an acyclic, non-hierarchical join (line-4): fhtw = 1, hhtw = 2;
3. two triangles joined by a bridging edge: a GHD whose triangle bags
   give fhtw = 1.5, while the minimum *hierarchical* GHD needs a merged
   4-attribute bag and has hhtw = 2.
"""

import pytest

from repro.analysis.plans import verify_ghd, verify_plan
from repro.core.classification import classify
from repro.core.query import JoinQuery
from repro.nontemporal.ghd import fhtw, fhtw_ghd, hhtw, hhtw_ghd


def two_triangles_with_bridge() -> JoinQuery:
    """Figure 6's third example: triangles (x1x2x3) and (x4x5x6) linked
    by the edge (x1, x6)."""
    return JoinQuery(
        {
            "R1": ("x1", "x2"),
            "R2": ("x2", "x3"),
            "R3": ("x3", "x1"),
            "R4": ("x4", "x5"),
            "R5": ("x5", "x6"),
            "R6": ("x6", "x4"),
            "R7": ("x1", "x6"),
        }
    )


class TestFigure6:
    def test_example1_bowtie(self):
        hg = JoinQuery.bowtie().hypergraph
        assert fhtw(hg) == 1.5
        assert hhtw(hg) == 1.5
        _, ghd = hhtw_ghd(hg)
        verify_ghd(ghd)
        assert len(ghd.bags) == 2
        assert sorted(len(b) for b in ghd.bags.values()) == [3, 3]

    def test_example2_acyclic_non_hierarchical(self):
        hg = JoinQuery.line(4).hypergraph
        assert fhtw(hg) == 1.0
        assert hhtw(hg) == 2.0
        _, ghd = hhtw_ghd(hg)
        verify_ghd(ghd)
        assert ghd.is_hierarchical()

    def test_example3_bridged_triangles_fhtw(self):
        q = two_triangles_with_bridge()
        assert classify(q.hypergraph).value == "cyclic"
        assert fhtw(q.hypergraph) == 1.5
        _, ghd = fhtw_ghd(q.hypergraph)
        verify_ghd(ghd)
        # The fhtw decomposition keeps the two triangle bags.
        bag_sets = sorted(frozenset(b) for b in ghd.bags.values())
        assert frozenset({"x1", "x2", "x3"}) in bag_sets
        assert frozenset({"x4", "x5", "x6"}) in bag_sets

    def test_example3_bridged_triangles_hhtw(self):
        q = two_triangles_with_bridge()
        assert hhtw(q.hypergraph) == 2.0
        width, ghd = hhtw_ghd(q.hypergraph)
        verify_ghd(ghd)
        assert width == 2.0
        assert ghd.is_hierarchical()
        # The hierarchical GHD must merge the bridge into a triangle bag
        # (a 4-attribute bag appears).
        assert max(len(b) for b in ghd.bags.values()) >= 4

    def test_example3_all_algorithms_agree(self, rng):
        from conftest import random_database
        from repro.algorithms.naive import naive_join
        from repro.algorithms.registry import temporal_join

        q = two_triangles_with_bridge()
        for _ in range(2):
            db = random_database(q, rng, n=8, domain=3)
            want = naive_join(q, db).normalized()
            for alg in ["timefirst", "hybrid", "baseline", "joinfirst", "auto"]:
                got = temporal_join(q, db, algorithm=alg)
                assert got.normalized() == want, alg

    def test_example3_theorem12_exponent(self):
        from repro.core.planner import plan

        p = plan(two_triangles_with_bridge())
        verify_plan(p)  # static width/exponent accounting must agree
        # min(fhtw + 1, hhtw) = min(2.5, 2) = 2.
        assert p.exponent == 2.0
        assert p.algorithm == "hybrid"
