"""White-box tests for the §3.2 hierarchical sweep structure."""

import random

import pytest

from repro.algorithms.hierarchical import HierarchicalState
from repro.algorithms.naive import naive_join
from repro.algorithms.timefirst import sweep, timefirst_join
from repro.core.errors import QueryError
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.core.result import JoinResultSet

from conftest import random_database


class TestConstruction:
    def test_rejects_non_hierarchical(self):
        with pytest.raises(QueryError):
            HierarchicalState(JoinQuery.line(3))

    def test_accepts_all_hierarchical_families(self):
        for q in [JoinQuery.star(3), JoinQuery.hier(), JoinQuery.line(2)]:
            HierarchicalState(q)


class TestIncrementalMaintenance:
    def test_insert_then_enumerate_single_relation(self):
        q = JoinQuery({"R": ("a", "b")})
        state = HierarchicalState(q)
        out = JoinResultSet(q.attrs)
        state.insert("R", (1, 2), Interval(0, 5))
        state.enumerate_results("R", (1, 2), Interval(0, 5), out)
        assert out.rows == [((1, 2), Interval(0, 5))]

    def test_delete_removes_from_results(self):
        q = JoinQuery.star(2)
        state = HierarchicalState(q)
        out = JoinResultSet(q.attrs)
        state.insert("R1", (1, "h"), Interval(0, 9))
        state.insert("R2", (2, "h"), Interval(0, 9))
        state.delete("R2", (2, "h"), Interval(0, 9))
        state.enumerate_results("R1", (1, "h"), Interval(0, 9), out)
        assert len(out) == 0

    def test_enumerate_requires_all_branches(self):
        q = JoinQuery.star(3)
        state = HierarchicalState(q)
        out = JoinResultSet(q.attrs)
        state.insert("R1", (1, "h"), Interval(0, 9))
        state.insert("R2", (2, "h"), Interval(0, 9))
        # R3 missing: no results.
        state.enumerate_results("R1", (1, "h"), Interval(0, 9), out)
        assert len(out) == 0
        state.insert("R3", (3, "h"), Interval(0, 9))
        state.enumerate_results("R1", (1, "h"), Interval(0, 9), out)
        assert out.values_only() == [(1, "h", 2, 3)]

    def test_group_mismatch_blocks(self):
        q = JoinQuery.star(2)
        state = HierarchicalState(q)
        out = JoinResultSet(q.attrs)
        state.insert("R1", (1, "h1"), Interval(0, 9))
        state.insert("R2", (2, "h2"), Interval(0, 9))  # different center
        state.enumerate_results("R1", (1, "h1"), Interval(0, 9), out)
        assert len(out) == 0

    def test_result_interval_is_intersection(self):
        q = JoinQuery.star(2)
        state = HierarchicalState(q)
        out = JoinResultSet(q.attrs)
        state.insert("R1", (1, "h"), Interval(0, 7))
        state.insert("R2", (2, "h"), Interval(3, 12))
        state.enumerate_results("R1", (1, "h"), Interval(0, 7), out)
        assert out.rows == [((1, "h", 2), Interval(3, 7))]

    def test_reinsert_after_delete(self):
        q = JoinQuery.star(2)
        state = HierarchicalState(q)
        out = JoinResultSet(q.attrs)
        state.insert("R1", (1, "h"), Interval(0, 9))
        state.insert("R2", (2, "h"), Interval(0, 9))
        state.delete("R1", (1, "h"), Interval(0, 9))
        state.insert("R1", (1, "h"), Interval(2, 5))
        state.enumerate_results("R2", (2, "h"), Interval(0, 9), out)
        assert out.rows == [((1, "h", 2), Interval(2, 5))]


class TestFigure5Example:
    def test_example5_enumeration(self, figure5_database):
        """Example 5 of the paper: REPORT for (a1, b1) ∈ R1 on Q_hier."""
        q = JoinQuery.hier()
        state = HierarchicalState(q)
        for name, rel in figure5_database.items():
            for values, interval in rel:
                state.insert(name, values, interval)
        out = JoinResultSet(q.attrs)
        a = ("a1", "b1")
        state.enumerate_results("R1", a, Interval.always(), out)
        # S(root, a) = 2 (D-side) × 1 (E) × [2 (c1: f1,f2 × g1) + 1 (c2)]
        # = 2 × 1 × 3 = 6 results.
        assert len(out) == 6
        # Spot-check one tuple: attrs order (A, B, D, E, C, F, G).
        assert ("a1", "b1", "d1", "e1", "c1", "f1", "g1") in out.values_only()
        assert ("a1", "b1", "d2", "e1", "c2", "f1", "g2") in out.values_only()


class TestSweepIntegration:
    @pytest.mark.parametrize(
        "query",
        [JoinQuery.star(2), JoinQuery.star(4), JoinQuery.hier(), JoinQuery.line(2)],
    )
    def test_matches_naive(self, query, rng):
        for _ in range(5):
            db = random_database(query, rng, n=12, domain=3)
            got = sweep(query, db, HierarchicalState(query))
            want = naive_join(query, db)
            assert got.normalized() == want.normalized()

    def test_r_hierarchical_via_reduction(self, rng):
        query = JoinQuery(
            {"R1": ("a", "b", "c"), "R2": ("a", "b"), "R3": ("b", "c")}
        )
        assert not query.is_hierarchical and query.is_r_hierarchical
        for _ in range(4):
            db = random_database(query, rng, n=10, domain=3)
            got = timefirst_join(query, db)
            want = naive_join(query, db)
            assert got.normalized() == want.normalized()

    def test_duplicate_free_with_shared_endpoints(self):
        # Many tuples share the same right endpoint: each result must be
        # enumerated exactly once.
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation(
                "R1", ("x1", "y"), [((i, "h"), (0, 10)) for i in range(5)]
            ),
            "R2": TemporalRelation(
                "R2", ("x2", "y"), [((i, "h"), (0, 10)) for i in range(5)]
            ),
        }
        got = timefirst_join(q, db)
        assert len(got) == 25
        assert len(set(got.values_only())) == 25

    def test_zero_length_intervals(self):
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "y"), [((1, "h"), (5, 5))]),
            "R2": TemporalRelation("R2", ("x2", "y"), [((2, "h"), (5, 5))]),
        }
        got = timefirst_join(q, db)
        assert got.rows == [((1, "h", 2), Interval(5, 5))]

    def test_touching_endpoints_join(self):
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "y"), [((1, "h"), (0, 5))]),
            "R2": TemporalRelation("R2", ("x2", "y"), [((2, "h"), (5, 9))]),
        }
        got = timefirst_join(q, db)
        assert got.rows == [((1, "h", 2), Interval(5, 5))]
