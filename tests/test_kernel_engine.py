"""Kernel engine: dispatch, columns, counters, timeline bridge.

The kernel substrate's contract is *indistinguishability*: the same
normalized results, the same ``sweep.*`` / ``hier.*`` counter values and
the same dispatch ergonomics as the object path, plus the ``kernel.*``
telemetry that is new. The heavier randomized equality guarantees live
in ``test_kernel_equivalence.py`` (hypothesis); this file pins the
mechanics.
"""

import math
import pytest

from repro import ExecutionStats, explain_analyze, temporal_join
from repro.core.errors import QueryError
from repro.core.interval import Interval
from repro.core.planner import plan
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.core.timeline import concurrency_timeline, timeline_from_sorted_events
from repro.kernels import (
    KernelColumns,
    build_columns,
    kernel_timefirst_join,
    shard_row_ids,
    supports_kernel,
)
from repro.algorithms.registry import available_algorithms

from conftest import random_database


@pytest.fixture
def line3(rng):
    query = JoinQuery.line(3)
    return query, random_database(query, rng, n=15, domain=4)


@pytest.fixture
def star3(rng):
    query = JoinQuery.star(3)
    return query, random_database(query, rng, n=15, domain=4)


class TestDispatch:
    def test_engine_values_accepted(self, line3):
        query, db = line3
        ref = temporal_join(query, db, algorithm="timefirst", engine="object")
        for engine in ("auto", "kernel"):
            got = temporal_join(query, db, algorithm="timefirst", engine=engine)
            assert got.normalized() == ref.normalized()

    def test_unknown_engine_rejected(self, line3):
        query, db = line3
        with pytest.raises(QueryError, match="engine"):
            temporal_join(query, db, engine="vectorized")

    def test_kernel_engine_on_unsupported_algorithm_degrades(self, star3):
        """Satellite bugfix: ``engine=`` must be *stripped* for algorithms
        without a kernel fast path, never forwarded (TypeError) nor
        rejected (QueryError)."""
        # star3 is hierarchical, so every registered algorithm (including
        # timefirst-cm) accepts it.
        query, db = star3
        for algorithm in available_algorithms():
            ref = temporal_join(query, db, algorithm=algorithm, engine="object")
            got = temporal_join(query, db, algorithm=algorithm, engine="kernel")
            assert got.normalized() == ref.normalized(), algorithm

    def test_state_factory_forces_object_path(self, star3):
        query, db = star3
        from repro.algorithms.hierarchical import HierarchicalState

        stats = ExecutionStats()
        out = temporal_join(
            query, db, algorithm="timefirst", engine="kernel",
            state_factory=lambda q, d: HierarchicalState(q),
            stats=stats,
        )
        ref = temporal_join(query, db, algorithm="timefirst", engine="object")
        assert out.normalized() == ref.normalized()
        # The kernel never ran: no interning pass happened.
        assert "kernel.sort_calls" not in stats

    def test_supports_kernel_probe(self):
        assert supports_kernel("timefirst")
        for name in ("baseline", "hybrid", "joinfirst", "naive", "timefirst-cm"):
            assert not supports_kernel(name)

    def test_plan_reports_engine(self):
        assert plan(JoinQuery.star(3)).engine == "kernel"
        assert plan(JoinQuery.triangle()).engine == "object"  # hybrid
        assert "engine" in plan(JoinQuery.star(3)).explain()

    def test_explain_analyze_reports_engine(self, star3):
        query, db = star3
        report = explain_analyze(query, db, algorithm="timefirst")
        assert report.engine == "kernel"
        assert "engine:     kernel" in report.render()
        report = explain_analyze(
            query, db, algorithm="timefirst", engine="object"
        )
        assert report.engine == "object"
        report = explain_analyze(query, db, algorithm="baseline")
        assert report.engine == "object"


class TestCounters:
    def test_sort_happens_once_per_call(self, line3):
        """Satellite: the event stream is built and sorted exactly once
        per ``temporal_join`` call, shared by the whole sweep."""
        query, db = line3
        stats = ExecutionStats()
        temporal_join(query, db, algorithm="timefirst", stats=stats)
        assert stats["kernel.sort_calls"] == 1
        temporal_join(query, db, algorithm="timefirst", stats=stats)
        assert stats["kernel.sort_calls"] == 2  # accumulation, not reset

    def test_kernel_counters_recorded(self, line3):
        query, db = line3
        n = sum(len(rel) for rel in db.values())
        stats = ExecutionStats()
        temporal_join(query, db, algorithm="timefirst", stats=stats)
        assert stats["kernel.rows"] == n
        assert stats["kernel.interned_values"] >= 1
        assert stats["kernel.distinct_endpoints"] >= 1
        assert "phase.kernel.intern" in stats.timers
        assert "phase.kernel.rank" in stats.timers
        assert "phase.events" in stats.timers
        assert "phase.sweep" in stats.timers

    def test_sweep_counters_match_object_engine(self, line3, star3):
        for query, db in (line3, star3):
            kernel, obj = ExecutionStats(), ExecutionStats()
            temporal_join(query, db, algorithm="timefirst",
                          engine="kernel", stats=kernel)
            temporal_join(query, db, algorithm="timefirst",
                          engine="object", stats=obj)
            for key in ("sweep.events", "sweep.inserts",
                        "sweep.enumerate_calls", "sweep.active_peak",
                        "results"):
                assert kernel[key] == obj[key], key

    def test_hier_counters_match_object_engine(self, star3):
        query, db = star3
        kernel, obj = ExecutionStats(), ExecutionStats()
        temporal_join(query, db, algorithm="timefirst",
                      engine="kernel", stats=kernel)
        temporal_join(query, db, algorithm="timefirst",
                      engine="object", stats=obj)
        for key in ("hier.inserts", "hier.deletes", "hier.support_updates",
                    "hier.report_fragments"):
            assert kernel.get(key) == obj.get(key), key


class TestColumns:
    def test_rank_roundtrip_is_exact(self, line3):
        _, db = line3
        columns = build_columns(db)
        rid = 0
        for name in db:
            for _, interval in db[name]:
                assert columns.rank_times[columns.row_lo[rid]] == interval.lo
                assert columns.rank_times[columns.row_hi[rid]] == interval.hi
                rid += 1

    def test_event_codes_sorted_and_complete(self, line3):
        _, db = line3
        columns = build_columns(db)
        codes = columns.event_codes
        assert codes == sorted(codes)
        assert len(codes) == 2 * columns.n_rows

    def test_infinite_endpoints_rank_as_ordinary_values(self):
        query = JoinQuery({"R": ("a", "b"), "S": ("b", "c")})
        inf = float("inf")
        db = {
            "R": TemporalRelation("R", ("a", "b"),
                                  [((1, 2), Interval(-inf, 5)),
                                   ((3, 2), Interval(0, inf))]),
            "S": TemporalRelation("S", ("b", "c"),
                                  [((2, 7), Interval.always())]),
        }
        columns = build_columns(db)
        assert columns.rank_times[0] == -inf
        assert columns.rank_times[-1] == inf
        ref = temporal_join(query, db, algorithm="timefirst", engine="object")
        got = kernel_timefirst_join(query, db)
        assert got.normalized() == ref.normalized()

    def test_deintern_restores_original_objects(self):
        query = JoinQuery({"R": ("a", "b"), "S": ("b", "c")})
        db = {
            "R": TemporalRelation("R", ("a", "b"),
                                  [(("x", ("t", 1)), (0, 4))]),
            "S": TemporalRelation("S", ("b", "c"),
                                  [((("t", 1), None), (2, 6))]),
        }
        out = kernel_timefirst_join(query, db)
        assert out.normalized() == [(("x", ("t", 1), None), Interval(2, 4))]

    def test_subset_reranks_locally(self, line3):
        _, db = line3
        columns = build_columns(db)
        sub = columns.subset([0, 2, 4])
        assert sub.n_rows == 3
        assert sub.event_codes == sorted(sub.event_codes)
        for local, rid in enumerate([0, 2, 4]):
            assert sub.rank_times[sub.row_lo[local]] == \
                columns.rank_times[columns.row_lo[rid]]
            assert sub.row_values[local] == columns.row_values[rid]

    def test_columns_pickle_roundtrip(self, line3):
        import pickle

        _, db = line3
        columns = build_columns(db)
        clone = pickle.loads(pickle.dumps(columns))
        assert isinstance(clone, KernelColumns)
        assert clone.event_codes == columns.event_codes
        assert clone.row_values == columns.row_values

    def test_shard_row_ids_covers_every_row(self, line3):
        _, db = line3
        columns = build_columns(db)
        cuts = (5, 15)
        shards = shard_row_ids(columns, cuts)
        seen = set()
        for rids in shards:
            seen.update(rids)
        assert seen == set(range(columns.n_rows))


class TestDuplicateActiveTuples:
    def test_kernel_hierarchical_rejects_duplicates_like_object(self):
        query = JoinQuery({"R": ("a", "b"), "S": ("b", "c")})
        dup = TemporalRelation("R", ("a", "b"), check_distinct=False)
        dup._rows = [(("a1", "b1"), Interval(0, 10)),
                     (("a1", "b1"), Interval(5, 15))]
        db = {
            "R": dup,
            "S": TemporalRelation("S", ("b", "c"), [(("b1", "c1"), (2, 12))]),
        }
        with pytest.raises(QueryError, match="duplicate active tuple"):
            temporal_join(query, db, algorithm="timefirst", engine="object")
        with pytest.raises(QueryError, match="duplicate active tuple"):
            kernel_timefirst_join(query, db)


class TestTimelineBridge:
    def test_columns_timeline_matches_interval_resweep(self, rng):
        """Satellite regression: Timeline built from the pre-sorted
        kernel endpoint arrays is identical to the raw-interval sweep."""
        for _ in range(10):
            intervals = []
            rows = []
            for i in range(rng.randrange(1, 25)):
                lo = rng.randrange(-5, 10)
                iv = Interval(lo, lo + rng.randrange(0, 6))
                intervals.append(iv)
                rows.append(((i,), iv))
            rel = TemporalRelation("R", ("a",), rows)
            columns = build_columns({"R": rel})
            assert columns.timeline() == concurrency_timeline(intervals)

    def test_timeline_with_duplicate_and_infinite_endpoints(self):
        inf = float("inf")
        intervals = [Interval(0, 5), Interval(0, 5), Interval(5, 5),
                     Interval(-inf, 0), Interval(5, inf)]
        rows = [((i,), iv) for i, iv in enumerate(intervals)]
        columns = build_columns({"R": TemporalRelation("R", ("a",), rows)})
        assert columns.timeline() == concurrency_timeline(intervals)

    def test_empty_events(self):
        assert timeline_from_sorted_events(()) == concurrency_timeline([])
        assert build_columns({}).timeline() == concurrency_timeline([])


class TestTauReduction:
    def test_kernel_tau_matches_object(self, line3, star3):
        for query, db in (line3, star3):
            for tau in (0, 1, 7):
                ref = temporal_join(query, db, tau=tau,
                                    algorithm="timefirst", engine="object")
                got = temporal_join(query, db, tau=tau,
                                    algorithm="timefirst", engine="kernel")
                assert got.normalized() == ref.normalized(), tau

    def test_non_finite_tau_still_rejected(self, line3):
        query, db = line3
        with pytest.raises(QueryError):
            temporal_join(query, db, tau=math.inf, engine="kernel")
