"""Shared fixtures for the test suite (generators live in repro.testing)."""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro import JoinQuery, TemporalRelation
from repro.core.interval import Interval
from repro.testing import random_instance, random_temporal_relation

# Back-compat aliases used throughout the suite.
random_relation = random_temporal_relation
random_database = random_instance


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20220612)


@pytest.fixture
def figure2_database() -> Dict[str, TemporalRelation]:
    """The paper's Figure 2 instance (three copies of the toy edge table)."""
    edges = [
        (("A", "B"), (2013, 2017)),
        (("A", "E"), (2012, 2015)),
        (("B", "C"), (2011, 2015)),
        (("B", "D"), (2017, 2019)),
        (("B", "E"), (2013, 2016)),
        (("C", "D"), (2012, 2016)),
        (("D", "E"), (2016, 2018)),
    ]
    query = JoinQuery.line(3)
    return {
        name: TemporalRelation(name, query.edge(name), edges)
        for name in query.edge_names
    }


@pytest.fixture
def figure5_database() -> Dict[str, TemporalRelation]:
    """An instance of Q_hier shaped like Figure 5's example contents."""
    always = Interval.always()
    return {
        "R1": TemporalRelation("R1", ("A", "B"), [(("a1", "b1"), always)]),
        "R2": TemporalRelation(
            "R2",
            ("A", "B", "D"),
            [(("a1", "b1", "d1"), always), (("a1", "b1", "d2"), always)],
        ),
        "R3": TemporalRelation("R3", ("A", "B", "E"), [(("a1", "b1", "e1"), always)]),
        "R4": TemporalRelation(
            "R4",
            ("A", "C", "F"),
            [
                (("a1", "c1", "f1"), always),
                (("a1", "c1", "f2"), always),
                (("a1", "c2", "f1"), always),
            ],
        ),
        "R5": TemporalRelation(
            "R5",
            ("A", "C", "G"),
            [(("a1", "c1", "g1"), always), (("a1", "c2", "g2"), always)],
        ),
    }
