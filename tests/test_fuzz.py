"""Seeded fuzzing: random queries × random instances × all algorithms.

The differential layer above :mod:`tests/test_integration_agreement`
fixes the query families; this module also randomizes the query shape —
random hypergraphs over a small attribute universe, random arities,
random self-contained instances — and checks every algorithm against the
oracle. Deterministic (seeded), bounded (~hundreds of cases), and the
single most effective bug net in the suite during development.
"""

import random

import pytest

from repro.algorithms.naive import naive_join
from repro.algorithms.registry import temporal_join
from repro.core.errors import PlanError, QueryError
from repro.core.query import JoinQuery

from conftest import random_relation

ATTRS = ["a", "b", "c", "d", "e", "f"]
ALGORITHMS = ["timefirst", "baseline", "joinfirst", "hybrid", "hybrid-interval", "auto"]


def random_query(rng: random.Random) -> JoinQuery:
    """A random join query over ≤ 5 edges / 6 attributes.

    Retries until the hypergraph is one every attribute of which belongs
    to some edge (guaranteed) and the construction is valid; may be
    cyclic, disconnected, non-reduced, or contain unary edges.
    """
    n_edges = rng.randrange(1, 6)
    edges = {}
    for i in range(n_edges):
        arity = rng.randrange(1, 4)
        attrs = rng.sample(ATTRS, arity)
        edges[f"R{i}"] = tuple(attrs)
    return JoinQuery(edges)


def random_instance(query: JoinQuery, rng: random.Random):
    return {
        name: random_relation(
            name,
            query.edge(name),
            n=rng.randrange(2, 10),
            domain=rng.randrange(2, 4),
            time_span=rng.choice([6, 20, 40]),
            rng=rng,
        )
        for name in query.edge_names
    }


@pytest.mark.parametrize("seed", range(40))
def test_fuzz_all_algorithms_agree(seed):
    rng = random.Random(seed * 7919 + 13)
    query = random_query(rng)
    for _ in range(3):
        db = random_instance(query, rng)
        tau = rng.choice([0, 0, 1, 3, 8])
        want = naive_join(query, db, tau=tau).normalized()
        for algorithm in ALGORITHMS:
            try:
                got = temporal_join(query, db, tau=tau, algorithm=algorithm)
            except PlanError:
                assert algorithm == "hybrid-interval"
                continue
            assert got.normalized() == want, (
                f"seed={seed} algorithm={algorithm} tau={tau} query={query!r}"
            )


@pytest.mark.parametrize("seed", range(10))
def test_fuzz_extreme_interval_shapes(seed):
    """All-instant, all-unbounded, and mixed interval regimes."""
    from repro.core.interval import Interval
    from repro.core.relation import TemporalRelation

    rng = random.Random(seed + 5000)
    query = random_query(rng)
    regime = seed % 3
    db = {}
    for name in query.edge_names:
        rows = {}
        for _ in range(rng.randrange(2, 8)):
            values = tuple(rng.randrange(3) for _ in query.edge(name))
            if values in rows:
                continue
            if regime == 0:  # all instants
                t = rng.randrange(10)
                rows[values] = Interval(t, t)
            elif regime == 1:  # all unbounded
                rows[values] = Interval.always()
            else:  # mixed, incl. half-open
                kind = rng.randrange(3)
                t = rng.randrange(10)
                if kind == 0:
                    rows[values] = Interval(t, float("inf"))
                elif kind == 1:
                    rows[values] = Interval(float("-inf"), t)
                else:
                    rows[values] = Interval(t, t + rng.randrange(5))
        db[name] = TemporalRelation(name, query.edge(name), list(rows.items()))
    want = naive_join(query, db).normalized()
    for algorithm in ["timefirst", "baseline", "hybrid", "joinfirst"]:
        got = temporal_join(query, db, algorithm=algorithm)
        assert got.normalized() == want, (seed, algorithm)
