"""The serving layer must be indistinguishable from the offline join.

The contract under test: for every standing query in a fleet streamed
through :class:`~repro.serve.TemporalJoinService` — hierarchical and
cyclic (GHD-path) templates, τ ∈ {0, 3}, one shared ingest pass with 1
or 3 workers, under every backpressure policy — the snapshot at end of
stream equals ``temporal_join`` over the stored database, and every
emission the live broker delivers leaves at its earliest legal instant:
the first arrival the operator sees that proves the result settled
(watermark latency), or the end-of-stream flush with zero lag.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algorithms.registry import temporal_join
from repro.core.query import JoinQuery
from repro.serve import Backpressure, TemporalJoinService
from repro.testing import random_temporal_relation


def star3():
    """Q_hier shape: hierarchical, online via HierarchicalState."""
    return JoinQuery.star(3)


def line3():
    """Acyclic non-hierarchical: online via the generic GHD state."""
    return JoinQuery({"L1": ("a", "b"), "L2": ("b", "c"), "L3": ("c", "d")})


def triangle():
    """Cyclic: online via the generic GHD state over a fractional cover."""
    return JoinQuery({"T1": ("a", "b"), "T2": ("b", "c"), "T3": ("a", "c")})


def star3_reversed():
    """Duplicate template with a different output attribute order."""
    query = star3()
    return JoinQuery(
        {name: query.edge(name) for name in query.edge_names},
        attr_order=tuple(reversed(query.attrs)),
    )


def fleet_database(queries, rng, n, domain=3, time_span=30, max_duration=10):
    """One random database covering every relation the fleet reads."""
    db = {}
    for query in queries:
        for name in query.edge_names:
            if name not in db:
                db[name] = random_temporal_relation(
                    name, query.edge(name), n, domain, time_span, rng,
                    max_duration=max_duration,
                )
    return db


def assert_serves_offline(db, fleet, tau, workers, policy):
    """Stream ``db`` once; every handle must equal its offline join.

    Returns the handles for further (latency) assertions.
    """
    buffer_size = 8 if policy == Backpressure.DROP_OLDEST else 1_000_000
    service = TemporalJoinService()
    handles = [
        service.register(
            query, tau=tau, name=f"q{i}",
            policy=policy, buffer_size=buffer_size,
        )
        for i, query in enumerate(fleet)
    ]
    service.ingest_database(db, workers=workers, mode="inline")

    for handle, query in zip(handles, fleet):
        sub = {name: db[name] for name in query.edge_names}
        want = temporal_join(query, sub, tau=tau)
        snapshot = handle.snapshot()
        assert snapshot.at == float("inf")  # end of stream: fully settled
        assert snapshot.results.normalized() == want.normalized(), (
            f"{handle.name} diverges from offline temporal_join at "
            f"tau={tau}, workers={workers}, policy={policy}"
        )
    stats = service.telemetry()
    assert stats.get("serve.ingest_passes") == 1
    assert stats.get("serve.template_dedup") >= 1  # the duplicate template
    return handles


def assert_minimal_latency(handle, query, tau, db):
    """Each emission left at the earliest instant that proves it settled.

    A result with (expanded) right endpoint ``hi`` is provably complete
    once an arrival the operator actually receives starts strictly past
    ``hi - τ`` (its shrunk endpoint has then expired). The emission's
    ``at`` must be exactly the first such arrival start — or, when none
    exists, the end-of-stream flush stamped at ``hi`` itself (zero lag).
    """
    starts = sorted(
        iv.lo
        for name in query.edge_names
        for _, iv in db[name]
        if tau == 0 or (iv.hi - iv.lo) >= tau  # shrunk-away tuples never arrive
    )
    emissions = handle.drain()
    assert emissions, "latency check needs at least one buffered emission"
    for emission in emissions:
        threshold = emission.interval.hi - tau
        later = [lo for lo in starts if lo > threshold]
        if later:
            assert emission.at == later[0], (
                f"emission {emission.values} {emission.interval} left at "
                f"{emission.at}, but was provable at {later[0]}"
            )
        else:
            assert emission.at == emission.interval.hi
            assert emission.lag == 0
        if tau == 0:
            assert emission.lag >= 0


class TestServiceEqualsOffline:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=4, max_value=12),
        tau=st.sampled_from([0, 3]),
        workers=st.sampled_from([1, 3]),
        policy=st.sampled_from(Backpressure.ALL),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_fleets(self, seed, n, tau, workers, policy):
        rng = random.Random(seed)
        fleet = [star3(), line3(), triangle(), star3_reversed()]
        db = fleet_database(fleet, rng, n)
        assert_serves_offline(db, fleet, tau, workers, policy)

    @pytest.mark.parametrize("tau", [0, 3])
    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize("policy", sorted(Backpressure.ALL))
    def test_full_grid_covered(self, tau, workers, policy):
        """Every (τ, workers, policy) cell runs at least once per suite."""
        rng = random.Random(20220612)
        fleet = [star3(), line3(), triangle(), star3_reversed()]
        db = fleet_database(fleet, rng, n=10)
        assert_serves_offline(db, fleet, tau, workers, policy)


class TestEmissionLatency:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=6, max_value=14),
        tau=st.sampled_from([0, 3]),
        family=st.sampled_from(["star3", "line3", "triangle"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_live_broker_emits_at_first_proof(self, seed, n, tau, family):
        rng = random.Random(seed)
        query = {"star3": star3, "line3": line3, "triangle": triangle}[family]()
        db = fleet_database([query], rng, n)
        service = TemporalJoinService()
        handle = service.register(
            query, tau=tau, name="q", buffer_size=1_000_000
        )
        service.ingest_database(db, workers=1)
        if not handle.pending:
            return  # empty join: nothing to assert about latency
        assert_minimal_latency(handle, query, tau, db)

    def test_declared_watermark_is_a_proof_too(self):
        service = TemporalJoinService()
        handle = service.register(JoinQuery.star(2), name="q")
        service.append("R1", (1, "h"), (0, 10))
        service.append("R2", (2, "h"), (2, 5))
        service.advance_to(6)
        [emission] = handle.drain()
        assert emission.at == 6 and emission.lag == 1
