"""Tests for the hash trie behind GenericJoin."""

import pytest

from repro.datastructures.trie import RelationTrie


def build():
    t = RelationTrie(("a", "b", "c"))
    t.insert((1, 2, 3), "p1")
    t.insert((1, 2, 4), "p2")
    t.insert((1, 5, 6), "p3")
    t.insert((7, 8, 9), "p4")
    return t


class TestTrie:
    def test_len(self):
        assert len(build()) == 4

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            build().insert((1, 2), None)

    def test_candidate_values_root(self):
        assert sorted(build().candidate_values(())) == [1, 7]

    def test_candidate_values_deeper(self):
        assert sorted(build().candidate_values((1,))) == [2, 5]
        assert sorted(build().candidate_values((1, 2))) == [3, 4]

    def test_candidate_values_dead_prefix(self):
        assert build().candidate_values((99,)) is None

    def test_candidate_count(self):
        t = build()
        assert t.candidate_count(()) == 2
        assert t.candidate_count((1, 2)) == 2
        assert t.candidate_count((99,)) == 0

    def test_has_prefix(self):
        t = build()
        assert t.has_prefix(())
        assert t.has_prefix((1, 5))
        assert t.has_prefix((1, 5, 6))
        assert not t.has_prefix((1, 9))

    def test_payloads(self):
        t = build()
        assert t.payloads((1, 2, 3)) == ["p1"]
        assert t.payloads((1, 2, 99)) == []

    def test_duplicate_tuple_collects_payloads(self):
        t = RelationTrie(("a",))
        t.insert((1,), "x")
        t.insert((1,), "y")
        assert t.payloads((1,)) == ["x", "y"]
        assert len(t) == 2

    def test_unary_relation(self):
        t = RelationTrie(("a",), [((3,), None), ((5,), None)])
        assert sorted(t.candidate_values(())) == [3, 5]

    def test_children_at_leaf_level_returns_value_map(self):
        t = build()
        node = t.children((1, 2))
        assert set(node) == {3, 4}
