"""Tests for the bisect-backed SortedList."""

import random

import pytest

from repro.datastructures.sorted_list import SortedList


class TestBasics:
    def test_init_sorts(self):
        s = SortedList([3, 1, 2])
        assert list(s) == [1, 2, 3]

    def test_add_keeps_order(self):
        s = SortedList([1, 5])
        s.add(3)
        assert list(s) == [1, 3, 5]

    def test_multiset(self):
        s = SortedList([2, 2])
        s.add(2)
        assert len(s) == 3

    def test_contains(self):
        s = SortedList([1, 3])
        assert 3 in s and 2 not in s

    def test_remove(self):
        s = SortedList([1, 2, 2, 3])
        s.remove(2)
        assert list(s) == [1, 2, 3]

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            SortedList([1]).remove(9)

    def test_discard(self):
        s = SortedList([1, 2])
        assert s.discard(2)
        assert not s.discard(2)

    def test_indexing(self):
        s = SortedList([5, 1])
        assert s[0] == 1 and s[-1] == 5

    def test_min_max(self):
        s = SortedList([4, 9, 2])
        assert s.min() == 2 and s.max() == 9

    def test_min_empty(self):
        with pytest.raises(IndexError):
            SortedList().min()


class TestRangeQueries:
    def test_index_left_right(self):
        s = SortedList([1, 2, 2, 4])
        assert s.index_left(2) == 1
        assert s.index_right(2) == 3

    def test_first_geq(self):
        s = SortedList([1, 4, 7])
        assert s.first_geq(4) == 4
        assert s.first_geq(5) == 7
        assert s.first_geq(8) is None

    def test_last_leq(self):
        s = SortedList([1, 4, 7])
        assert s.last_leq(4) == 4
        assert s.last_leq(6) == 4
        assert s.last_leq(0) is None

    def test_irange_inclusive(self):
        s = SortedList(range(10))
        assert list(s.irange(3, 6)) == [3, 4, 5, 6]

    def test_count_range(self):
        s = SortedList([1, 2, 2, 5, 9])
        assert s.count_range(2, 5) == 3

    def test_randomized_against_list(self):
        rng = random.Random(11)
        s = SortedList()
        ref = []
        for _ in range(1500):
            if rng.random() < 0.6 or not ref:
                x = rng.randrange(100)
                s.add(x)
                ref.append(x)
                ref.sort()
            else:
                x = rng.choice(ref)
                s.remove(x)
                ref.remove(x)
            assert list(s) == ref
