"""Tests for result timelines (concurrency step functions)."""

import random

import pytest

from repro.core.errors import SchemaError
from repro.core.interval import Interval
from repro.core.result import JoinResultSet
from repro.core.timeline import (
    Timeline,
    busiest_instant,
    concurrency_timeline,
    result_timeline,
)


class TestTimelineObject:
    def test_misaligned_rejected(self):
        with pytest.raises(SchemaError):
            Timeline((0, 1), (1.0,), (0.0, 0.0))

    def test_value_at_points_and_gaps(self):
        tl = Timeline((0, 5, 10), (1.0, 3.0, 1.0), (1.0, 1.0, 0.0))
        assert tl.value_at(-1) == 0.0
        assert tl.value_at(0) == 1.0
        assert tl.value_at(2.5) == 1.0
        assert tl.value_at(5) == 3.0  # spike at the event instant
        assert tl.value_at(7) == 1.0
        assert tl.value_at(10) == 1.0
        assert tl.value_at(11) == 0.0

    def test_empty(self):
        tl = Timeline((), (), ())
        assert tl.value_at(5) == 0.0
        assert tl.peak() == (0, 0.0)
        assert tl.integral() == 0.0

    def test_peak_at_event_instant(self):
        tl = Timeline((0, 5, 10), (1.0, 3.0, 1.0), (1.0, 1.0, 0.0))
        assert tl.peak() == (5, 3.0)

    def test_peak_earliest_tie(self):
        tl = Timeline((0, 5), (2.0, 2.0), (1.0, 0.0))
        assert tl.peak() == (0, 2.0)

    def test_integral_uses_gap_values(self):
        tl = Timeline((0, 5, 10), (9.0, 9.0, 9.0), (1.0, 2.0, 0.0))
        assert tl.integral() == 5 * 1.0 + 5 * 2.0

    def test_support_and_segments(self):
        tl = Timeline((0, 5, 10), (1.0, 1.0, 1.0), (1.0, 0.0, 0.0))
        assert tl.support() == Interval(0, 10)
        assert tl.segments() == [(0, 5, 1.0), (5, 10, 0.0)]
        assert tl.nonzero_segments() == [(0, 5, 1.0)]

    def test_sample(self):
        tl = Timeline((0, 10), (2.0, 2.0), (2.0, 0.0))
        assert tl.sample([-1, 0, 5, 10, 11]) == [0.0, 2.0, 2.0, 2.0, 0.0]


class TestConcurrency:
    def test_empty(self):
        tl = concurrency_timeline([])
        assert tl.points == () and tl.value_at(0) == 0.0

    def test_single_interval(self):
        tl = concurrency_timeline([Interval(2, 6)])
        assert tl.value_at(1) == 0
        assert tl.value_at(2) == 1
        assert tl.value_at(4) == 1
        assert tl.value_at(6) == 1  # closed at the right endpoint
        assert tl.value_at(6.5) == 0

    def test_overlap_counts(self):
        tl = concurrency_timeline([Interval(0, 10), Interval(5, 15)])
        assert tl.value_at(3) == 1
        assert tl.value_at(7) == 2
        assert tl.value_at(12) == 1

    def test_touching_endpoints_count_both(self):
        tl = concurrency_timeline([Interval(0, 5), Interval(5, 10)])
        assert tl.value_at(5) == 2
        assert tl.value_at(4.5) == 1
        assert tl.value_at(5.5) == 1

    def test_instant_interval(self):
        tl = concurrency_timeline([Interval(3, 3)])
        assert tl.value_at(3) == 1
        assert tl.value_at(2.99) == 0
        assert tl.value_at(3.01) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_pointwise_everywhere(self, seed):
        rng = random.Random(seed)
        intervals = []
        for _ in range(40):
            lo = rng.randrange(50)
            intervals.append(Interval(lo, lo + rng.randrange(15)))
        tl = concurrency_timeline(intervals)
        probes = [t / 2 for t in range(-4, 140)]  # integers and midpoints
        for t in probes:
            expected = sum(1 for iv in intervals if iv.contains(t))
            assert tl.value_at(t) == expected, t

    def test_integral_equals_total_duration_when_disjoint(self):
        intervals = [Interval(0, 3), Interval(10, 14)]
        tl = concurrency_timeline(intervals)
        assert tl.integral() == 7

    def test_integral_counts_multiplicity(self):
        intervals = [Interval(0, 10), Interval(0, 10)]
        assert concurrency_timeline(intervals).integral() == 20


class TestResultTimeline:
    def _results(self):
        rs = JoinResultSet(("a",))
        rs.append((1,), Interval(0, 10))
        rs.append((2,), Interval(5, 20))
        rs.append((3,), Interval(6, 8))
        return rs

    def test_result_timeline(self):
        tl = result_timeline(self._results())
        assert tl.value_at(7) == 3

    def test_busiest_instant(self):
        instant, value = busiest_instant(self._results())
        assert value == 3
        assert 6 <= instant <= 8

    def test_empty_results(self):
        assert busiest_instant(JoinResultSet(("a",))) == (0, 0.0)
