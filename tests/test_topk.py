"""Tests for top-k durable joins and the durability histogram."""

import pytest

from repro.algorithms.naive import naive_join
from repro.algorithms.topk import durability_histogram, top_k_durable
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.workloads.synthetic import SyntheticConfig, generate

from conftest import random_database


def brute_topk(query, db, k):
    ranked = sorted(
        naive_join(query, db).rows,
        key=lambda row: (-row[1].duration, row[0], row[1].lo),
    )
    if len(ranked) <= k:
        return ranked
    cutoff = ranked[k - 1][1].duration
    return [r for r in ranked if r[1].duration >= cutoff]


class TestTopK:
    def test_k_zero(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng)
        assert len(top_k_durable(q, db, 0)) == 0

    def test_small_k_matches_brute_force(self, rng):
        q = JoinQuery.line(3)
        for _ in range(4):
            db = random_database(q, rng, n=12, domain=3)
            for k in (1, 3, 7):
                got = top_k_durable(q, db, k)
                want = brute_topk(q, db, k)
                assert sorted(got.rows) == sorted(want)

    def test_k_larger_than_result_set(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=8, domain=3)
        everything = naive_join(q, db)
        got = top_k_durable(q, db, 10_000)
        assert got.normalized() == everything.normalized()

    def test_ties_included_by_default(self):
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation(
                "R1", ("x1", "y"),
                [((i, "h"), (0, 10)) for i in range(3)],
            ),
            "R2": TemporalRelation("R2", ("x2", "y"), [((9, "h"), (0, 10))]),
        }
        got = top_k_durable(q, db, 1)
        assert len(got) == 3  # all share durability 10

    def test_break_ties_cuts_exactly(self):
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation(
                "R1", ("x1", "y"),
                [((i, "h"), (0, 10)) for i in range(3)],
            ),
            "R2": TemporalRelation("R2", ("x2", "y"), [((9, "h"), (0, 10))]),
        }
        got = top_k_durable(q, db, 1, break_ties=True)
        assert len(got) == 1

    def test_all_instant_inputs(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (5, 5))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (5, 5))]),
        }
        got = top_k_durable(q, db, 1)
        assert got.rows == [((1, 2, 3), Interval(5, 5))]

    def test_ordering_most_durable_first(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=14, domain=3)
        got = top_k_durable(q, db, 5)
        durations = [iv.duration for _, iv in got]
        assert durations == sorted(durations, reverse=True)

    def test_probing_on_synthetic_backbone(self):
        q = JoinQuery.star(3)
        cfg = SyntheticConfig(n_dangling=60, n_results=30, seed=6)
        db = generate(q, cfg)
        got = top_k_durable(q, db, 5)
        # The backbone's top durabilities decay deterministically; the
        # top-5 must be the 5 longest backbone durations.
        from repro.workloads.synthetic import backbone_durations

        top = sorted(backbone_durations(cfg), reverse=True)[:5]
        measured = sorted((iv.duration for _, iv in got), reverse=True)[:5]
        assert measured == top


class TestHistogram:
    def test_matches_per_threshold_joins(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=12, domain=3)
        thresholds = [0, 2, 5, 9]
        hist = durability_histogram(q, db, thresholds)
        for tau in thresholds:
            assert hist[tau] == len(naive_join(q, db, tau=tau))

    def test_nonzero_base_threshold(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=12, domain=3)
        hist = durability_histogram(q, db, [3, 6])
        assert hist[3] == len(naive_join(q, db, tau=3))
        assert hist[6] == len(naive_join(q, db, tau=6))
