"""Flow/interprocedural rule tests: synthetic projects per rule plus
tamper tests that mutate the real `parallel`/`serve` sources and assert
the matching rule fires (and that the pristine sources stay clean)."""

import os

import pytest

from repro.analysis.engine import lint_project
from repro.analysis.flow_rules import (
    CounterGlossaryDrift,
    OwnershipBeforeConcat,
    SpawnShipsModuleLevel,
    StatsThreading,
    flow_rules,
    parse_glossary,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _read(rel):
    with open(os.path.join(REPO_ROOT, rel)) as handle:
        return handle.read()


def _by_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


# ----------------------------------------------------------------------
# counter-glossary-drift
# ----------------------------------------------------------------------
GLOSSARY_DESIGN = """\
Counter glossary (prefix = subsystem that records it):

| counter | meaning |
|---|---|
| `a.hits` | documented and emitted |
| `c.sizes.*` | distribution rows |
| `phase.parallel.shardNN` (timers) | per-shard timers |
| `b.ghost` | documented but never emitted |
"""


class TestCounterGlossaryDrift:
    def _lint(self, source, design=GLOSSARY_DESIGN):
        return lint_project(
            {"src/repro/algorithms/mod.py": source},
            [CounterGlossaryDrift()],
            design_text=design,
        )

    def test_documented_names_and_wildcards_pass(self):
        findings = self._lint(
            "def f(stats, i):\n"
            "    stats.incr('a.hits')\n"
            "    stats.observe('c.sizes', 3)\n"
            "    stats.timer(f'phase.parallel.shard{i:02d}')\n",
            design=GLOSSARY_DESIGN.replace("| `b.ghost` | documented but never emitted |\n", ""),
        )
        assert findings == []

    def test_undocumented_counter_fires(self):
        findings = self._lint("def f(stats):\n    stats.incr('a.miss')\n")
        undocumented = [f for f in findings if "'a.miss'" in f.message]
        assert len(undocumented) == 1
        assert undocumented[0].path == "src/repro/algorithms/mod.py"
        assert undocumented[0].line == 2

    def test_stale_glossary_row_fires_at_design_line(self):
        findings = self._lint(
            "def f(stats, i):\n"
            "    stats.incr('a.hits')\n"
            "    stats.observe('c.sizes', 3)\n"
            "    stats.timer(f'phase.parallel.shard{i:02d}')\n"
        )
        stale = [f for f in findings if "b.ghost" in f.message]
        assert len(stale) == 1
        assert stale[0].path == "DESIGN.md"
        # The row's own line in the design text.
        assert GLOSSARY_DESIGN.splitlines()[stale[0].line - 1].startswith("| `b.ghost`")

    def test_unresolvable_name_fires(self):
        findings = self._lint("def f(stats, name):\n    stats.incr(name)\n")
        assert any("not statically resolvable" in f.message for f in findings)

    def test_module_constant_prefix_resolves(self):
        findings = self._lint(
            "PREFIX = 'a.'\n"
            "def f(stats):\n"
            "    stats.incr(PREFIX + 'hits')\n",
            design=(
                "Counter glossary:\n\n"
                "| counter | meaning |\n"
                "|---|---|\n"
                "| `a.hits` | resolved through a module constant |\n"
            ),
        )
        assert findings == []

    def test_no_design_text_skips(self):
        findings = lint_project(
            {"src/repro/algorithms/mod.py": "def f(s):\n    s.incr('x.y')\n"},
            [CounterGlossaryDrift()],
            design_text=None,
        )
        assert findings == []

    def test_parse_glossary_handles_escaped_pipes_and_multi_patterns(self):
        patterns = dict(parse_glossary(
            "Counter glossary:\n\n"
            "| counter | meaning |\n"
            "|---|---|\n"
            "| `x.a` / `x.b` | \\|L\\| something |\n"
        ))
        assert set(patterns) == {"x.a", "x.b"}

    def test_real_serve_counter_rename_fires(self):
        """Tamper: rename a serve.* counter — drift must flag it."""
        design = _read("DESIGN.md")
        source = _read("src/repro/serve/broker.py")
        mutated = source.replace('"serve.appends"', '"serve.appendz"')
        assert mutated != source
        findings = lint_project(
            {"src/repro/serve/broker.py": mutated},
            [CounterGlossaryDrift()],
            design_text=design,
        )
        assert any("serve.appendz" in f.message for f in findings)


# ----------------------------------------------------------------------
# spawn-ships-module-level
# ----------------------------------------------------------------------
class TestSpawnShipsModuleLevel:
    def _lint(self, sources):
        return lint_project(sources, [SpawnShipsModuleLevel()])

    def test_module_level_def_through_import_passes(self):
        findings = self._lint({
            "src/repro/parallel/worker.py": "def run_shard(t):\n    return t\n",
            "src/repro/parallel/executor.py": (
                "from .worker import run_shard\n"
                "def run(pool, tasks):\n"
                "    return pool.map(run_shard, tasks)\n"
            ),
        })
        assert findings == []

    def test_local_lambda_payload_fires(self):
        findings = self._lint({
            "src/repro/parallel/executor.py": (
                "def run(pool, tasks):\n"
                "    f = lambda x: x\n"
                "    return pool.map(f, tasks)\n"
            ),
        })
        assert any("closure/nested" in f.message for f in findings)

    def test_inline_lambda_payload_fires(self):
        findings = self._lint({
            "src/repro/parallel/executor.py": (
                "def run(pool, tasks):\n"
                "    return pool.map(lambda x: x, tasks)\n"
            ),
        })
        assert any("lambda" in f.message for f in findings)

    def test_bound_method_payload_fires(self):
        findings = self._lint({
            "src/repro/parallel/executor.py": (
                "class Runner:\n"
                "    def go(self, pool, tasks):\n"
                "        return pool.map(self.work, tasks)\n"
                "    def work(self, t):\n"
                "        return t\n"
            ),
        })
        assert any("bound" in f.message for f in findings)

    def test_nested_def_payload_fires(self):
        findings = self._lint({
            "src/repro/parallel/executor.py": (
                "def run(pool, tasks):\n"
                "    def f(x):\n"
                "        return x\n"
                "    return pool.map(f, tasks)\n"
            ),
        })
        assert any("closure/nested" in f.message for f in findings)

    def test_module_level_lambda_through_reexport_fires(self):
        """Interprocedural: the lambda hides two imports away."""
        findings = self._lint({
            "src/repro/parallel/impl.py": "f = lambda x: x\n",
            "src/repro/parallel/__init__.py": "from .impl import f\n",
            "src/repro/parallel/executor.py": (
                "from . import f\n"
                "def run(pool, tasks):\n"
                "    return pool.map(f, tasks)\n"
            ),
        })
        assert any("lambda" in f.message for f in findings)

    def test_local_task_constructor_fires(self):
        findings = self._lint({
            "src/repro/parallel/worker.py": "def run_shard(t):\n    return t\n",
            "src/repro/parallel/executor.py": (
                "from .worker import run_shard\n"
                "def run(pool, xs):\n"
                "    class Task:\n"
                "        pass\n"
                "    tasks = [Task() for x in xs]\n"
                "    return pool.map(run_shard, tasks)\n"
            ),
        })
        assert any("task constructor" in f.message.lower() for f in findings)

    def test_module_level_task_constructor_passes(self):
        findings = self._lint({
            "src/repro/parallel/worker.py": (
                "class Task:\n"
                "    pass\n"
                "def run_shard(t):\n"
                "    return t\n"
            ),
            "src/repro/parallel/executor.py": (
                "from .worker import Task, run_shard\n"
                "def run(pool, xs):\n"
                "    tasks = [Task() for x in xs]\n"
                "    return pool.map(run_shard, tasks)\n"
            ),
        })
        assert findings == []

    def test_real_executor_is_clean(self):
        findings = self._lint({
            "src/repro/parallel/executor.py": _read("src/repro/parallel/executor.py"),
            "src/repro/parallel/worker.py": _read("src/repro/parallel/worker.py"),
        })
        assert findings == []


# ----------------------------------------------------------------------
# ownership-before-concat
# ----------------------------------------------------------------------
class TestOwnershipBeforeConcat:
    WORKER = "src/repro/parallel/worker.py"
    MERGE = "src/repro/parallel/merge.py"
    SERVICE = "src/repro/serve/service.py"

    def _lint(self, sources):
        return lint_project(sources, [OwnershipBeforeConcat()])

    def test_real_sources_are_clean(self):
        findings = self._lint({
            self.WORKER: _read(self.WORKER),
            self.MERGE: _read(self.MERGE),
            self.SERVICE: _read(self.SERVICE),
        })
        assert findings == []

    def test_worker_left_endpoint_tamper_fires(self):
        """Filtering on .lo instead of .hi breaks the ownership contract."""
        source = _read(self.WORKER)
        mutated = source.replace(".hi) == shard", ".lo) == shard")
        assert mutated != source
        findings = self._lint({self.WORKER: mutated})
        assert _by_rule(findings, "ownership-before-concat")

    def test_worker_unfiltered_rows_tamper_fires(self):
        source = _read(self.WORKER)
        mutated = source.replace("rows=owned,", "rows=result.rows,", 1)
        assert mutated != source
        findings = self._lint({self.WORKER: mutated})
        assert _by_rule(findings, "ownership-before-concat")

    def test_merge_wrong_attribute_tamper_fires(self):
        source = _read(self.MERGE)
        mutated = source.replace("outcome.rows", "outcome.raw_rows")
        assert mutated != source
        findings = self._lint({self.MERGE: mutated})
        assert _by_rule(findings, "ownership-before-concat")

    def test_service_guard_removed_tamper_fires(self):
        """Drop the per-emission ownership guard in _join_shard."""
        source = _read(self.SERVICE)
        needle = "if partition.owner(out_iv.hi) != shard:"
        assert needle in source
        mutated = source.replace(needle, "if False:")
        findings = self._lint({self.SERVICE: mutated})
        assert _by_rule(findings, "ownership-before-concat")

    def test_synthetic_guarded_append_passes(self):
        findings = self._lint({
            self.WORKER: (
                "def _join_shard(shard, rows, partition):\n"
                "    out = []\n"
                "    owned = []\n"
                "    for row in rows:\n"
                "        if partition.owner(row.hi) != shard:\n"
                "            continue\n"
                "        owned.append(row)\n"
                "    out.append(owned)\n"
                "    return out\n"
            ),
        })
        assert findings == []

    def test_inline_suppression_applies_to_flow_findings(self):
        """A span directive on the statement's first line silences the
        flow finding anchored to the multi-line ShardOutcome(...) call."""
        source = _read(self.WORKER)
        tampered = source.replace("rows=owned,", "rows=result.rows,", 1)
        assert _by_rule(self._lint({self.WORKER: tampered}),
                        "ownership-before-concat")
        suppressed = tampered.replace(
            "return ShardOutcome(",
            "return ShardOutcome(  # repro-lint: disable=ownership-before-concat",
            1,
        )
        assert _by_rule(self._lint({self.WORKER: suppressed}),
                        "ownership-before-concat") == []


# ----------------------------------------------------------------------
# stats-threading
# ----------------------------------------------------------------------
class TestStatsThreading:
    def _lint(self, sources):
        return lint_project(sources, [StatsThreading()])

    HELPER = "def helper(x=0, stats=None):\n    return x\n"

    def test_dropped_stats_on_refined_path_fires(self):
        findings = self._lint({
            "src/repro/parallel/helpers.py": self.HELPER,
            "src/repro/parallel/run.py": (
                "from .helpers import helper\n"
                "def run(stats):\n"
                "    if stats is not None:\n"
                "        helper()\n"
            ),
        })
        flagged = _by_rule(findings, "stats-threading")
        assert len(flagged) == 1
        assert "is non-None" in flagged[0].message

    def test_forwarded_stats_passes(self):
        findings = self._lint({
            "src/repro/parallel/helpers.py": self.HELPER,
            "src/repro/parallel/run.py": (
                "from .helpers import helper\n"
                "def run(stats):\n"
                "    if stats is not None:\n"
                "        helper(stats=stats)\n"
                "    helper(1, stats)\n"
            ),
        })
        assert findings == []

    def test_forwarding_self_attribute_passes(self):
        findings = self._lint({
            "src/repro/serve/helpers.py": self.HELPER,
            "src/repro/serve/svc.py": (
                "from .helpers import helper\n"
                "class Service:\n"
                "    def __init__(self, stats=None):\n"
                "        self.stats = stats or object()\n"
                "        helper(stats=self.stats)\n"
            ),
        })
        assert findings == []

    def test_none_state_path_passes(self):
        findings = self._lint({
            "src/repro/parallel/helpers.py": self.HELPER,
            "src/repro/parallel/run.py": (
                "from .helpers import helper\n"
                "def run(stats):\n"
                "    if stats is None:\n"
                "        helper()\n"
            ),
        })
        assert findings == []

    def test_callee_without_stats_param_passes(self):
        findings = self._lint({
            "src/repro/parallel/helpers.py": "def plain(x):\n    return x\n",
            "src/repro/parallel/run.py": (
                "from .helpers import plain\n"
                "def run(stats):\n"
                "    if stats is not None:\n"
                "        plain(1)\n"
            ),
        })
        assert findings == []

    def test_out_of_scope_subsystem_passes(self):
        """The algorithm layer deliberately withholds stats (DESIGN)."""
        findings = self._lint({
            "src/repro/algorithms/helpers.py": self.HELPER,
            "src/repro/algorithms/run.py": (
                "from .helpers import helper\n"
                "def run(stats):\n"
                "    if stats is not None:\n"
                "        helper()\n"
            ),
        })
        assert findings == []

    def test_real_parallel_sources_are_clean(self):
        sources = {
            rel: _read(rel)
            for rel in (
                "src/repro/parallel/executor.py",
                "src/repro/parallel/worker.py",
                "src/repro/parallel/merge.py",
            )
        }
        findings = self._lint(sources)
        assert findings == []

    def test_real_executor_tamper_fires(self):
        """Strip the stats argument from a merge call in executor.py."""
        rel = "src/repro/parallel/executor.py"
        source = _read(rel)
        needle = "        outcomes,\n        stats=stats,\n"
        assert needle in source
        mutated = source.replace(needle, "        outcomes,\n")
        findings = self._lint({
            rel: mutated,
            "src/repro/parallel/merge.py": _read("src/repro/parallel/merge.py"),
        })
        assert _by_rule(findings, "stats-threading")


# ----------------------------------------------------------------------
# the full set over the real tree (mirrors the CLI gate)
# ----------------------------------------------------------------------
class TestFlowRuleSet:
    def test_flow_rules_ids(self):
        assert [r.id for r in flow_rules()] == [
            "counter-glossary-drift",
            "spawn-ships-module-level",
            "ownership-before-concat",
            "stats-threading",
        ]
