"""Tests for the dataset-like generators: DBLP, Flights, TPC-BiH, TPC-E, LDBC."""

import pytest

from repro.algorithms.registry import temporal_join
from repro.core.query import JoinQuery, self_join_database
from repro.workloads import dblp, flights, ldbc, tpc_bih, tpce


class TestDBLP:
    def test_determinism_and_scale(self):
        cfg = dblp.DBLPConfig(n_authors=150, n_edges=350)
        a = dblp.generate_graph(cfg)
        b = dblp.generate_graph(cfg)
        assert a.edges == b.edges
        assert a.edge_count >= 300  # allows a small shortfall

    def test_intervals_within_year_range(self):
        cfg = dblp.DBLPConfig(n_authors=100, n_edges=250)
        g = dblp.generate_graph(cfg)
        for _, _, ivl in g.edges:
            assert cfg.first_year <= ivl.lo <= ivl.hi <= cfg.last_year

    def test_some_multi_episode_pairs(self):
        cfg = dblp.DBLPConfig(n_authors=100, n_edges=400, episode_fraction=0.5)
        g = dblp.generate_graph(cfg)
        episodes = g.edge_relation_episodes()
        assert any(len(ivs) > 1 for _, ivs in episodes)

    def test_toy_figure1_graph_matches_paper(self):
        g = dblp.toy_figure1_graph()
        assert g.edge_count == 7
        results = g.pattern_join(JoinQuery.line(3))
        values = set(results.values_only())
        assert ("A", "B", "C", "D") in values
        assert ("B", "C", "D", "E") not in values


class TestFlights:
    def test_scale(self):
        cfg = flights.FlightsConfig(n_airports=120, n_flights=300)
        g = flights.generate_graph(cfg)
        assert g.edge_count == 300
        assert g.vertex_count <= 120

    def test_durations_in_bounds(self):
        cfg = flights.FlightsConfig(n_airports=120, n_flights=200)
        g = flights.generate_graph(cfg)
        for _, _, ivl in g.edges:
            assert 0 <= ivl.lo <= ivl.hi <= cfg.day_minutes

    def test_hub_concentration(self):
        cfg = flights.FlightsConfig(n_airports=200, n_flights=400, hub_bias=0.8)
        g = flights.generate_graph(cfg)
        degree = {}
        for u, v, _ in g.edges:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        top = sorted(degree.values(), reverse=True)[: cfg.n_hubs]
        assert sum(top) > 0.3 * 2 * g.edge_count


class TestTPCBiH:
    def test_schema(self):
        db = tpc_bih.generate_database(
            tpc_bih.TPCBiHConfig(n_customers=50, n_suppliers=10, n_parts=20)
        )
        assert db["lineitem"].attrs == ("OK", "PK", "SK")
        assert db["orders"].attrs == ("OK", "CK", "ST")

    def test_low_customer_order_multiplicity(self):
        cfg = tpc_bih.TPCBiHConfig(n_customers=200, n_suppliers=20, n_parts=40)
        db = tpc_bih.generate_database(cfg)
        distinct_orders = db["orders"].key_cardinality(("OK",))
        assert distinct_orders / cfg.n_customers < 2.0

    def test_orders_are_version_histories(self):
        cfg = tpc_bih.TPCBiHConfig(n_customers=60, n_suppliers=20, n_parts=40)
        db = tpc_bih.generate_database(cfg)
        versions = len(db["orders"]) / db["orders"].key_cardinality(("OK",))
        assert versions >= cfg.order_versions * 0.8

    def test_partsupp_lineitem_skew(self):
        cfg = tpc_bih.TPCBiHConfig(n_customers=300, n_suppliers=20, n_parts=50)
        db = tpc_bih.generate_database(cfg)
        groups = db["lineitem"].group_by(("PK", "SK"))
        top = max(len(rows) for rows in groups.values())
        avg = len(db["lineitem"]) / len(groups)
        assert top > 3 * avg  # popular pairs dominate

    @pytest.mark.parametrize("qname", list(tpc_bih.ALL_QUERIES))
    def test_queries_valid_and_runnable(self, qname):
        query = tpc_bih.ALL_QUERIES[qname]()
        cfg = tpc_bih.TPCBiHConfig(n_customers=60, n_suppliers=10, n_parts=15)
        db = tpc_bih.query_database(query, cfg)
        query.validate(db)
        out_auto = temporal_join(query, db)
        out_naive = temporal_join(query, db, algorithm="naive")
        assert out_auto.normalized() == out_naive.normalized()

    def test_queries_are_acyclic_non_hierarchical(self):
        for qf in tpc_bih.ALL_QUERIES.values():
            q = qf()
            assert q.is_acyclic
            assert not q.is_r_hierarchical


class TestTPCE:
    def test_holdings_scale(self):
        cfg = tpce.TPCEConfig(n_customers=50, n_securities=10, n_holdings=200)
        rel = tpce.generate_holdings(cfg)
        assert len(rel) == 200

    def test_star_query_is_hierarchical(self):
        assert tpce.star_query(5).is_hierarchical

    def test_star_database_binds_copies(self):
        rel = tpce.generate_holdings(
            tpce.TPCEConfig(n_customers=30, n_securities=8, n_holdings=80)
        )
        db = tpce.star_database(rel, 3)
        assert set(db) == {"R1", "R2", "R3"}
        assert db["R2"].attrs == ("C2", "S")

    def test_aggregation(self):
        rel = tpce.generate_holdings(
            tpce.TPCEConfig(n_customers=25, n_securities=6, n_holdings=70, seed=1)
        )
        q = tpce.star_query(2)
        results = temporal_join(q, tpce.star_database(rel, 2))
        groups = tpce.customers_with_common_securities(
            results, min_count=1, n_customers=2
        )
        for customers, count in groups:
            assert len(customers) == 2
            assert count >= 1
        # Counts sorted descending.
        counts = [c for _, c in groups]
        assert counts == sorted(counts, reverse=True)


class TestLDBC:
    def test_relation_shape(self):
        rel = ldbc.knows_relation(ldbc.LDBCConfig(n_persons=40, n_knows=100))
        assert rel.attrs == ("p1", "p2")
        assert len(rel) == 200  # symmetric

    def test_long_intervals_dominate(self):
        cfg = ldbc.LDBCConfig(n_persons=60, n_knows=150, delete_fraction=0.1)
        g = ldbc.generate_graph(cfg)
        persistent = sum(1 for _, _, ivl in g.edges if ivl.hi == cfg.sim_span)
        assert persistent > 0.6 * g.edge_count

    def test_line_query_runnable(self):
        rel = ldbc.knows_relation(ldbc.LDBCConfig(n_persons=30, n_knows=60))
        q = ldbc.line_query(3)
        db = self_join_database(q, rel)
        out = temporal_join(q, db, tau=11)
        ref = temporal_join(q, db, tau=11, algorithm="naive")
        assert out.normalized() == ref.normalized()
