"""Tests for repro.core.query.JoinQuery and database binding."""

import pytest

from repro.core.errors import QueryError, SchemaError
from repro.core.hypergraph import Hypergraph
from repro.core.query import JoinQuery, self_join_database
from repro.core.relation import TemporalRelation


class TestConstructors:
    def test_line_shape(self):
        q = JoinQuery.line(3)
        assert q.edge_names == ["R1", "R2", "R3"]
        assert q.edge("R2") == ("x2", "x3")
        assert q.attrs == ("x1", "x2", "x3", "x4")

    def test_line_minimum(self):
        with pytest.raises(QueryError):
            JoinQuery.line(0)

    def test_star_shape(self):
        q = JoinQuery.star(3)
        assert all(q.edge(n)[1] == "y" for n in q.edge_names)

    def test_star_custom_center(self):
        q = JoinQuery.star(2, center="s")
        assert q.edge("R1") == ("x1", "s")

    def test_cycle_shape(self):
        q = JoinQuery.cycle(4)
        assert q.edge("R4") == ("x4", "x1")
        assert len(q.attrs) == 4

    def test_cycle_minimum(self):
        with pytest.raises(QueryError):
            JoinQuery.cycle(2)

    def test_triangle_is_cycle3(self):
        assert JoinQuery.triangle().hypergraph == JoinQuery.cycle(3).hypergraph

    def test_bowtie_shares_x1(self):
        q = JoinQuery.bowtie()
        assert len(q.hypergraph.edges_of("x1")) == 4

    def test_hier_matches_figure3(self):
        q = JoinQuery.hier()
        assert q.edge("R2") == ("A", "B", "D")
        assert q.is_hierarchical

    def test_custom_attr_order(self):
        q = JoinQuery({"R": ("a", "b")}, attr_order=("b", "a"))
        assert q.attrs == ("b", "a")

    def test_bad_attr_order_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery({"R": ("a", "b")}, attr_order=("a",))

    def test_from_hypergraph(self):
        h = Hypergraph({"R": ("a",)})
        q = JoinQuery.from_hypergraph(h)
        assert q.hypergraph is h


class TestIntrospection:
    def test_attr_position(self):
        q = JoinQuery.line(2)
        assert q.attr_position("x2") == 1

    def test_attr_position_unknown(self):
        with pytest.raises(QueryError):
            JoinQuery.line(2).attr_position("zzz")

    def test_classification_properties(self):
        assert JoinQuery.star(3).is_hierarchical
        assert JoinQuery.line(3).is_acyclic and not JoinQuery.line(3).is_hierarchical
        assert not JoinQuery.triangle().is_acyclic

    def test_repr_mentions_edges(self):
        assert "R1" in repr(JoinQuery.line(2))


class TestValidation:
    def test_validate_ok(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 1))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (0, 1))]),
        }
        q.validate(db)  # no raise

    def test_validate_attr_order_may_differ(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x2", "x1"), [((2, 1), (0, 1))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (0, 1))]),
        }
        q.validate(db)  # set equality is enough

    def test_validate_missing_relation(self):
        q = JoinQuery.line(2)
        with pytest.raises(SchemaError):
            q.validate({"R1": TemporalRelation("R1", ("x1", "x2"))})

    def test_validate_wrong_schema(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "zz")),
            "R2": TemporalRelation("R2", ("x2", "x3")),
        }
        with pytest.raises(SchemaError):
            q.validate(db)

    def test_input_size(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 1))]),
            "R2": TemporalRelation(
                "R2", ("x2", "x3"), [((2, 3), (0, 1)), ((2, 4), (0, 1))]
            ),
        }
        assert q.input_size(db) == 3


class TestSelfJoinDatabase:
    def test_binds_every_edge(self):
        rel = TemporalRelation("E", ("u", "v"), [((1, 2), (0, 5))])
        q = JoinQuery.triangle()
        db = self_join_database(q, rel)
        assert set(db) == {"R1", "R2", "R3"}
        assert db["R2"].attrs == ("x2", "x3")
        assert db["R2"].rows == rel.rows

    def test_requires_binary_input(self):
        rel = TemporalRelation("E", ("u", "v", "w"), [((1, 2, 3), (0, 5))])
        with pytest.raises(SchemaError):
            self_join_database(JoinQuery.line(2), rel)

    def test_requires_binary_edges(self):
        rel = TemporalRelation("E", ("u", "v"), [((1, 2), (0, 5))])
        q = JoinQuery({"R1": ("a", "b", "c")})
        with pytest.raises(QueryError):
            self_join_database(q, rel)
