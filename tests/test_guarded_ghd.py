"""Tests tying guarded partitions back to Definition 13."""

import pytest

from repro.core.query import JoinQuery
from repro.nontemporal.ghd import (
    GHD,
    fhtw_ghd,
    ghd_from_partition,
    guarded_ghd,
    hhtw_ghd,
    is_guarded,
)


class TestGuardedGHD:
    @pytest.mark.parametrize(
        "query",
        [JoinQuery.line(3), JoinQuery.line(4), JoinQuery.line(5),
         JoinQuery.star(3), JoinQuery.star(5)],
    )
    def test_construction_is_guarded_per_def13(self, query):
        ghd = guarded_ghd(query.hypergraph)
        assert ghd is not None
        assert ghd.is_valid()
        assert is_guarded(ghd)

    @pytest.mark.parametrize(
        "query", [JoinQuery.triangle(), JoinQuery.cycle(4), JoinQuery.bowtie()]
    )
    def test_unguarded_queries_give_none(self, query):
        assert guarded_ghd(query.hypergraph) is None

    def test_line3_bags_match_table1(self):
        ghd = guarded_ghd(JoinQuery.line(3).hypergraph)
        bag_sets = sorted(frozenset(b) for b in ghd.bags.values())
        assert bag_sets == [
            frozenset({"x1", "x2", "x3"}),
            frozenset({"x2", "x3", "x4"}),
        ]

    def test_every_edge_covered(self):
        for query in [JoinQuery.line(4), JoinQuery.star(4)]:
            hg = query.hypergraph
            ghd = guarded_ghd(hg)
            for name in hg.edge_names:
                eattrs = set(hg.edge(name))
                assert any(eattrs <= set(b) for b in ghd.bags.values())

    def test_trivial_ghd_is_degenerately_guarded(self):
        # Definition 13 with J = ∅ makes any bags-equal-edges GHD guarded
        # (HybridGuarded then degenerates to plain TIMEFIRST on Q_I = Q).
        hg = JoinQuery.line(3).hypergraph
        trivial = ghd_from_partition(hg, [["R1"], ["R2"], ["R3"]])
        assert is_guarded(trivial)

    def test_merged_bag_ghd_not_guarded(self):
        # Bags (x1x2x3) and (x3x4) have J = {x3}; Definition 13 would
        # require three nodes (x1x2x3, x2x3, x3x4) — so this GHD is not
        # guarded.
        hg = JoinQuery.line(3).hypergraph
        merged = ghd_from_partition(hg, [["R1", "R2"], ["R3"]])
        assert not is_guarded(merged)

    def test_hierarchical_star_ghd_is_guarded(self):
        # A star's hhtw GHD has one bag per edge, all sharing the center —
        # exactly the guarded shape.
        _, ghd = hhtw_ghd(JoinQuery.star(3).hypergraph)
        assert is_guarded(ghd)

    def test_hybrid_runs_on_guarded_ghd(self, rng):
        from conftest import random_database
        from repro.algorithms.hybrid import hybrid_join
        from repro.algorithms.naive import naive_join

        q = JoinQuery.line(3)
        ghd = guarded_ghd(q.hypergraph)
        db = random_database(q, rng, n=10, domain=3)
        got = hybrid_join(q, db, ghd=ghd)
        assert got.normalized() == naive_join(q, db).normalized()
