"""Hypothesis property-based tests for core invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algorithms.interval_join import forward_scan_join
from repro.algorithms.naive import naive_join
from repro.algorithms.registry import temporal_join
from repro.core.errors import PlanError
from repro.core.interval import Interval, IntervalSet, intersect_all
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.datastructures.heap import AddressableHeap
from repro.datastructures.interval_tree import DynamicIntervalIndex

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
intervals = st.tuples(
    st.integers(min_value=-50, max_value=50), st.integers(min_value=0, max_value=40)
).map(lambda t: Interval(t[0], t[0] + t[1]))

interval_lists = st.lists(intervals, max_size=12)


def relation_strategy(name, attrs, max_rows=10, domain=3, span=25):
    row = st.tuples(
        st.tuples(*[st.integers(min_value=0, max_value=domain - 1) for _ in attrs]),
        st.tuples(
            st.integers(min_value=0, max_value=span),
            st.integers(min_value=0, max_value=span // 2),
        ),
    )

    def build(rows):
        dedup = {}
        for values, (lo, dur) in rows:
            dedup.setdefault(values, Interval(lo, lo + dur))
        return TemporalRelation(name, attrs, list(dedup.items()))

    return st.lists(row, max_size=max_rows).map(build)


def database_strategy(query, **kwargs):
    names = query.edge_names
    return st.tuples(
        *[relation_strategy(n, query.edge(n), **kwargs) for n in names]
    ).map(lambda rels: dict(zip(names, rels)))


# ----------------------------------------------------------------------
# Interval algebra
# ----------------------------------------------------------------------
@given(intervals, intervals)
def test_intersection_commutative(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(intervals, intervals, intervals)
def test_intersection_associative(a, b, c):
    left = a.intersect(b)
    left = left.intersect(c) if left else None
    right = b.intersect(c)
    right = a.intersect(right) if right else None
    assert left == right


@given(intervals, intervals)
def test_intersect_consistent_with_predicate(a, b):
    assert (a.intersect(b) is not None) == a.intersects(b)


@given(intervals, st.integers(min_value=0, max_value=30))
def test_shrink_expand_roundtrip(iv, amount):
    shrunk = iv.shrink(amount)
    if shrunk is not None:
        assert shrunk.expand(amount) == iv


@given(interval_lists)
def test_intersect_all_is_fold(ivs):
    expected = Interval.always()
    for iv in ivs:
        got = expected.intersect(iv)
        if got is None:
            expected = None
            break
        expected = got
    assert intersect_all(ivs) == expected


@given(interval_lists)
def test_interval_set_disjoint_and_sorted(ivs):
    s = IntervalSet(ivs)
    members = list(s)
    for left, right in zip(members, members[1:]):
        assert left.hi < right.lo  # strictly disjoint, no touching


@given(interval_lists, st.integers(min_value=-50, max_value=60))
def test_interval_set_membership_matches_union(ivs, t):
    s = IntervalSet(ivs)
    assert s.contains(t) == any(iv.contains(t) for iv in ivs)


@given(interval_lists, interval_lists)
def test_interval_set_intersection_pointwise(xs, ys):
    a, b = IntervalSet(xs), IntervalSet(ys)
    joint = a.intersect(b)
    for t in range(-50, 61, 7):
        assert joint.contains(t) == (a.contains(t) and b.contains(t))


# ----------------------------------------------------------------------
# Data structures
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(), st.integers()), max_size=40))
def test_heap_sorts_any_input(pairs):
    heap = AddressableHeap()
    for i, (key, _) in enumerate(pairs):
        heap.push(key, i)
    out = [heap.pop()[0] for _ in range(len(pairs))]
    assert out == sorted(k for k, _ in pairs)


@given(st.lists(intervals, max_size=25), intervals)
def test_dynamic_interval_index_overlap(ivs, probe):
    idx = DynamicIntervalIndex([(iv, i) for i, iv in enumerate(ivs)])
    got = sorted(p for _, p in idx.overlapping(probe))
    want = sorted(i for i, iv in enumerate(ivs) if iv.intersects(probe))
    assert got == want


@given(st.lists(intervals, max_size=15), st.lists(intervals, max_size=15))
def test_forward_scan_matches_brute_force(xs, ys):
    left = [(i, iv) for i, iv in enumerate(xs)]
    right = [(j, iv) for j, iv in enumerate(ys)]
    got = sorted(forward_scan_join(left, right))
    want = sorted(
        (i, j, ia.intersect(ib))
        for i, ia in left
        for j, ib in right
        if ia.intersects(ib)
    )
    assert got == want


# ----------------------------------------------------------------------
# Join semantics
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(database_strategy(JoinQuery.line(3)), st.sampled_from([0, 2, 5]))
def test_line3_all_algorithms_match_oracle(db, tau):
    query = JoinQuery.line(3)
    want = naive_join(query, db, tau=tau).normalized()
    for algorithm in ["timefirst", "baseline", "hybrid", "hybrid-interval", "joinfirst"]:
        got = temporal_join(query, db, tau=tau, algorithm=algorithm)
        assert got.normalized() == want


@settings(max_examples=30, deadline=None)
@given(database_strategy(JoinQuery.star(3)))
def test_star_hierarchical_sweep_matches_oracle(db):
    query = JoinQuery.star(3)
    want = naive_join(query, db).normalized()
    got = temporal_join(query, db, algorithm="timefirst")
    assert got.normalized() == want


@settings(max_examples=25, deadline=None)
@given(database_strategy(JoinQuery.triangle(), max_rows=8))
def test_triangle_hybrid_matches_oracle(db):
    query = JoinQuery.triangle()
    want = naive_join(query, db).normalized()
    got = temporal_join(query, db, algorithm="hybrid")
    assert got.normalized() == want


@settings(max_examples=30, deadline=None)
@given(database_strategy(JoinQuery.line(3)), st.integers(min_value=0, max_value=12))
def test_durable_equals_filtered(db, tau):
    query = JoinQuery.line(3)
    durable = temporal_join(query, db, tau=tau, algorithm="timefirst")
    filtered = temporal_join(query, db, algorithm="timefirst").filter_durable(tau)
    assert durable.normalized() == filtered.normalized()


@settings(max_examples=30, deadline=None)
@given(database_strategy(JoinQuery.line(3)))
def test_result_intervals_are_exact_intersections(db):
    query = JoinQuery.line(3)
    lookups = {
        name: {v: iv for v, iv in db[name]} for name in query.edge_names
    }
    out = temporal_join(query, db, algorithm="timefirst")
    for values, interval in out:
        binding = dict(zip(query.attrs, values))
        parts = []
        for name in query.edge_names:
            key = tuple(binding[a] for a in query.edge(name))
            parts.append(lookups[name][key])
        assert intersect_all(parts) == interval


@settings(max_examples=30, deadline=None)
@given(database_strategy(JoinQuery.star(3)))
def test_cm_state_matches_hashed_state(db):
    from repro.algorithms.hierarchical import HierarchicalState
    from repro.algorithms.hierarchical_cm import ComparisonHierarchicalState
    from repro.algorithms.timefirst import sweep

    query = JoinQuery.star(3)
    hashed = sweep(query, db, HierarchicalState(query))
    cm = sweep(query, db, ComparisonHierarchicalState(query))
    assert hashed.normalized() == cm.normalized()


@settings(max_examples=30, deadline=None)
@given(database_strategy(JoinQuery.star(3)))
def test_online_matches_offline_property(db):
    from repro.algorithms.online import arrivals_from_database, stream_temporal_join
    from repro.core.result import JoinResultSet

    query = JoinQuery.star(3)
    streamed = JoinResultSet(
        query.attrs, stream_temporal_join(query, arrivals_from_database(db))
    )
    offline = naive_join(query, db)
    assert streamed.normalized() == offline.normalized()


@settings(max_examples=30, deadline=None)
@given(database_strategy(JoinQuery.line(3)), st.integers(min_value=1, max_value=6))
def test_topk_prefix_of_full_ranking(db, k):
    from repro.algorithms.topk import top_k_durable

    query = JoinQuery.line(3)
    full = sorted(
        naive_join(query, db).rows,
        key=lambda row: (-row[1].duration, row[0], row[1].lo),
    )
    got = top_k_durable(query, db, k, break_ties=True)
    assert list(got.rows) == full[:k]
