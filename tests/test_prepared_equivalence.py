"""Hypothesis: prepared and cold execution are observationally identical.

Acceptance property suite for the prepared-columns engine: for randomly
drawn instances — duplicate endpoints, zero-length and ±inf intervals
included — ``temporal_join(..., prepared=prepare(db))`` and
:func:`repro.run_batch` produce the same normalized results as cold
calls, across every registered algorithm, τ ∈ {0, 3} and
workers ∈ {1, 3}.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import prepare, run_batch, temporal_join  # noqa: E402
from repro.algorithms.registry import available_algorithms  # noqa: E402
from repro.core.errors import PlanError, QueryError  # noqa: E402
from repro.core.interval import Interval  # noqa: E402
from repro.core.query import JoinQuery  # noqa: E402
from repro.core.relation import TemporalRelation  # noqa: E402

QUERIES = (
    JoinQuery.line(3),   # acyclic, non-hierarchical -> generic kernel state
    JoinQuery.star(3),   # hierarchical -> hierarchical kernel state
    JoinQuery.triangle(),  # cyclic -> generic kernel state over a GHD
)

_INF = float("inf")

_lo = st.one_of(st.integers(min_value=-4, max_value=6), st.just(-_INF))
_dur = st.one_of(st.integers(min_value=0, max_value=5), st.just(_INF))


@st.composite
def _instance(draw):
    query = draw(st.sampled_from(QUERIES))
    database = {}
    for name in query.edge_names:
        attrs = query.edge(name)
        raw = draw(
            st.lists(
                st.tuples(
                    st.tuples(*[st.integers(0, 2) for _ in attrs]),
                    _lo,
                    _dur,
                ),
                min_size=0,
                max_size=6,
            )
        )
        rows, seen = [], set()
        for values, lo, dur in raw:
            if values in seen:
                continue
            seen.add(values)
            hi = _INF if dur == _INF else (dur if lo == -_INF else lo + dur)
            rows.append((values, Interval(lo, hi)))
        database[name] = TemporalRelation(name, attrs, rows)
    return query, database


@settings(max_examples=50, deadline=None)
@given(instance=_instance(), tau=st.sampled_from([0, 3]))
def test_prepared_matches_cold_serial(instance, tau):
    query, database = instance
    artifact = prepare(database)
    want = temporal_join(
        query, database, tau=tau, algorithm="timefirst", engine="object"
    ).normalized()
    got = temporal_join(
        query, database, tau=tau, algorithm="timefirst", prepared=artifact
    ).normalized()
    assert got == want


@settings(max_examples=25, deadline=None)
@given(instance=_instance(), tau=st.sampled_from([0, 3]))
def test_prepared_matches_cold_parallel(instance, tau):
    query, database = instance
    artifact = prepare(database)
    want = temporal_join(
        query, database, tau=tau, algorithm="timefirst", engine="object"
    ).normalized()
    for workers in (1, 3):
        got = temporal_join(
            query, database, tau=tau, algorithm="timefirst",
            prepared=artifact, workers=workers, parallel_mode="inline",
        ).normalized()
        assert got == want, workers


@settings(max_examples=25, deadline=None)
@given(instance=_instance(), tau=st.sampled_from([0, 3]))
def test_run_batch_matches_cold(instance, tau):
    """A batch with a duplicate and an attr-order variant equals cold
    per-query calls — shared sweeps and projections change nothing."""
    query, database = instance
    variant = JoinQuery(
        {name: query.edge(name) for name in query.edge_names},
        attr_order=tuple(reversed(query.attrs)),
    )
    fleet = [query, query, variant]
    artifact = prepare(database)
    for workers in (1, 3):
        results = run_batch(
            fleet, artifact, tau=tau, algorithm="timefirst",
            workers=workers, parallel_mode="inline",
        )
        for q, result in zip(fleet, results):
            want = temporal_join(
                q, database, tau=tau, algorithm="timefirst", engine="object"
            ).normalized()
            assert result.normalized() == want, (q.attrs, workers)


@settings(max_examples=15, deadline=None)
@given(instance=_instance(), tau=st.sampled_from([0, 3]))
def test_prepared_kwarg_uniform_across_registry(instance, tau):
    """``prepared=`` is accepted by *every* registered algorithm and
    never changes its answer (non-kernel algorithms ignore it)."""
    query, database = instance
    artifact = prepare(database)
    for algorithm in available_algorithms():
        try:
            want = temporal_join(
                query, database, tau=tau, algorithm=algorithm, engine="object"
            ).normalized()
        except (PlanError, QueryError):
            with pytest.raises((PlanError, QueryError)):
                temporal_join(
                    query, database, tau=tau, algorithm=algorithm,
                    prepared=artifact,
                )
            continue
        got = temporal_join(
            query, database, tau=tau, algorithm=algorithm, prepared=artifact
        ).normalized()
        assert got == want, algorithm
