"""Tests for the standing-query service benchmark (bench.service)."""

import json

import pytest

from repro.bench import service as bench_service
from repro.bench.service import check_cells, main, run_bench, run_cell


@pytest.fixture(autouse=True)
def tiny_sizes(monkeypatch):
    """Shrink the committed workload knobs so tests stay fast."""
    monkeypatch.setitem(
        bench_service.SIZES, "smoke",
        {"tpce_star_tau170": 150, "ldbc_line_tau11": 120},
    )


class TestRunCell:
    @pytest.mark.parametrize("case", sorted(bench_service.CASES))
    def test_cell_is_correct_and_shares_one_pass(self, case):
        cell = run_cell(case, "smoke", repeat=1)
        assert cell["ok"], f"{case}: served snapshots diverged from offline"
        assert cell["serve"]["ingest_passes"] == 1
        assert cell["serve"]["template_dedup"] == 1
        assert cell["serve"]["plan_cache_hits"] >= 1
        # the duplicate template returns exactly the primary's rows
        assert cell["results_per_query"][0] == cell["results_per_query"][2]
        # push subscribers saw every delivery
        assert cell["pushed_per_query"] == cell["results_per_query"]
        assert cell["ingest_tuples_per_s"] > 0


class TestCheckCells:
    def _cell(self, **overrides):
        cell = {
            "case": "tpce_star_tau170", "size": "smoke", "ok": True,
            "serve": {"ingest_passes": 1, "template_dedup": 1},
        }
        cell.update({k: v for k, v in overrides.items() if k != "serve"})
        cell["serve"].update(overrides.get("serve", {}))
        return cell

    def test_passes_on_clean_cells(self):
        assert check_cells({"cells": [self._cell()]}) == []

    def test_flags_result_mismatch(self):
        failures = check_cells({"cells": [self._cell(ok=False)]})
        assert any("differ from offline" in f for f in failures)

    def test_flags_extra_ingest_passes(self):
        failures = check_cells(
            {"cells": [self._cell(serve={"ingest_passes": 2})]}
        )
        assert any("ingest passes" in f for f in failures)

    def test_flags_dead_dedup(self):
        failures = check_cells(
            {"cells": [self._cell(serve={"template_dedup": 0})]}
        )
        assert any("dedup" in f for f in failures)


class TestMain:
    def test_writes_json_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_service.json"
        rc = main(["--out", str(out), "--sizes", "smoke", "--repeat", "1"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["benchmark"] == "service"
        assert all(c["ok"] for c in doc["cells"])
        assert check_cells(doc) == []
        captured = capsys.readouterr()
        assert "one shared ingest pass" in captured.out
        assert str(out) in captured.out

    def test_check_mode_passes_against_fresh_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_service.json"
        doc = run_bench(sizes=["smoke"], repeat=1)
        baseline.write_text(json.dumps(doc))
        rc = main(["--check", "--baseline", str(baseline), "--repeat", "1"])
        assert rc == 0
        assert "gate passed" in capsys.readouterr().out

    def test_check_mode_requires_readable_baseline(self, tmp_path, capsys):
        rc = main(["--check", "--baseline", str(tmp_path / "missing.json")])
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().out
