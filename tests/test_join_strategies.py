"""Tests for the three binary interval-join families."""

import random

import pytest

from repro.algorithms.binary import binary_temporal_join
from repro.algorithms.baseline import baseline_join
from repro.algorithms.interval_join import (
    JOIN_STRATEGIES,
    forward_scan_join,
    index_nested_join,
    interval_join,
    sort_merge_join,
)
from repro.algorithms.naive import naive_join
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.errors import QueryError

from conftest import random_database


def random_items(rng, n, prefix, span=60):
    items = []
    for i in range(n):
        lo = rng.randrange(span)
        items.append((f"{prefix}{i}", Interval(lo, lo + rng.randrange(20))))
    return items


class TestSortMerge:
    def test_simple_pair(self):
        out = sort_merge_join(
            [("a", Interval(0, 5))], [("b", Interval(3, 9))]
        )
        assert out == [("a", "b", Interval(3, 5))]

    def test_touching(self):
        out = sort_merge_join(
            [("a", Interval(0, 5))], [("b", Interval(5, 9))]
        )
        assert out == [("a", "b", Interval(5, 5))]

    def test_empty_sides(self):
        assert sort_merge_join([], [("b", Interval(0, 1))]) == []
        assert sort_merge_join([("a", Interval(0, 1))], []) == []

    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_forward_scan(self, seed):
        rng = random.Random(seed)
        left = random_items(rng, 35, "l")
        right = random_items(rng, 30, "r")
        fs = sorted(forward_scan_join(left, right))
        sm = sorted(sort_merge_join(left, right))
        assert fs == sm

    def test_each_pair_once(self):
        rng = random.Random(3)
        left = random_items(rng, 40, "l")
        right = random_items(rng, 40, "r")
        pairs = sort_merge_join(left, right)
        keys = [(a, b) for a, b, _ in pairs]
        assert len(keys) == len(set(keys))


class TestDispatch:
    def test_all_strategies_registered(self):
        assert set(JOIN_STRATEGIES) == {
            "forward-scan", "index", "sort-merge", "lazy-sweep"
        }

    def test_unknown_strategy(self):
        with pytest.raises(QueryError) as exc:
            interval_join([], [], strategy="quantum")
        # The error must name the valid strategies.
        assert "lazy-sweep" in str(exc.value)

    def test_unknown_predicate(self):
        with pytest.raises(QueryError) as exc:
            interval_join([], [], predicate="sideways")
        assert "overlaps" in str(exc.value)

    def test_predicate_needs_capable_strategy(self):
        with pytest.raises(QueryError) as exc:
            interval_join([], [], strategy="forward-scan", predicate="meets")
        assert "lazy-sweep" in str(exc.value)

    @pytest.mark.parametrize("strategy", sorted(JOIN_STRATEGIES))
    def test_strategies_agree(self, strategy):
        rng = random.Random(9)
        left = random_items(rng, 30, "l")
        right = random_items(rng, 30, "r")
        got = sorted(interval_join(left, right, strategy=strategy))
        want = sorted(forward_scan_join(left, right))
        assert got == want


class TestThreadThrough:
    @pytest.mark.parametrize("strategy", sorted(JOIN_STRATEGIES))
    def test_binary_join_strategy(self, strategy, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=15, domain=4)
        got = binary_temporal_join(db["R1"], db["R2"], strategy=strategy)
        want = binary_temporal_join(db["R1"], db["R2"])
        assert sorted(got.rows) == sorted(want.rows)

    @pytest.mark.parametrize("strategy", sorted(JOIN_STRATEGIES))
    def test_baseline_strategy(self, strategy, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=12, domain=3)
        got = baseline_join(q, db, binary_strategy=strategy)
        want = naive_join(q, db)
        assert got.normalized() == want.normalized()

    def test_strategy_via_registry(self, rng):
        from repro.algorithms.registry import temporal_join

        q = JoinQuery.star(3)
        db = random_database(q, rng, n=10, domain=3)
        got = temporal_join(
            q, db, algorithm="baseline", binary_strategy="sort-merge"
        )
        want = temporal_join(q, db, algorithm="naive")
        assert got.normalized() == want.normalized()
