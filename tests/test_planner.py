"""Tests for the Figure 7 guideline planner."""

import pytest

from repro.core.planner import plan
from repro.core.classification import QueryClass
from repro.core.query import JoinQuery


class TestDecisions:
    @pytest.mark.parametrize("query", [JoinQuery.star(3), JoinQuery.hier()])
    def test_hierarchical_goes_timefirst(self, query):
        p = plan(query)
        assert p.query_class is QueryClass.HIERARCHICAL
        assert p.algorithm == "timefirst"
        assert p.exponent == 1.0

    def test_r_hierarchical_goes_timefirst_with_note(self):
        q = JoinQuery({"R1": ("a", "b", "c"), "R2": ("a", "b"), "R3": ("b", "c")})
        p = plan(q)
        assert p.query_class is QueryClass.R_HIERARCHICAL
        assert p.algorithm == "timefirst"
        assert any("r-hierarchical" in note for note in p.notes)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_lines_prefer_hybrid_interval(self, n):
        p = plan(JoinQuery.line(n))
        assert p.query_class is QueryClass.ACYCLIC
        assert p.algorithm == "hybrid-interval"
        assert p.guarded
        assert "timefirst" in p.alternatives
        assert "hybrid" in p.alternatives  # hhtw = 2
        assert p.exponent == 2.0

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_cycles_go_hybrid(self, n):
        p = plan(JoinQuery.cycle(n))
        assert p.query_class is QueryClass.CYCLIC
        assert p.algorithm == "hybrid"
        assert not p.guarded

    def test_triangle_exponent(self):
        # Triangle: fhtw = 1.5, hhtw = 1.5 → exponent min(2.5, 1.5) = 1.5.
        p = plan(JoinQuery.triangle())
        assert p.fhtw == 1.5 and p.hhtw == 1.5
        assert p.exponent == 1.5

    def test_cycle4_exponent(self):
        p = plan(JoinQuery.cycle(4))
        assert p.fhtw == 2.0 and p.hhtw == 2.0
        assert p.exponent == 2.0

    def test_bowtie_exponent(self):
        p = plan(JoinQuery.bowtie())
        assert p.fhtw == 1.5 and p.hhtw == 1.5
        assert p.exponent == 1.5
        # fhtw + 1 = 2.5 > hhtw = 1.5 → timefirst not listed... actually
        # the rule lists timefirst when fhtw + 1 <= hhtw, which fails here.
        assert "timefirst" not in p.alternatives


class TestExplain:
    def test_explain_renders_all_fields(self):
        text = plan(JoinQuery.line(3)).explain()
        assert "fhtw" in text and "hybrid-interval" in text
        assert "guarded" in text

    def test_explain_hierarchical(self):
        text = plan(JoinQuery.star(4)).explain()
        assert "timefirst" in text
        assert "optimal" in text
