"""Tests for binary temporal joins and the pairwise BASELINE."""

import pytest

from repro.algorithms.baseline import baseline_join, choose_join_order
from repro.algorithms.binary import binary_temporal_join
from repro.algorithms.naive import naive_join
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.core.errors import QueryError

from conftest import random_database


class TestBinaryTemporalJoin:
    def test_key_and_interval_predicate(self):
        left = TemporalRelation(
            "L", ("a", "b"), [((1, 2), (0, 10)), ((1, 3), (0, 10))]
        )
        right = TemporalRelation(
            "R", ("b", "c"), [((2, "x"), (5, 20)), ((2, "y"), (50, 60))]
        )
        out = binary_temporal_join(left, right)
        rows = {v: iv for v, iv in out}
        assert rows == {(1, 2, "x"): Interval(5, 10)}

    def test_schema_composition(self):
        left = TemporalRelation("L", ("a", "b"), [((1, 2), (0, 10))])
        right = TemporalRelation("R", ("b", "c"), [((2, 3), (0, 10))])
        out = binary_temporal_join(left, right)
        assert out.attrs == ("a", "b", "c")

    def test_temporal_cartesian_product(self):
        left = TemporalRelation("L", ("a",), [((1,), (0, 10)), ((2,), (40, 50))])
        right = TemporalRelation("R", ("b",), [((9,), (5, 45))])
        out = binary_temporal_join(left, right)
        assert sorted(v for v, _ in out) == [(1, 9), (2, 9)]

    def test_multiple_shared_attrs(self):
        left = TemporalRelation("L", ("a", "b"), [((1, 2), (0, 10))])
        right = TemporalRelation(
            "R", ("a", "b", "c"), [((1, 2, 3), (5, 9)), ((1, 9, 4), (5, 9))]
        )
        out = binary_temporal_join(left, right)
        assert [v for v, _ in out] == [(1, 2, 3)]

    def test_matches_naive_two_way(self, rng):
        q = JoinQuery.line(2)
        for _ in range(5):
            db = random_database(q, rng, n=15, domain=4)
            got = binary_temporal_join(db["R1"], db["R2"])
            want = naive_join(q, db)
            got_rows = sorted(
                (tuple(v[got.positions(q.attrs)[i]] for i in range(len(q.attrs))), iv)
                for v, iv in got
            )
            assert got_rows == [(v, iv) for v, iv in want.normalized()]


class TestJoinOrder:
    def test_two_relations_trivial(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng)
        assert choose_join_order(q, db) == ["R1", "R2"]

    def test_connected_prefixes(self, rng):
        q = JoinQuery.line(4)
        db = random_database(q, rng)
        order = choose_join_order(q, db)
        hg = q.hypergraph
        covered = set(hg.edge(order[0]))
        for name in order[1:]:
            assert covered & set(hg.edge(name))
            covered |= set(hg.edge(name))

    def test_order_prefers_small_intermediates(self):
        # R2 ⋈ R3 is tiny (distinct keys), R1 ⋈ R2 is huge (one hub key):
        # the search must not start with R1 ⋈ R2.
        q = JoinQuery.line(3)
        hub_rows = [((i, 0), (0, 100)) for i in range(20)]
        r2_rows = [((0, i), (0, 100)) for i in range(20)]
        r3_rows = [((19, 5), (0, 100))]
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), hub_rows),
            "R2": TemporalRelation("R2", ("x2", "x3"), r2_rows),
            "R3": TemporalRelation("R3", ("x3", "x4"), r3_rows),
        }
        order = choose_join_order(q, db)
        assert set(order[:2]) != {"R1", "R2"}

    def test_greedy_path_for_large_queries(self, rng):
        q = JoinQuery.line(8)
        db = random_database(q, rng, n=5, domain=3)
        order = choose_join_order(q, db)
        assert sorted(order) == sorted(q.edge_names)


class TestBaselineJoin:
    @pytest.mark.parametrize(
        "query",
        [
            JoinQuery.line(3),
            JoinQuery.star(3),
            JoinQuery.triangle(),
            JoinQuery.cycle(4),
            JoinQuery.bowtie(),
            JoinQuery.hier(),
        ],
    )
    def test_matches_naive(self, query, rng):
        for _ in range(3):
            db = random_database(query, rng, n=10, domain=3)
            got = baseline_join(query, db)
            want = naive_join(query, db)
            assert got.normalized() == want.normalized()

    def test_durable(self, rng):
        q = JoinQuery.star(3)
        for tau in [0, 4, 9]:
            db = random_database(q, rng, n=12, domain=3)
            got = baseline_join(q, db, tau=tau)
            want = naive_join(q, db, tau=tau)
            assert got.normalized() == want.normalized()

    def test_explicit_order(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=10, domain=3)
        got = baseline_join(q, db, order=["R3", "R2", "R1"])
        assert got.normalized() == naive_join(q, db).normalized()

    def test_bad_order_rejected(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng)
        with pytest.raises(QueryError):
            baseline_join(q, db, order=["R1", "R2"])

    def test_track_intermediates(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=10, domain=3)
        sizes = []
        baseline_join(q, db, track_intermediates=sizes)
        assert len(sizes) == 2  # two binary joins for three relations

    def test_short_circuit_on_empty_intermediate(self):
        q = JoinQuery.line(3)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 1))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((9, 9), (0, 1))]),
            "R3": TemporalRelation("R3", ("x3", "x4"), [((9, 9), (0, 1))]),
        }
        assert len(baseline_join(q, db)) == 0
