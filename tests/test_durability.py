"""Tests for the durability transforms (paper §2.1 remarks)."""

import random

import pytest

from repro.algorithms.naive import naive_join
from repro.core.durability import (
    coalesce_results,
    durability,
    explode_interval_sets,
    lead_lag_transform,
    relative_pattern_transform,
    shrink_database,
    widen_instants,
)
from repro.core.interval import Interval, IntervalSet
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.core.result import JoinResultSet
from repro.core.errors import QueryError

from conftest import random_database


class TestShrinkDatabase:
    def test_zero_tau_identity(self):
        rel = TemporalRelation("R", ("a",), [((1,), (0, 10))])
        out = shrink_database({"R": rel}, 0)
        assert out["R"] is rel

    def test_negative_tau_rejected(self):
        with pytest.raises(QueryError):
            shrink_database({}, -1)

    def test_shrinks_both_sides(self):
        rel = TemporalRelation("R", ("a",), [((1,), (0, 10))])
        out = shrink_database({"R": rel}, 4)
        assert out["R"].rows[0][1] == Interval(2, 8)

    def test_drops_short_tuples(self):
        rel = TemporalRelation("R", ("a",), [((1,), (0, 3)), ((2,), (0, 20))])
        out = shrink_database({"R": rel}, 4)
        assert len(out["R"]) == 1

    def test_shrink_equivalence_to_filtering(self, rng):
        """The paper's central reduction: join(shrink(R, τ/2)) == σ_{dur≥τ}(join(R))."""
        query = JoinQuery.line(3)
        for trial in range(5):
            db = random_database(query, rng, n=10, domain=3, time_span=30)
            tau = [0, 2, 5, 9, 14][trial]
            via_shrink = naive_join(query, db, tau=tau)
            via_filter = naive_join(query, db, tau=0).filter_durable(tau)
            assert via_shrink.normalized() == via_filter.normalized()


class TestWidenInstants:
    def test_widening(self):
        rel = TemporalRelation("R", ("a",), [((1,), Interval.instant(10))])
        out = widen_instants(rel, tau=4)
        assert out.rows[0][1] == Interval(8, 12)

    def test_within_tau_semantics(self):
        # Timestamps within τ=4 of each other iff widened intervals meet.
        r1 = widen_instants(
            TemporalRelation("R1", ("k", "a"), [((0, 1), Interval.instant(10))]),
            tau=4,
        )
        r2_close = widen_instants(
            TemporalRelation("R2", ("k", "b"), [((0, 2), Interval.instant(13))]),
            tau=4,
        )
        r2_far = widen_instants(
            TemporalRelation("R2", ("k", "b"), [((0, 2), Interval.instant(15))]),
            tau=4,
        )
        q = JoinQuery({"R1": ("k", "a"), "R2": ("k", "b")})
        assert len(naive_join(q, {"R1": r1, "R2": r2_close})) == 1
        assert len(naive_join(q, {"R1": r1, "R2": r2_far})) == 0


class TestLeadLag:
    def test_transform_shapes(self):
        leader = TemporalRelation("L", ("a",), [((1,), (0, 5))])
        follower = TemporalRelation("F", ("a",), [((1,), (9, 12))])
        lead, follow = lead_lag_transform(leader, follower)
        assert lead.rows[0][1] == Interval(5, float("inf"))
        assert follow.rows[0][1] == Interval(float("-inf"), 9)

    @pytest.mark.parametrize(
        "f_start,tau,expect",
        [(9, 4, 1), (9, 4.0001, 0), (5, 0, 1), (4, 0, 0)],
    )
    def test_gap_semantics(self, f_start, tau, expect):
        leader = TemporalRelation("L", ("a", "u"), [((1, "l"), (0, 5))])
        follower = TemporalRelation("F", ("a", "v"), [((1, "f"), (f_start, 20))])
        lead, follow = lead_lag_transform(leader, follower)
        q = JoinQuery({"L": ("a", "u"), "F": ("a", "v")})
        out = naive_join(q, {"L": lead, "F": follow}, tau=tau)
        assert len(out) == expect


class TestRelativePattern:
    def test_feasible_shift_found(self):
        db = {
            "R": TemporalRelation("R", ("a",), [((1,), (101, 104))]),
        }
        out = relative_pattern_transform(db, {"R": Interval(0, 4)})
        # Feasible shifts Δ with [101,104]+Δ ⊆ [0,4]: Δ ∈ [-101, -100].
        assert out["R"].rows[0][1] == Interval(-101, -100)

    def test_tuple_longer_than_pattern_dropped(self):
        db = {"R": TemporalRelation("R", ("a",), [((1,), (0, 10))])}
        out = relative_pattern_transform(db, {"R": Interval(0, 4)})
        assert len(out["R"]) == 0

    def test_untouched_relations_pass_through(self):
        rel = TemporalRelation("R", ("a",), [((1,), (0, 10))])
        out = relative_pattern_transform({"R": rel}, {})
        assert out["R"] is rel

    def test_joint_feasibility(self):
        # Two relations must admit a COMMON shift.
        db = {
            "R1": TemporalRelation("R1", ("k", "a"), [((0, 1), (100, 102))]),
            "R2": TemporalRelation("R2", ("k", "b"), [((0, 2), (105, 107))]),
        }
        pattern = {"R1": Interval(0, 3), "R2": Interval(4, 8)}
        out = relative_pattern_transform(db, pattern)
        q = JoinQuery({"R1": ("k", "a"), "R2": ("k", "b")})
        results = naive_join(q, out)
        assert len(results) == 1  # shift −100 places both inside the pattern
        # Shift interval is the intersection of the two feasibility windows.
        assert results[0][1] == Interval(-100, -99)


class TestIntervalSetModel:
    def test_explode_counts_episodes(self):
        rows = [((1, 2), IntervalSet([(0, 3), (7, 9)])), ((1, 3), IntervalSet([(1, 2)]))]
        rel = explode_interval_sets("R", ("u", "v"), rows)
        assert len(rel) == 3
        assert rel.attrs == ("u", "v", "__episode__")

    def test_explode_distinct_tuples(self):
        rows = [((1, 2), IntervalSet([(0, 3), (7, 9)]))]
        rel = explode_interval_sets("R", ("u", "v"), rows)
        values = [v for v, _ in rel]
        assert len(set(values)) == 2

    def test_coalesce_results_merges_episodes(self):
        rs = JoinResultSet(("a", "e"))
        rs.append((1, 0), Interval(0, 3))
        rs.append((1, 1), Interval(2, 8))
        rs.append((2, 0), Interval(0, 1))
        out = coalesce_results(rs, hidden_attrs=("e",))
        assert out.attrs == ("a",)
        rows = out.normalized()
        assert rows == [((1,), Interval(0, 8)), ((2,), Interval(0, 1))]

    def test_coalesce_keeps_disjoint_episodes(self):
        rs = JoinResultSet(("a", "e"))
        rs.append((1, 0), Interval(0, 3))
        rs.append((1, 1), Interval(5, 8))
        out = coalesce_results(rs, hidden_attrs=("e",))
        assert len(out) == 2


class TestDurabilityHelper:
    def test_nonempty(self):
        assert durability([Interval(0, 10), Interval(3, 20)]) == 7

    def test_empty_is_neg_inf(self):
        assert durability([Interval(0, 1), Interval(5, 6)]) == float("-inf")

    def test_empty_list_is_infinite(self):
        assert durability([]) == float("inf")
