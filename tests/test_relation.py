"""Tests for repro.core.relation.TemporalRelation."""

import pytest

from repro.core.errors import SchemaError
from repro.core.interval import Interval
from repro.core.relation import TemporalRelation, relation_from_pairs


def small_rel() -> TemporalRelation:
    return TemporalRelation(
        "R",
        ("a", "b"),
        [
            ((1, "x"), (0, 10)),
            ((1, "y"), (5, 15)),
            ((2, "x"), (20, 30)),
        ],
    )


class TestConstruction:
    def test_rows_and_len(self):
        rel = small_rel()
        assert len(rel) == 3
        assert rel.rows[0] == ((1, "x"), Interval(0, 10))

    def test_interval_coercion(self):
        rel = TemporalRelation("R", ("a",), [((1,), 5)])
        assert rel.rows[0][1] == Interval(5, 5)

    def test_empty_relation_is_falsy(self):
        assert not TemporalRelation("R", ("a",))

    def test_duplicate_attrs_rejected(self):
        with pytest.raises(SchemaError):
            TemporalRelation("R", ("a", "a"))

    def test_no_attrs_rejected(self):
        with pytest.raises(SchemaError):
            TemporalRelation("R", ())

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            TemporalRelation("R", ("a", "b"), [((1,), (0, 1))])

    def test_duplicate_tuples_rejected(self):
        with pytest.raises(SchemaError):
            TemporalRelation(
                "R", ("a",), [((1,), (0, 1)), ((1,), (2, 3))]
            )

    def test_duplicates_allowed_when_unchecked(self):
        rel = TemporalRelation(
            "R", ("a",), [((1,), (0, 1)), ((1,), (2, 3))], check_distinct=False
        )
        assert len(rel) == 2

    def test_relation_from_pairs(self):
        rel = relation_from_pairs("R", ("a",), [((1,), (0, 2))])
        assert len(rel) == 1


class TestPositions:
    def test_position(self):
        rel = small_rel()
        assert rel.position("a") == 0 and rel.position("b") == 1

    def test_positions_ordered(self):
        assert small_rel().positions(("b", "a")) == (1, 0)

    def test_unknown_attr(self):
        with pytest.raises(SchemaError):
            small_rel().position("zzz")


class TestRelationalOps:
    def test_project_values(self):
        rel = small_rel()
        assert rel.project_values((1, "x"), ("b",)) == ("x",)

    def test_project_dedupes(self):
        rel = small_rel()
        proj = rel.project(("a",))
        assert sorted(v for v, _ in proj) == [(1,), (2,)]

    def test_project_keeps_first_interval(self):
        proj = small_rel().project(("a",))
        lookup = {v: iv for v, iv in proj}
        assert lookup[(1,)] == Interval(0, 10)

    def test_select(self):
        sel = small_rel().select(lambda v, iv: v[0] == 1)
        assert len(sel) == 2

    def test_select_on_interval(self):
        sel = small_rel().select(lambda v, iv: iv.duration >= 10)
        assert all(iv.duration >= 10 for _, iv in sel)

    def test_group_by(self):
        groups = small_rel().group_by(("a",))
        assert set(groups) == {(1,), (2,)}
        assert len(groups[(1,)]) == 2

    def test_group_by_empty_key_single_group(self):
        groups = small_rel().group_by(())
        assert set(groups) == {()}
        assert len(groups[()]) == 3

    def test_semijoin_keys(self):
        out = small_rel().semijoin_keys(("a",), [(2,)])
        assert [v for v, _ in out] == [(2, "x")]

    def test_semijoin_keys_empty(self):
        assert not small_rel().semijoin_keys(("a",), [])

    def test_shrink(self):
        out = small_rel().shrink(4)
        lookup = {v: iv for v, iv in out}
        assert lookup[(1, "x")] == Interval(4, 6)

    def test_shrink_drops_vanished(self):
        out = small_rel().shrink(6)
        assert (1, "x") not in {v for v, _ in out}  # duration 10 < 12

    def test_map_intervals(self):
        out = small_rel().map_intervals(lambda iv: iv.shift(100))
        assert out.rows[0][1] == Interval(100, 110)

    def test_map_intervals_drops_none(self):
        out = small_rel().map_intervals(
            lambda iv: None if iv.lo == 0 else iv
        )
        assert len(out) == 2

    def test_rename(self):
        out = small_rel().rename({"a": "x1", "b": "x2"})
        assert out.attrs == ("x1", "x2")
        assert len(out) == 3

    def test_rename_partial(self):
        out = small_rel().rename({"a": "z"})
        assert out.attrs == ("z", "b")

    def test_with_name(self):
        out = small_rel().with_name("S")
        assert out.name == "S" and len(out) == 3


class TestStatistics:
    def test_key_cardinality(self):
        rel = small_rel()
        assert rel.key_cardinality(("a",)) == 2
        assert rel.key_cardinality(("b",)) == 2
        assert rel.key_cardinality(("a", "b")) == 3

    def test_endpoints(self):
        pts = sorted(small_rel().endpoints())
        assert pts == [0, 5, 10, 15, 20, 30]
