"""Unit tests for the serving layer (broker, handles, service façade)."""

import threading

import pytest

from repro.algorithms.registry import temporal_join
from repro.core.errors import QueryError
from repro.core.query import JoinQuery
from repro.serve import (
    Backpressure,
    StandingQuery,
    StreamBroker,
    TemporalJoinService,
)

from conftest import random_database
import random


def star2():
    return JoinQuery.star(2)


class TestStreamingBasics:
    def test_append_then_watermark_emits(self):
        svc = TemporalJoinService()
        pairs = svc.register(star2(), name="pairs")
        assert svc.append("R1", (1, "h"), (0, 10)) == 0
        assert svc.append("R2", (2, "h"), (2, 5)) == 0
        assert svc.advance_to(6) == 1
        [emission] = pairs.drain()
        assert emission.values == (1, "h", 2)
        assert emission.interval.lo == 2 and emission.interval.hi == 5
        # Triggered by the declared watermark at t=6; the result was
        # finalizable at its right endpoint 5.
        assert emission.at == 6 and emission.lag == 1

    def test_arrival_triggers_emission_at_its_start(self):
        svc = TemporalJoinService()
        pairs = svc.register(star2(), name="pairs")
        svc.append("R1", (1, "h"), (0, 10))
        svc.append("R2", (2, "h"), (2, 5))
        # An arrival starting past hi=5 proves the intersection settled.
        assert svc.append("R1", (9, "h"), (7, 8)) == 1
        [emission] = pairs.drain()
        assert emission.at == 7 and emission.lag == 2

    def test_finish_flushes_and_closes(self):
        svc = TemporalJoinService()
        pairs = svc.register(star2(), name="pairs")
        svc.append("R1", (1, "h"), (0, 10))
        svc.append("R2", (2, "h"), (2, 5))
        assert svc.finish() == 1
        [emission] = pairs.drain()
        assert emission.lag == 0  # end-of-stream flush: zero by construction
        assert pairs.closed
        with pytest.raises(QueryError):
            svc.append("R1", (3, "h"), (20, 30))
        with pytest.raises(QueryError):
            svc.advance_to(50)
        assert svc.finish() == 0  # idempotent

    def test_iteration_ends_at_close(self):
        svc = TemporalJoinService()
        pairs = svc.register(star2(), name="pairs")
        svc.append("R1", (1, "h"), (0, 10))
        svc.append("R2", (2, "h"), (2, 5))
        svc.finish()
        assert [e.values for e in pairs] == [(1, "h", 2)]

    def test_poll_timeout_zero_never_blocks(self):
        svc = TemporalJoinService()
        pairs = svc.register(star2(), name="pairs")
        assert pairs.poll() is None
        svc.append("R1", (1, "h"), (0, 10))
        svc.append("R2", (2, "h"), (2, 5))
        svc.finish()
        assert pairs.poll().values == (1, "h", 2)
        assert pairs.poll() is None

    def test_subscribe_bypasses_buffer(self):
        svc = TemporalJoinService()
        pairs = svc.register(star2(), name="pairs", buffer_size=1)
        seen = []
        pairs.subscribe(seen.append)
        svc.append("R1", (1, "h"), (0, 10))
        svc.append("R2", (3, "h"), (1, 4))
        svc.append("R2", (2, "h"), (2, 5))
        svc.finish()
        assert {e.values for e in seen} == {(1, "h", 2), (1, "h", 3)}
        assert pairs.pending == 0  # push mode: nothing buffered

    def test_strict_ordering_enforced_at_broker(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="pairs")
        svc.append("R1", (1, "h"), (5, 10))
        with pytest.raises(QueryError, match="out-of-order"):
            svc.append("R2", (2, "h"), (3, 9))

    def test_non_strict_clamps_and_notes(self):
        svc = TemporalJoinService(strict=False)
        svc.register(star2(), name="pairs")
        svc.append("R1", (1, "h"), (5, 10))
        svc.append("R2", (2, "h"), (3, 9))
        stats = svc.telemetry()
        assert stats.get("serve.clamped") == 1
        assert "clamped" in stats.notes["serve.clamp_reason"]

    def test_watermark_regression_is_noop(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="pairs")
        svc.advance_to(10)
        assert svc.advance_to(4) == 0
        assert svc.watermark == 10
        assert svc.telemetry().get("serve.watermark_regressions") == 1

    def test_unmatched_append_is_counted_not_fatal(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="pairs")
        svc.append("S9", ("x",), (0, 1))
        assert svc.telemetry().get("serve.unmatched_appends") == 1

    def test_arity_mismatch_rejected(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="pairs")
        with pytest.raises(QueryError, match="arity"):
            svc.append("R1", (1, 2, 3), (0, 1))

    def test_schema_conflict_rejected(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="pairs")
        conflicting = JoinQuery({"R1": ("a", "b", "c"), "Z": ("c", "d")})
        with pytest.raises(QueryError, match="already carries"):
            svc.register(conflicting, name="bad")


class TestBackpressure:
    def _flood(self, policy, buffer_size, **kwargs):
        svc = TemporalJoinService()
        handle = svc.register(
            star2(), name="q", policy=policy, buffer_size=buffer_size, **kwargs
        )
        svc.append("R1", (1, "h"), (0, 100))
        for k in range(5):
            svc.append("R2", (k, "h"), (k, k + 1))
        svc.finish()
        return svc, handle

    def test_unknown_policy_rejected(self):
        svc = TemporalJoinService()
        with pytest.raises(QueryError, match="backpressure"):
            svc.register(star2(), policy="warn")

    def test_drop_oldest_counts_and_snapshot_survives(self):
        svc, handle = self._flood(Backpressure.DROP_OLDEST, buffer_size=2)
        assert handle.pending == 2
        stats = svc.telemetry()
        assert stats.get("serve.dropped") == 3
        assert "drop-oldest" in stats.notes["serve.backpressure"]
        # The consistent snapshot is unaffected by buffer losses.
        assert len(handle.snapshot()) == 5

    def test_error_policy_raises_on_overflow(self):
        with pytest.raises(QueryError, match="overflow"):
            self._flood(Backpressure.ERROR, buffer_size=2)

    def test_block_policy_times_out_without_consumer(self):
        with pytest.raises(QueryError, match="timeout"):
            self._flood(Backpressure.BLOCK, buffer_size=2, block_timeout=0.05)

    def test_block_policy_waits_for_consumer(self):
        svc = TemporalJoinService()
        handle = svc.register(
            star2(), name="q", policy=Backpressure.BLOCK,
            buffer_size=2, block_timeout=5.0,
        )
        consumed = []

        def consume():
            while True:
                emission = handle.poll(timeout=None)
                if emission is None:
                    return
                consumed.append(emission)

        thread = threading.Thread(target=consume)
        thread.start()
        try:
            svc.append("R1", (1, "h"), (0, 100))
            for k in range(20):
                svc.append("R2", (k, "h"), (k, k + 1))
            svc.finish()
        finally:
            thread.join(timeout=10)
        assert not thread.is_alive()
        assert len(consumed) == 20
        assert svc.telemetry().get("serve.dropped") == 0

    def test_buffer_size_validated(self):
        with pytest.raises(QueryError, match="buffer_size"):
            StandingQuery("q", star2(), 0, buffer_size=0)


class TestSnapshots:
    def test_snapshot_carries_watermark(self):
        svc = TemporalJoinService()
        handle = svc.register(star2(), name="q")
        svc.append("R1", (1, "h"), (0, 10))
        svc.append("R2", (2, "h"), (2, 5))
        svc.advance_to(6)
        snapshot = handle.snapshot()
        assert snapshot.at == 6
        assert len(snapshot) == 1
        svc.finish()
        assert handle.snapshot().at == float("inf")

    def test_snapshot_isolated_from_later_results(self):
        svc = TemporalJoinService()
        handle = svc.register(star2(), name="q")
        svc.append("R1", (1, "h"), (0, 100))
        svc.append("R2", (2, "h"), (2, 5))
        svc.advance_to(6)
        before = handle.snapshot()
        svc.append("R2", (3, "h"), (7, 9))
        svc.finish()
        assert len(before) == 1  # a copy, not a live view
        assert len(handle.snapshot()) == 2

    def test_retention_disabled_rejects_snapshot(self):
        svc = TemporalJoinService()
        handle = svc.register(star2(), name="q", retain_results=False)
        with pytest.raises(QueryError, match="retain_results"):
            handle.snapshot()


class TestTemplateDedup:
    def test_identical_templates_share_one_operator(self):
        svc = TemporalJoinService()
        a = svc.register(star2(), name="a")
        b = svc.register(star2(), name="b")
        assert len(svc.broker.evaluations) == 1
        svc.append("R1", (1, "h"), (0, 10))
        svc.append("R2", (2, "h"), (2, 5))
        svc.finish()
        assert [e.values for e in a.drain()] == [e.values for e in b.drain()]
        stats = svc.telemetry()
        assert stats.get("serve.template_dedup") == 1
        assert stats.get("serve.plan_cache_hits") == 1
        # One operator: the sweep ran once for both handles.
        assert stats.get("sweep.inserts") == 2

    def test_attr_order_variant_gets_projection(self):
        query = star2()
        variant = JoinQuery(
            {name: query.edge(name) for name in query.edge_names},
            attr_order=tuple(reversed(query.attrs)),
        )
        svc = TemporalJoinService()
        a = svc.register(query, name="canon")
        b = svc.register(variant, name="reversed")
        assert len(svc.broker.evaluations) == 1
        svc.append("R1", (1, "h"), (0, 10))
        svc.append("R2", (2, "h"), (2, 5))
        svc.finish()
        assert [e.values for e in a.drain()] == [(1, "h", 2)]
        assert [e.values for e in b.drain()] == [(2, "h", 1)]

    def test_different_tau_does_not_dedup(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="t0", tau=0)
        svc.register(star2(), name="t5", tau=5)
        assert len(svc.broker.evaluations) == 2
        # but the Figure-7 plan is cached per shape, across τ
        assert svc.telemetry().get("serve.plan_cache_hits") == 1

    def test_tau_shrink_drops_short_tuples(self):
        svc = TemporalJoinService()
        handle = svc.register(star2(), name="q", tau=4)
        svc.append("R1", (1, "h"), (0, 10))
        svc.append("R2", (2, "h"), (2, 3))  # shorter than τ: never joins
        svc.finish()
        assert len(handle.snapshot()) == 0
        assert svc.telemetry().get("serve.shrink_dropped") == 1


class TestRegistration:
    def test_duplicate_name_rejected(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="q")
        with pytest.raises(QueryError, match="already registered"):
            svc.register(star2(), name="q")

    def test_auto_names_are_unique(self):
        svc = TemporalJoinService()
        names = {svc.register(star2()).name for _ in range(3)}
        assert len(names) == 3

    def test_deregister_last_handle_kills_evaluation(self):
        svc = TemporalJoinService()
        a = svc.register(star2(), name="a")
        svc.register(star2(), name="b")
        svc.deregister(a)
        assert len(svc.broker.evaluations) == 1
        svc.deregister("b")
        assert len(svc.broker.evaluations) == 0
        assert a.closed
        with pytest.raises(QueryError, match="not registered"):
            svc.deregister("b")
        # the schema registry is released with the evaluation
        svc.register(JoinQuery({"R1": ("z",)}), name="c")

    def test_mid_stream_join_of_existing_template_shares_live_state(self):
        svc = TemporalJoinService()
        early = svc.register(star2(), name="early")
        svc.append("R1", (1, "h"), (0, 100))
        svc.append("R2", (2, "h"), (2, 5))
        svc.advance_to(6)  # finalizes (1,h,2) — delivered to early only
        late = svc.register(star2(), name="late")
        assert len(svc.broker.evaluations) == 1  # joined the live operator
        svc.append("R2", (3, "h"), (7, 9))
        svc.finish()
        assert {e.values for e in early.drain()} == {(1, "h", 2), (1, "h", 3)}
        # the late registrant missed the already-delivered result but
        # shares the operator's live state from its registration on
        assert {e.values for e in late.drain()} == {(1, "h", 3)}

    def test_mid_stream_new_template_starts_at_the_watermark(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="early")
        svc.append("R1", (1, "h"), (0, 100))
        # A *distinct* template (different τ) registered mid-stream gets
        # a fresh operator advanced to the current watermark: it never
        # sees pre-registration arrivals.
        late = svc.register(star2(), name="late", tau=2)
        assert len(svc.broker.evaluations) == 2
        svc.append("R2", (2, "h"), (2, 9))
        svc.finish()
        assert {e.values for e in late.drain()} == set()

    def test_plan_for_returns_cached_plan(self):
        svc = TemporalJoinService()
        handle = svc.register(star2(), name="q")
        assert svc.plan_for(handle) is svc.plan_for("q")
        with pytest.raises(QueryError, match="not registered"):
            svc.plan_for("nope")

    def test_invalid_tau_rejected(self):
        svc = TemporalJoinService()
        with pytest.raises(QueryError):
            svc.register(star2(), tau=-1)


class TestBulkIngest:
    def test_workers_validated(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="q")
        with pytest.raises(QueryError, match="workers"):
            svc.ingest_database({}, workers=0)
        with pytest.raises(QueryError, match="mode"):
            svc.ingest_database({}, workers=2, mode="rocket")

    def test_sharded_ingest_requires_fresh_stream(self):
        rng = random.Random(3)
        query = star2()
        db = random_database(query, rng, n=8, domain=3)
        svc = TemporalJoinService()
        svc.register(query, name="q")
        svc.append("R1", (0, 0), (0, 1))
        with pytest.raises(QueryError, match="fresh stream"):
            svc.ingest_database(db, workers=2)

    def test_unfinished_live_ingest_can_continue(self):
        rng = random.Random(5)
        query = star2()
        db = random_database(query, rng, n=8, domain=3, time_span=20)
        svc = TemporalJoinService()
        handle = svc.register(query, name="q")
        svc.ingest_database(db, workers=1, finish=False)
        assert not svc.broker.closed
        svc.advance_to(10_000)
        svc.finish()
        want = temporal_join(query, db)
        assert handle.snapshot().results.normalized() == want.normalized()

    @pytest.mark.parametrize("mode", ["inline", "thread"])
    def test_sharded_matches_offline(self, mode):
        rng = random.Random(11)
        query = star2()
        db = random_database(query, rng, n=20, domain=3, time_span=30)
        svc = TemporalJoinService()
        handle = svc.register(query, name="q")
        svc.ingest_database(db, workers=3, mode=mode)
        assert svc.broker.closed
        want = temporal_join(query, db)
        assert handle.snapshot().results.normalized() == want.normalized()
        stats = svc.telemetry()
        assert stats.get("serve.ingest_passes") == 1
        assert stats.get("serve.shards") == 3

    def test_ingest_after_finish_rejected(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="q")
        svc.finish()
        with pytest.raises(QueryError, match="finish"):
            svc.ingest_database({}, workers=1)


class TestTelemetryAndReports:
    def test_slo_report_lists_every_query(self):
        svc = TemporalJoinService()
        svc.register(star2(), name="alpha")
        svc.register(JoinQuery({"S1": ("a", "b"), "S2": ("b", "c")}), name="beta")
        svc.append("R1", (1, "h"), (0, 10))
        svc.finish()
        report = svc.slo_report()
        assert "alpha" in report and "beta" in report

    def test_broker_usable_standalone(self):
        broker = StreamBroker()
        handle = StandingQuery("q", star2(), 0)
        broker.attach(("k", 0), star2(), 0, handle)
        broker.append("R1", (1, "h"), (0, 10))
        broker.append("R2", (2, "h"), (2, 5))
        broker.finish()
        assert len(handle.drain()) == 1
        assert broker.finish() == 0  # idempotent

    def test_ingest_rate_counters(self):
        rng = random.Random(7)
        query = star2()
        db = random_database(query, rng, n=10, domain=3)
        svc = TemporalJoinService()
        svc.register(query, name="q")
        svc.ingest_database(db, workers=1)
        stats = svc.telemetry()
        n = sum(len(rel) for rel in db.values())
        assert stats.get("serve.appends") == n
        assert stats.get("serve.fanout_inserts") == n
        assert stats.timers.get("phase.serve.ingest", 0) > 0
        assert stats.timers.get("phase.serve.pass", 0) > 0
