"""Tests for the Yannakakis acyclic join algorithm."""

import pytest

from repro.algorithms.naive import naive_join, naive_nontemporal_join
from repro.core.errors import QueryError
from repro.core.hypergraph import Hypergraph
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.nontemporal.yannakakis import yannakakis

from conftest import random_database


class TestBasics:
    def test_rejects_cyclic(self):
        q = JoinQuery.triangle()
        db = {
            n: TemporalRelation(n, q.edge(n), []) for n in q.edge_names
        }
        with pytest.raises(QueryError):
            yannakakis(q.hypergraph, db)

    def test_line2_values_and_intervals(self):
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 10))]),
            "R2": TemporalRelation(
                "R2", ("x2", "x3"), [((2, 3), (5, 20)), ((2, 4), (50, 60))]
            ),
        }
        out = yannakakis(JoinQuery.line(2).hypergraph, db)
        rows = {v: iv for v, iv in out}
        assert rows == {(1, 2, 3): Interval(5, 10)}

    def test_interval_intersection_disabled(self):
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 10))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 4), (50, 60))]),
        }
        out = yannakakis(
            JoinQuery.line(2).hypergraph, db, intersect_intervals=False
        )
        assert out.values_only() == [(1, 2, 4)]

    def test_attr_order_respected(self):
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 10))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (0, 10))]),
        }
        out = yannakakis(
            JoinQuery.line(2).hypergraph, db, attr_order=("x3", "x1", "x2")
        )
        assert out.attrs == ("x3", "x1", "x2")
        assert out.values_only() == [(3, 1, 2)]

    def test_dangling_tuples_removed(self):
        # The full reducer must prevent dead-end exploration.
        db = {
            "R1": TemporalRelation(
                "R1", ("x1", "x2"), [((i, i + 100), (0, 10)) for i in range(50)]
            ),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((100, 7), (0, 10))]),
        }
        out = yannakakis(JoinQuery.line(2).hypergraph, db)
        assert out.values_only() == [(0, 100, 7)]

    def test_empty_relation(self):
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 10))]),
            "R2": TemporalRelation("R2", ("x2", "x3")),
        }
        assert len(yannakakis(JoinQuery.line(2).hypergraph, db)) == 0

    def test_cartesian_components(self):
        hg = Hypergraph({"R1": ("a",), "R2": ("b",)})
        db = {
            "R1": TemporalRelation("R1", ("a",), [((1,), (0, 10)), ((2,), (3, 8))]),
            "R2": TemporalRelation("R2", ("b",), [((9,), (5, 30))]),
        }
        out = yannakakis(hg, db)
        rows = {v: iv for v, iv in out}
        assert rows == {(1, 9): Interval(5, 10), (2, 9): Interval(5, 8)}


class TestRandomizedAgreement:
    @pytest.mark.parametrize(
        "query",
        [JoinQuery.line(3), JoinQuery.line(5), JoinQuery.star(4), JoinQuery.hier()],
    )
    def test_matches_naive_temporal(self, query, rng):
        for _ in range(4):
            db = random_database(query, rng, n=10, domain=3)
            got = yannakakis(query.hypergraph, db, attr_order=query.attrs)
            want = naive_join(query, db)
            assert got.normalized() == want.normalized()

    def test_matches_naive_nontemporal(self, rng):
        query = JoinQuery.line(4)
        for _ in range(3):
            db = random_database(query, rng, n=10, domain=3)
            got = yannakakis(
                query.hypergraph, db, attr_order=query.attrs,
                intersect_intervals=False,
            )
            want = naive_nontemporal_join(query, db)
            assert sorted(got.values_only()) == sorted(want)
