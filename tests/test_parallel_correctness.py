"""Parallel execution must be indistinguishable from serial execution.

The contract under test: for every registered algorithm and every
workload, ``parallel_temporal_join(..., workers=p)`` returns exactly the
serial result set for every shard count — including results whose
intervals straddle shard boundaries, τ > 0, and degenerate partitions.
The merge path performs no deduplication, so any ownership bug shows up
as a duplicated or missing row, not as a silently-repaired result.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algorithms.registry import temporal_join
from repro.core.errors import ReproError
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.obs import ExecutionStats
from repro.parallel import parallel_temporal_join
from repro.workloads.synthetic import SyntheticConfig, generate

from conftest import random_database

ALL_ALGORITHMS = [
    "timefirst", "timefirst-cm", "hybrid", "hybrid-interval",
    "baseline", "joinfirst", "naive",
]

SHARD_COUNTS = (1, 2, 3, 7)


def assert_parallel_matches_serial(query, db, algorithms, shard_counts, taus=(0,)):
    """Serial vs inline-parallel equality over the full cross product."""
    for tau in taus:
        for algorithm in algorithms:
            try:
                want = temporal_join(query, db, tau=tau, algorithm=algorithm)
            except ReproError:
                continue  # structurally inapplicable to this query
            want_n = want.normalized()
            for p in shard_counts:
                got = parallel_temporal_join(
                    query, db, tau=tau, algorithm=algorithm,
                    workers=p, mode="inline",
                )
                assert got.normalized() == want_n, (
                    f"{algorithm} diverges from serial at workers={p}, "
                    f"tau={tau} on {query!r}"
                )


class TestSyntheticWorkload:
    """The paper's synthetic workload (huge intermediates, tiny results)."""

    @given(
        family=st.sampled_from(["line3", "star3", "triangle"]),
        n_dangling=st.integers(min_value=5, max_value=40),
        n_results=st.integers(min_value=0, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
        algorithm=st.sampled_from(["timefirst", "hybrid", "baseline"]),
        tau=st.sampled_from([0, 250]),
    )
    @settings(max_examples=25, deadline=None)
    def test_sharded_equals_serial(
        self, family, n_dangling, n_results, seed, algorithm, tau
    ):
        query = {
            "line3": JoinQuery.line(3),
            "star3": JoinQuery.star(3),
            "triangle": JoinQuery.triangle(),
        }[family]
        config = SyntheticConfig(
            n_dangling=n_dangling, n_results=n_results, seed=seed
        )
        db = generate(query, config)
        assert_parallel_matches_serial(
            query, db, [algorithm], SHARD_COUNTS, taus=(tau,)
        )

    def test_all_algorithms_synthetic_line3(self):
        query = JoinQuery.line(3)
        db = generate(query, SyntheticConfig(n_dangling=25, n_results=8))
        assert_parallel_matches_serial(
            query, db, ALL_ALGORITHMS, (1, 2, 4), taus=(0, 300)
        )


class TestHierarchicalWorkload:
    def test_all_algorithms_hier(self):
        query = JoinQuery.hier()
        db = random_database(query, random.Random(7), n=14, domain=3)
        assert_parallel_matches_serial(
            query, db, ALL_ALGORITHMS, (1, 2, 4), taus=(0, 5)
        )

    def test_r_hierarchical_reduction_per_shard(self):
        # Merely r-hierarchical: triggers the footnote-2 instance
        # reduction inside every shard independently.
        query = JoinQuery({"R1": ("a", "b"), "R2": ("a", "b", "c")})
        db = random_database(query, random.Random(3), n=15, domain=3)
        assert_parallel_matches_serial(
            query, db, ["timefirst", "timefirst-cm"], SHARD_COUNTS, taus=(0, 4)
        )


class TestCyclicWorkload:
    def test_all_algorithms_triangle(self):
        query = JoinQuery.triangle()
        db = random_database(query, random.Random(11), n=15, domain=3)
        assert_parallel_matches_serial(
            query, db, ALL_ALGORITHMS, (1, 2, 4), taus=(0, 6)
        )

    def test_cycle4(self):
        query = JoinQuery.cycle(4)
        db = random_database(query, random.Random(13), n=12, domain=3)
        assert_parallel_matches_serial(
            query, db, ["timefirst", "hybrid", "auto"], (1, 2, 4)
        )


class TestBoundaryStraddling:
    """Results whose intervals cross shard cuts must appear exactly once."""

    def _db(self):
        q = JoinQuery.star(2)
        return q, {
            "R1": TemporalRelation(
                "R1", ("x1", "y"),
                [
                    (("a", "h"), (0, 100)),     # spans every shard
                    (("b", "h"), (0, 49)),      # ends left of the cut
                    (("c", "h"), (50, 60)),     # starts exactly at a cut
                    (("d", "h"), (49, 50)),     # ends exactly at a cut
                ],
            ),
            "R2": TemporalRelation(
                "R2", ("x2", "y"),
                [
                    (("u", "h"), (10, 90)),
                    (("v", "h"), (50, 50)),     # instant exactly at the cut
                    (("w", "h"), (0, 100)),
                ],
            ),
        }

    def test_explicit_cuts_through_result_intervals(self):
        q, db = self._db()
        want = temporal_join(q, db, algorithm="timefirst").normalized()
        for cuts in [(50,), (25, 50, 75), (49, 50, 51), (1, 99)]:
            got = parallel_temporal_join(
                q, db, algorithm="timefirst", workers=len(cuts) + 1,
                mode="inline", cuts=cuts,
            )
            assert got.normalized() == want, f"cuts={cuts}"

    def test_result_ending_exactly_on_cut_owned_by_right_shard(self):
        # Intersection [10, 50] ends exactly at the cut: the ownership
        # rule assigns the half-open range [50, inf) to shard 1, so the
        # result must come from shard 1 and only shard 1.
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "y"), [(("a", "h"), (10, 50))]),
            "R2": TemporalRelation("R2", ("x2", "y"), [(("u", "h"), (0, 100))]),
        }
        stats = ExecutionStats()
        got = parallel_temporal_join(
            q, db, algorithm="timefirst", workers=2, mode="inline",
            cuts=(50,), stats=stats,
        )
        assert got.normalized() == [(("a", "h", "u"), Interval(10, 50))]
        assert stats.get("parallel.shard_results.total") == 1

    def test_unbounded_result_owned_by_last_shard(self):
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation(
                "R1", ("x1", "y"), [(("a", "h"), Interval.always())]
            ),
            "R2": TemporalRelation(
                "R2", ("x2", "y"),
                [(("u", "h"), Interval.always()), (("v", "h"), (0, 10))],
            ),
        }
        want = temporal_join(q, db, algorithm="timefirst").normalized()
        got = parallel_temporal_join(
            q, db, algorithm="timefirst", workers=3, mode="inline", cuts=(3, 7)
        )
        assert got.normalized() == want
        assert len(got) == 2

    def test_tau_with_cut_inside_shrunk_interval(self):
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "y"), [(("a", "h"), (0, 40))]),
            "R2": TemporalRelation("R2", ("x2", "y"), [(("u", "h"), (20, 80))]),
        }
        # Intersection [20, 40], durability 20.
        for tau in (0, 10, 20, 21):
            want = temporal_join(q, db, tau=tau, algorithm="timefirst").normalized()
            got = parallel_temporal_join(
                q, db, tau=tau, algorithm="timefirst", workers=2,
                mode="inline", cuts=(30,),
            )
            assert got.normalized() == want, f"tau={tau}"


class TestProcessMode:
    """Real multiprocessing (spawn) — kept small: interpreters are slow."""

    @pytest.mark.parametrize("algorithm", ["timefirst", "hybrid"])
    def test_process_pool_matches_serial(self, algorithm):
        query = JoinQuery.line(3)
        db = generate(query, SyntheticConfig(n_dangling=30, n_results=8))
        want = temporal_join(query, db, algorithm=algorithm).normalized()
        stats = ExecutionStats()
        got = parallel_temporal_join(
            query, db, algorithm=algorithm, workers=2, mode="process",
            stats=stats,
        )
        assert got.normalized() == want
        assert stats.get("parallel.shards") == 2
        assert stats.get("parallel.workers") == 2

    def test_registry_process_route(self):
        query = JoinQuery.star(3)
        db = generate(query, SyntheticConfig(n_dangling=20, n_results=5))
        want = temporal_join(query, db, algorithm="timefirst").normalized()
        got = temporal_join(query, db, algorithm="timefirst", workers=2)
        assert got.normalized() == want
