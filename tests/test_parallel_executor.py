"""Tests for the parallel executor, merge telemetry, and registry routing."""

import random

import pytest

from repro.algorithms.registry import (
    EXECUTOR_KWARGS,
    explain_analyze,
    strip_unsupported_kwargs,
    temporal_join,
)
from repro.core.errors import QueryError
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.obs import ExecutionStats
from repro.parallel import parallel_temporal_join
from repro.workloads.synthetic import SyntheticConfig, generate

from conftest import random_database


@pytest.fixture
def line3():
    query = JoinQuery.line(3)
    db = generate(query, SyntheticConfig(n_dangling=25, n_results=8))
    return query, db


class TestExecutor:
    def test_workers_one_runs_inline(self, line3):
        query, db = line3
        stats = ExecutionStats()
        got = parallel_temporal_join(
            query, db, algorithm="timefirst", workers=1, stats=stats
        )
        want = temporal_join(query, db, algorithm="timefirst")
        assert got.normalized() == want.normalized()
        assert stats["parallel.shards"] == 1
        assert stats["parallel.replicated"] == 0

    def test_degenerate_endpoints_collapse_shards(self):
        query = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "y"), [(("a", "h"), (5, 5))]),
            "R2": TemporalRelation("R2", ("x2", "y"), [(("u", "h"), (5, 5))]),
        }
        stats = ExecutionStats()
        got = parallel_temporal_join(
            query, db, algorithm="timefirst", workers=4, mode="inline",
            stats=stats,
        )
        assert stats["parallel.shards"] == 1
        assert len(got) == 1

    def test_empty_database(self):
        query = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "y")),
            "R2": TemporalRelation("R2", ("x2", "y")),
        }
        got = parallel_temporal_join(
            query, db, algorithm="timefirst", workers=4, mode="inline"
        )
        assert len(got) == 0

    def test_more_workers_than_tuples(self):
        query = JoinQuery.star(2)
        db = random_database(query, random.Random(1), n=3, domain=2)
        want = temporal_join(query, db, algorithm="timefirst").normalized()
        got = parallel_temporal_join(
            query, db, algorithm="timefirst", workers=16, mode="inline"
        )
        assert got.normalized() == want

    def test_auto_algorithm_resolved_once(self, line3):
        query, db = line3
        want = temporal_join(query, db, algorithm="auto").normalized()
        got = parallel_temporal_join(
            query, db, algorithm="auto", workers=3, mode="inline"
        )
        assert got.normalized() == want

    def test_unknown_mode_rejected(self, line3):
        query, db = line3
        with pytest.raises(QueryError, match="mode"):
            parallel_temporal_join(
                query, db, algorithm="timefirst", workers=2, mode="threads"
            )

    def test_invalid_workers_rejected(self, line3):
        query, db = line3
        with pytest.raises(QueryError, match="workers"):
            parallel_temporal_join(query, db, algorithm="timefirst", workers=0)

    def test_invalid_tau_rejected_before_execution(self, line3):
        query, db = line3
        with pytest.raises(QueryError, match="finite"):
            parallel_temporal_join(
                query, db, tau=float("inf"), algorithm="timefirst", workers=2
            )

    def test_unknown_algorithm_rejected(self, line3):
        query, db = line3
        with pytest.raises(QueryError, match="unknown algorithm"):
            parallel_temporal_join(
                query, db, algorithm="quantum", workers=2, mode="inline"
            )

    def test_algorithm_kwargs_forwarded_to_shards(self, line3):
        query, db = line3
        want = temporal_join(
            query, db, algorithm="baseline", order=("R3", "R2", "R1")
        ).normalized()
        got = parallel_temporal_join(
            query, db, algorithm="baseline", workers=3, mode="inline",
            order=("R3", "R2", "R1"),
        )
        assert got.normalized() == want


class TestTelemetry:
    def test_parallel_counters(self, line3):
        query, db = line3
        stats = ExecutionStats()
        got = parallel_temporal_join(
            query, db, algorithm="timefirst", workers=3, mode="inline",
            stats=stats,
        )
        shards = stats["parallel.shards"]
        assert 1 < shards <= 3
        assert stats["parallel.workers"] == shards
        assert stats["parallel.replicated"] >= 0
        assert stats["parallel.shard_input.count"] == shards
        assert stats["parallel.shard_results.count"] == shards
        # Exactly-once: per-shard owned results sum to the merged total,
        # with no dedup step in between.
        assert stats["parallel.shard_results.total"] == len(got)
        assert stats["parallel.skew_pct_peak"] >= 100
        for i in range(shards):
            assert f"phase.parallel.shard{i:02d}" in stats.timers
        assert "phase.parallel.workers" in stats.timers

    def test_replication_counts_boundary_copies(self):
        query = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation(
                "R1", ("x1", "y"),
                [(("a", "h"), (0, 100)), (("b", "h"), (0, 10))],
            ),
            "R2": TemporalRelation(
                "R2", ("x2", "y"), [(("u", "h"), (90, 100))]
            ),
        }
        stats = ExecutionStats()
        parallel_temporal_join(
            query, db, algorithm="timefirst", workers=2, mode="inline",
            cuts=(50,), stats=stats,
        )
        assert stats["parallel.shards"] == 2
        assert stats["parallel.replicated"] == 1  # only ("a","h") straddles

    def test_algorithm_counters_summed_across_shards(self, line3):
        query, db = line3
        stats = ExecutionStats()
        parallel_temporal_join(
            query, db, algorithm="timefirst", workers=2, mode="inline",
            stats=stats,
        )
        # Each shard sweeps 2 * (its tuples) events; replication makes the
        # sum at least 2N.
        n = query.input_size(db)
        assert stats["sweep.events"] >= 2 * n

    def test_no_stats_no_telemetry_overhead(self, line3):
        query, db = line3
        got = parallel_temporal_join(
            query, db, algorithm="timefirst", workers=2, mode="inline"
        )
        assert len(got) > 0  # and no exception from the stats-free path


class TestRegistryRouting:
    def test_workers_kwarg_routes_to_parallel(self, line3):
        query, db = line3
        stats = ExecutionStats()
        got = temporal_join(
            query, db, algorithm="timefirst", workers=3,
            parallel_mode="inline", stats=stats,
        )
        assert stats.get("parallel.shards", 0) > 1
        want = temporal_join(query, db, algorithm="timefirst")
        assert got.normalized() == want.normalized()

    def test_workers_none_and_one_stay_serial(self, line3):
        query, db = line3
        for workers in (None, 1):
            stats = ExecutionStats()
            temporal_join(
                query, db, algorithm="timefirst", workers=workers, stats=stats
            )
            assert "parallel.shards" not in stats

    def test_workers_zero_rejected(self, line3):
        query, db = line3
        with pytest.raises(QueryError, match="workers"):
            temporal_join(query, db, algorithm="timefirst", workers=0)

    def test_auto_with_workers(self, line3):
        query, db = line3
        want = temporal_join(query, db).normalized()
        got = temporal_join(query, db, workers=2, parallel_mode="inline")
        assert got.normalized() == want

    def test_explain_analyze_with_workers(self, line3):
        query, db = line3
        report = explain_analyze(
            query, db, algorithm="timefirst", workers=2, parallel_mode="inline"
        )
        assert report.stats.get("parallel.shards") == 2
        rendered = report.render()
        assert "parallel.shards" in rendered
        assert "phase.parallel.shard00" in rendered

    def test_strip_keeps_executor_kwargs(self):
        from repro.algorithms.joinfirst import joinfirst_join

        kwargs = {"workers": 4, "parallel_mode": "inline", "order": ("R1",)}
        stripped = strip_unsupported_kwargs(joinfirst_join, kwargs)
        assert stripped == {"workers": 4, "parallel_mode": "inline"}
        # "engine" joined the dispatch-layer kwargs with the kernel
        # substrate, "prepared" with the prepared-columns engine,
        # "predicate" with the Allen-predicate dispatch: algorithms
        # without those paths must have them stripped rather than see
        # them and error.
        assert EXECUTOR_KWARGS == {
            "workers", "parallel_mode", "engine", "prepared", "predicate",
        }

    def test_strip_keeps_engine_kwarg(self):
        from repro.algorithms.joinfirst import joinfirst_join

        stripped = strip_unsupported_kwargs(
            joinfirst_join, {"engine": "kernel", "junk": 1}
        )
        assert stripped == {"engine": "kernel"}
