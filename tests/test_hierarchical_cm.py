"""Tests for the comparison-model §3.2 state (BST + t⁺ heaps)."""

import pytest

from repro.algorithms.hierarchical import HierarchicalState
from repro.algorithms.hierarchical_cm import ComparisonHierarchicalState
from repro.algorithms.naive import naive_join
from repro.algorithms.timefirst import sweep, timefirst_join
from repro.core.errors import QueryError
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.core.result import JoinResultSet

from conftest import random_database


class TestConstruction:
    def test_rejects_non_hierarchical(self):
        with pytest.raises(QueryError):
            ComparisonHierarchicalState(JoinQuery.line(3))

    def test_accepts_hierarchical_families(self):
        for q in [JoinQuery.star(4), JoinQuery.hier(), JoinQuery.line(2)]:
            ComparisonHierarchicalState(q)


class TestHeaps:
    def test_earliest_expiry_tracks_minimum(self):
        q = JoinQuery.star(2)
        state = ComparisonHierarchicalState(q)
        state.insert("R1", (1, "h"), Interval(0, 9))
        state.insert("R1", (2, "h"), Interval(0, 4))
        assert state.earliest_expiry("R1", ("h",)) == 4
        state.delete("R1", (2, "h"), Interval(0, 4))
        assert state.earliest_expiry("R1", ("h",)) == 9
        state.delete("R1", (1, "h"), Interval(0, 9))
        assert state.earliest_expiry("R1", ("h",)) is None

    def test_empty_group(self):
        q = JoinQuery.star(2)
        state = ComparisonHierarchicalState(q)
        assert state.earliest_expiry("R1", ("nope",)) is None


class TestAgreement:
    @pytest.mark.parametrize(
        "query",
        [JoinQuery.star(2), JoinQuery.star(4), JoinQuery.hier(), JoinQuery.line(2)],
    )
    def test_matches_oracle(self, query, rng):
        for _ in range(5):
            db = random_database(query, rng, n=12, domain=3)
            got = sweep(query, db, ComparisonHierarchicalState(query))
            want = naive_join(query, db)
            assert got.normalized() == want.normalized()

    @pytest.mark.parametrize("query", [JoinQuery.star(3), JoinQuery.hier()])
    def test_matches_hashed_state(self, query, rng):
        for _ in range(5):
            db = random_database(query, rng, n=14, domain=3)
            cm = sweep(query, db, ComparisonHierarchicalState(query))
            hashed = sweep(query, db, HierarchicalState(query))
            assert cm.normalized() == hashed.normalized()

    def test_via_state_factory(self, rng):
        q = JoinQuery.star(3)
        db = random_database(q, rng, n=10, domain=3)
        got = timefirst_join(
            q, db,
            state_factory=lambda query, database: ComparisonHierarchicalState(query),
        )
        assert got.normalized() == naive_join(q, db).normalized()

    def test_registered_as_algorithm(self, rng):
        from repro.algorithms.registry import temporal_join

        q = JoinQuery.hier()
        db = random_database(q, rng, n=10, domain=3)
        got = temporal_join(q, db, algorithm="timefirst-cm")
        assert got.normalized() == naive_join(q, db).normalized()

    def test_duplicate_intervals_same_group(self):
        # Several tuples in one group sharing identical intervals stress
        # the multiset semantics of the sorted containers.
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation(
                "R1", ("x1", "y"), [((i, "h"), (0, 10)) for i in range(4)]
            ),
            "R2": TemporalRelation(
                "R2", ("x2", "y"), [((i, "h"), (0, 10)) for i in range(4)]
            ),
        }
        got = sweep(q, db, ComparisonHierarchicalState(q))
        assert len(got) == 16
        assert len(set(got.values_only())) == 16
