"""Tests for ``python -m repro.analysis`` (exit codes, formats, baseline
workflow) plus the acceptance gate: the repo itself lints clean."""

import json
import os

import pytest

from repro.analysis.__main__ import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def bad_tree(tmp_path):
    target = tmp_path / "lib"
    target.mkdir()
    (target / "mod.py").write_text(
        "def f(x):\n    assert x\n    return x\n"
    )
    return target


class TestExitCodes:
    def test_findings_exit_one(self, bad_tree, capsys):
        assert main([str(bad_tree), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "no-bare-assert" in out
        assert "1 finding(s)" in out

    def test_clean_tree_exit_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(x):\n    return x\n")
        assert main([str(tmp_path), "--no-baseline"]) == 0

    def test_missing_path_exit_two(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_unknown_rule_exit_two(self, bad_tree):
        assert main([str(bad_tree), "--select", "no-such-rule"]) == 2

    def test_missing_explicit_baseline_exit_two(self, bad_tree, tmp_path):
        missing = tmp_path / "nothing.json"
        assert main([str(bad_tree), "--baseline", str(missing)]) == 2


class TestOptions:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ["no-bare-assert", "spawn-safety", "determinism",
                        "stats-contract", "paired-tracer-phases",
                        "error-taxonomy", "float-endpoint-equality",
                        "no-mutable-default"]:
            assert rule_id in out

    def test_select_filters_rules(self, bad_tree, capsys):
        assert main([str(bad_tree), "--no-baseline",
                     "--select", "determinism"]) == 0

    def test_json_format(self, bad_tree, capsys):
        assert main([str(bad_tree), "--no-baseline", "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["exit_code"] == 1
        assert data["findings"][0]["rule"] == "no-bare-assert"

    def test_out_writes_report_file(self, bad_tree, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main([str(bad_tree), "--no-baseline", "--format", "json",
                     "--out", str(report_path)])
        assert code == 1
        data = json.loads(report_path.read_text())
        assert data["findings"][0]["rule"] == "no-bare-assert"
        assert "report written to" in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_write_then_gate(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(bad_tree), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert baseline.exists()

        # Grandfathered finding no longer fails the gate...
        assert main([str(bad_tree), "--baseline", str(baseline)]) == 0
        # ...but a fresh finding still does.
        (bad_tree / "new.py").write_text("def g(y):\n    assert y\n")
        assert main([str(bad_tree), "--baseline", str(baseline)]) == 1

    def test_stale_entries_reported(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main([str(bad_tree), "--baseline", str(baseline), "--write-baseline"])
        (bad_tree / "mod.py").write_text("def f(x):\n    return x\n")
        assert main([str(bad_tree), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out


class TestRepoGate:
    """The PR acceptance criterion: the repo lints clean at HEAD."""

    def test_src_is_clean_under_committed_baseline(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_committed_baseline_has_justifications(self):
        path = os.path.join(REPO_ROOT, ".repro-lint-baseline.json")
        data = json.loads(open(path).read())
        assert data["version"] == 1
        for entry in data["entries"]:
            assert len(entry["justification"]) > 20, entry

    def test_committed_baseline_has_no_stale_entries(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        main(["src", "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert data["stale_baseline"] == []

    def test_introducing_bad_fixture_fails_gate(self, monkeypatch, tmp_path):
        """Copy src adding one violation: the gate must flip to red."""
        monkeypatch.chdir(REPO_ROOT)
        bad = tmp_path / "planted.py"
        bad.write_text("def f(x):\n    assert x\n    return x\n")
        assert main(["src", str(bad)]) == 1
