"""Tests for ``python -m repro.analysis`` (exit codes, formats, baseline
workflow) plus the acceptance gate: the repo itself lints clean."""

import json
import os

import pytest

from repro.analysis.__main__ import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def bad_tree(tmp_path):
    target = tmp_path / "lib"
    target.mkdir()
    (target / "mod.py").write_text(
        "def f(x):\n    assert x\n    return x\n"
    )
    return target


class TestExitCodes:
    def test_findings_exit_one(self, bad_tree, capsys):
        assert main([str(bad_tree), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "no-bare-assert" in out
        assert "1 finding(s)" in out

    def test_clean_tree_exit_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(x):\n    return x\n")
        assert main([str(tmp_path), "--no-baseline"]) == 0

    def test_missing_path_exit_two(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_unknown_rule_exit_two(self, bad_tree):
        assert main([str(bad_tree), "--select", "no-such-rule"]) == 2

    def test_missing_explicit_baseline_exit_two(self, bad_tree, tmp_path):
        missing = tmp_path / "nothing.json"
        assert main([str(bad_tree), "--baseline", str(missing)]) == 2


class TestOptions:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ["no-bare-assert", "spawn-safety", "determinism",
                        "stats-contract", "paired-tracer-phases",
                        "error-taxonomy", "float-endpoint-equality",
                        "no-mutable-default",
                        # project-level flow rules ride the same CLI
                        "counter-glossary-drift", "spawn-ships-module-level",
                        "ownership-before-concat", "stats-threading"]:
            assert rule_id in out

    def test_select_filters_rules(self, bad_tree, capsys):
        assert main([str(bad_tree), "--no-baseline",
                     "--select", "determinism"]) == 0

    def test_json_format(self, bad_tree, capsys):
        assert main([str(bad_tree), "--no-baseline", "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["exit_code"] == 1
        assert data["findings"][0]["rule"] == "no-bare-assert"

    def test_out_writes_report_file(self, bad_tree, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main([str(bad_tree), "--no-baseline", "--format", "json",
                     "--out", str(report_path)])
        assert code == 1
        data = json.loads(report_path.read_text())
        assert data["findings"][0]["rule"] == "no-bare-assert"
        assert "report written to" in capsys.readouterr().out


class TestSarifFormat:
    def test_sarif_golden_shape(self, bad_tree, tmp_path):
        sarif_path = tmp_path / "report.sarif"
        code = main([str(bad_tree), "--no-baseline", "--format", "sarif",
                     "--output", str(sarif_path)])
        assert code == 1
        doc = json.loads(sarif_path.read_text())
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert "no-bare-assert" in rule_ids

        result = run["results"][0]
        assert result["ruleId"] == "no-bare-assert"
        assert rule_ids[result["ruleIndex"]] == "no-bare-assert"
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        region = location["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] >= 1

    def test_sarif_clean_tree_has_empty_results(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(x):\n    return x\n")
        assert main([str(tmp_path), "--no-baseline", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestSpanSuppressions:
    """A directive on a statement's first line (or decorator line) covers
    the statement's whole lineno..end_lineno span."""

    def _lint(self, source):
        from repro.analysis.engine import lint_source
        from repro.analysis.rules import default_rules

        return lint_source(source, "lib/mod.py", default_rules())

    def test_directive_on_statement_head_covers_later_lines(self):
        body = (
            "def f(a, b):\n"
            "    return bool(\n"
            "        a.lo ==\n"
            "        b.lo\n"
            "    )\n"
        )
        undirected = self._lint(body)
        assert [f.rule for f in undirected] == ["float-endpoint-equality"]
        assert undirected[0].line == 3  # mid-statement, not the head line

        directed = self._lint(body.replace(
            "    return bool(",
            "    return bool(  # repro-lint: disable=float-endpoint-equality",
        ))
        assert directed == []

    def test_directive_on_decorator_line_covers_def_body(self):
        body = (
            "def deco(fn):\n"
            "    return fn\n"
            "@deco\n"
            "def f(x):\n"
            "    assert x\n"
            "    return x\n"
        )
        undirected = self._lint(body)
        assert [f.rule for f in undirected] == ["no-bare-assert"]

        directed = self._lint(body.replace(
            "@deco\n",
            "@deco  # repro-lint: disable=no-bare-assert\n",
        ))
        assert directed == []

    def test_span_suppression_is_rule_scoped(self):
        body = (
            "def f(a, b):\n"
            "    return bool(  # repro-lint: disable=no-bare-assert\n"
            "        a.lo ==\n"
            "        b.lo\n"
            "    )\n"
        )
        findings = self._lint(body)
        assert [f.rule for f in findings] == ["float-endpoint-equality"]


class TestBaselineWorkflow:
    def test_write_then_gate(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(bad_tree), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert baseline.exists()

        # Grandfathered finding no longer fails the gate...
        assert main([str(bad_tree), "--baseline", str(baseline)]) == 0
        # ...but a fresh finding still does.
        (bad_tree / "new.py").write_text("def g(y):\n    assert y\n")
        assert main([str(bad_tree), "--baseline", str(baseline)]) == 1

    def test_stale_entries_reported(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main([str(bad_tree), "--baseline", str(baseline), "--write-baseline"])
        (bad_tree / "mod.py").write_text("def f(x):\n    return x\n")
        assert main([str(bad_tree), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out


class TestRepoGate:
    """The PR acceptance criterion: the repo lints clean at HEAD."""

    def test_src_is_clean_under_committed_baseline(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_committed_baseline_is_empty(self):
        """PR 8 retired the last grandfathered finding; the baseline must
        only shrink, so an entry reappearing here is a regression."""
        path = os.path.join(REPO_ROOT, ".repro-lint-baseline.json")
        data = json.loads(open(path).read())
        assert data["version"] == 1
        assert data["entries"] == []

    def test_committed_baseline_has_no_stale_entries(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        main(["src", "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert data["stale_baseline"] == []

    def test_warm_gate_reparses_zero_files(self, monkeypatch, tmp_path, capsys):
        """The `make analyze` acceptance criterion: a second run over an
        unchanged tree replays everything from the cache."""
        monkeypatch.chdir(REPO_ROOT)
        cache_dir = tmp_path / "cache"
        assert main(["src", "--cache-dir", str(cache_dir)]) == 0
        cold = capsys.readouterr().out
        assert "0 cached)" in cold
        assert main(["src", "--cache-dir", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert "(0 reparsed" in warm
        assert "0 finding(s)" in warm

    def test_introducing_bad_fixture_fails_gate(self, monkeypatch, tmp_path):
        """Copy src adding one violation: the gate must flip to red."""
        monkeypatch.chdir(REPO_ROOT)
        bad = tmp_path / "planted.py"
        bad.write_text("def f(x):\n    assert x\n    return x\n")
        assert main(["src", str(bad)]) == 1
