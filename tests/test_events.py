"""Tests for the sweep event stream and its tie-breaking rules."""

from repro.algorithms.events import EXPIRE, INSERT, distinct_endpoint_count, event_stream
from repro.core.relation import TemporalRelation


def db_of(rows):
    return {"R": TemporalRelation("R", ("a",), rows)}


class TestEventStream:
    def test_two_events_per_tuple(self):
        events = event_stream(db_of([((1,), (0, 5)), ((2,), (3, 9))]))
        assert len(events) == 4
        kinds = [(e.kind, e.values) for e in events]
        assert kinds.count((INSERT, (1,))) == 1
        assert kinds.count((EXPIRE, (1,))) == 1

    def test_sorted_by_time(self):
        events = event_stream(db_of([((1,), (5, 9)), ((2,), (0, 2))]))
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_insert_before_expire_at_same_time(self):
        # [0,5] expires at 5; [5,9] inserts at 5. Insert must come first so
        # the touching pair joins.
        events = event_stream(db_of([((1,), (0, 5)), ((2,), (5, 9))]))
        at_five = [e for e in events if e.time == 5]
        assert [e.kind for e in at_five] == [INSERT, EXPIRE]
        assert at_five[0].values == (2,)

    def test_instant_interval_orders_insert_first(self):
        events = event_stream(db_of([((1,), (3, 3))]))
        assert [e.kind for e in events] == [INSERT, EXPIRE]

    def test_deterministic_sequence_for_ties(self):
        db = db_of([((1,), (0, 5)), ((2,), (0, 5))])
        a = [(e.kind, e.values) for e in event_stream(db)]
        b = [(e.kind, e.values) for e in event_stream(db)]
        assert a == b

    def test_multi_relation_interleaving(self):
        db = {
            "R1": TemporalRelation("R1", ("a",), [((1,), (0, 10))]),
            "R2": TemporalRelation("R2", ("b",), [((2,), (5, 6))]),
        }
        events = event_stream(db)
        assert [e.relation for e in events] == ["R1", "R2", "R2", "R1"]


class TestEndpointCount:
    def test_distinct_endpoints(self):
        db = db_of([((1,), (0, 5)), ((2,), (0, 5)), ((3,), (5, 9))])
        assert distinct_endpoint_count(db) == 3  # {0, 5, 9}
