"""Lifecycle tests for the persistent plan cache (``repro.core.plancache``),
mirroring the ``.repro-lint-cache`` suite: round-trips across instances,
silent tolerance of corruption, schema/salt invalidation, and a
pickle-inspection proof that entries are plain data — no object rows, no
``Relation`` references, nothing importing ``repro`` at unpickle time."""

import os
import pickle
import pickletools

import pytest

from repro.core.planner import _CACHES, plan
from repro.core.plancache import (
    DEFAULT_CACHE_DIR,
    PlanCache,
    SCHEMA_VERSION,
    cache_key,
    canonical_edge_names,
    decode_entry,
    decode_partition,
    encode_entry,
    encode_partition,
    key_digest,
    plancache_salt,
)
from repro.core.query import JoinQuery
from repro.nontemporal.ghd import fhtw_ghd, hhtw_ghd
from repro.nontemporal.search import clear_search_memo
from repro.obs import ExecutionStats


@pytest.fixture(autouse=True)
def fresh_planner_state():
    clear_search_memo()
    _CACHES.clear()
    yield
    clear_search_memo()
    _CACHES.clear()


def _entry_for(query):
    hg = query.hypergraph
    f, fghd = fhtw_ghd(hg)
    h, hghd = hhtw_ghd(hg)
    return encode_entry(f, fghd, h, hghd, "hybrid", "cyclic")


# ----------------------------------------------------------------------
# Encoding round-trips
# ----------------------------------------------------------------------
class TestEncoding:
    def test_partition_round_trip(self):
        query = JoinQuery.cycle(4)
        hg = query.hypergraph
        _, ghd = fhtw_ghd(hg)
        encoded = encode_partition(ghd)
        rebuilt = decode_partition(hg, encoded)
        assert rebuilt is not None
        assert rebuilt.width() == ghd.width()
        assert {frozenset(g) for g in rebuilt.groups.values()} == {
            frozenset(g) for g in ghd.groups.values()
        }

    def test_decode_rejects_wrong_index_sets(self):
        hg = JoinQuery.triangle().hypergraph
        assert decode_partition(hg, [[0, 1]]) is None  # missing edge 2
        assert decode_partition(hg, [[0, 1, 2, 3]]) is None  # extra index
        assert decode_partition(hg, [[0, 1], [1, 2]]) is None  # duplicate
        assert decode_partition(hg, "nonsense") is None

    def test_entry_round_trip(self):
        query = JoinQuery.cycle(4)
        entry = _entry_for(query)
        decoded = decode_entry(entry, query.hypergraph)
        assert decoded is not None
        f, fghd, h, hghd = decoded
        assert f == entry["fhtw"]
        assert h == entry["hhtw"]
        assert fghd.is_valid()
        assert hghd.is_valid()
        assert hghd.is_hierarchical()

    def test_decode_entry_tolerates_garbage(self):
        hg = JoinQuery.triangle().hypergraph
        assert decode_entry({}, hg) is None
        assert decode_entry({"fhtw": "wide"}, hg) is None
        entry = _entry_for(JoinQuery.triangle())
        stale = dict(entry, fhtw_partition=[[0, 1, 2, 3, 4]])
        assert decode_entry(stale, hg) is None

    def test_key_is_renaming_invariant_and_name_order_free(self):
        base = JoinQuery.cycle(4)
        renamed = JoinQuery(
            {f"Z{i}": base.edge(n) for i, n in enumerate(base.edge_names)}
        )
        assert cache_key(base.hypergraph) == cache_key(renamed.hypergraph)
        assert key_digest(cache_key(base.hypergraph)) == key_digest(
            cache_key(renamed.hypergraph)
        )
        # A different shape keys differently.
        assert cache_key(JoinQuery.triangle().hypergraph) != cache_key(
            base.hypergraph
        )

    def test_canonical_edge_order_ignores_names(self):
        base = JoinQuery.line(3)
        renamed = JoinQuery(
            {f"Z{i}": base.edge(n) for i, n in enumerate(base.edge_names)}
        )
        base_attrs = [
            tuple(sorted(base.hypergraph.edge(n)))
            for n in canonical_edge_names(base.hypergraph)
        ]
        renamed_attrs = [
            tuple(sorted(renamed.hypergraph.edge(n)))
            for n in canonical_edge_names(renamed.hypergraph)
        ]
        assert base_attrs == renamed_attrs

    def test_digest_depends_on_salt(self, monkeypatch):
        key = cache_key(JoinQuery.triangle().hypergraph)
        before = key_digest(key)
        monkeypatch.setattr(
            "repro.core.plancache.plancache_salt", lambda: "other-salt"
        )
        assert key_digest(key) != before


# ----------------------------------------------------------------------
# On-disk lifecycle
# ----------------------------------------------------------------------
class TestCacheLifecycle:
    def test_round_trip_across_instances(self, tmp_path):
        root = str(tmp_path / "plans")
        query = JoinQuery.cycle(4)
        digest = key_digest(cache_key(query.hypergraph))
        first = PlanCache(root)
        assert first.lookup(digest) is None
        first.store(digest, _entry_for(query))
        first.save()
        assert os.path.exists(os.path.join(root, "plans.pkl"))

        second = PlanCache(root)
        assert len(second) == 1
        entry = second.lookup(digest)
        assert entry is not None
        assert decode_entry(entry, query.hypergraph) is not None

    def test_save_without_store_writes_nothing(self, tmp_path):
        root = str(tmp_path / "plans")
        PlanCache(root).save()
        assert not os.path.exists(os.path.join(root, "plans.pkl"))

    def test_corrupt_file_is_a_silent_cold_start(self, tmp_path):
        root = str(tmp_path / "plans")
        cache = PlanCache(root)
        cache.store("d", {"fhtw": 1.0})
        cache.save()
        with open(os.path.join(root, "plans.pkl"), "wb") as handle:
            handle.write(b"{not a pickle")
        assert len(PlanCache(root)) == 0

    def test_schema_bump_invalidates(self, tmp_path):
        root = str(tmp_path / "plans")
        cache = PlanCache(root)
        cache.store("d", {"fhtw": 1.0})
        cache.save()
        path = os.path.join(root, "plans.pkl")
        with open(path, "rb") as handle:
            data = pickle.load(handle)
        data["schema"] = SCHEMA_VERSION + 1
        with open(path, "wb") as handle:
            pickle.dump(data, handle)
        assert len(PlanCache(root)) == 0

    def test_salt_change_invalidates(self, tmp_path):
        root = str(tmp_path / "plans")
        cache = PlanCache(root)
        cache.store("d", {"fhtw": 1.0})
        cache.save()
        path = os.path.join(root, "plans.pkl")
        with open(path, "rb") as handle:
            data = pickle.load(handle)
        assert data["salt"] == plancache_salt()
        data["salt"] = "schema=0|py=0.0"
        with open(path, "wb") as handle:
            pickle.dump(data, handle)
        assert len(PlanCache(root)) == 0

    def test_default_root_is_repro_plan_cache(self):
        assert DEFAULT_CACHE_DIR == ".repro-plan-cache"
        assert PlanCache().root == DEFAULT_CACHE_DIR


# ----------------------------------------------------------------------
# Payload hygiene: plain data only, provably
# ----------------------------------------------------------------------
class TestPayloadHygiene:
    def test_pickle_contains_no_object_references(self, tmp_path):
        # The contract the module docstring makes: unpickling a plan
        # cache must never import repro, reconstruct a Relation, or
        # carry tuple rows. GLOBAL/STACK_GLOBAL opcodes are how pickle
        # references classes — a plain-data payload has none at all.
        root = str(tmp_path / "plans")
        query = JoinQuery.cycle(4)
        cache = PlanCache(root)
        cache.store(key_digest(cache_key(query.hypergraph)), _entry_for(query))
        cache.save()
        raw = open(os.path.join(root, "plans.pkl"), "rb").read()
        assert b"repro" not in raw
        assert b"Relation" not in raw
        assert b"GHD" not in raw
        for opcode, _, _ in pickletools.genops(raw):
            assert opcode.name not in (
                "GLOBAL",
                "STACK_GLOBAL",
                "REDUCE",
                "BUILD",
                "INST",
                "OBJ",
                "NEWOBJ",
                "NEWOBJ_EX",
            )

    def test_entry_values_are_builtin_types(self):
        entry = _entry_for(JoinQuery.bowtie())
        assert set(entry) == {
            "fhtw",
            "fhtw_partition",
            "hhtw",
            "hhtw_partition",
            "algorithm",
            "query_class",
        }
        assert isinstance(entry["fhtw"], float)
        assert isinstance(entry["hhtw"], float)
        assert isinstance(entry["algorithm"], str)
        assert isinstance(entry["query_class"], str)
        for partition in (entry["fhtw_partition"], entry["hhtw_partition"]):
            assert isinstance(partition, list)
            for group in partition:
                assert isinstance(group, list)
                assert all(isinstance(i, int) for i in group)


# ----------------------------------------------------------------------
# Through the planner: the acceptance pins
# ----------------------------------------------------------------------
class TestPlannerIntegration:
    def test_warm_plan_performs_zero_search_nodes(self, tmp_path):
        # The headline acceptance pin: after one cold plan(), a second
        # process (simulated by clearing the in-memory memo and the
        # cache singleton) answers entirely from disk.
        root = str(tmp_path / "plans")
        query = JoinQuery.cycle(4)

        cold = ExecutionStats()
        before = plan(query, cache=root, stats=cold)
        assert cold.get("planner.cache_misses") == 1
        assert cold.get("planner.search_nodes") > 0

        clear_search_memo()
        _CACHES.clear()
        warm = ExecutionStats()
        after = plan(query, cache=root, stats=warm)
        assert warm.get("planner.cache_hits") == 1
        assert warm.get("planner.cache_misses") == 0
        assert warm.get("planner.search_nodes") == 0
        assert "phase.planner.search" not in warm.timers

        assert after.fhtw == before.fhtw
        assert after.hhtw == before.hhtw
        assert after.algorithm == before.algorithm
        assert after.exponent == before.exponent
        assert after.optimal
        assert after.fhtw_witness.is_valid()
        assert after.hhtw_witness.is_hierarchical()

    def test_plan_cache_object_can_be_passed_directly(self, tmp_path):
        cache = PlanCache(str(tmp_path / "plans"))
        query = JoinQuery.triangle()
        plan(query, cache=cache)
        assert len(cache) == 1
        clear_search_memo()
        stats = ExecutionStats()
        plan(query, cache=cache, stats=stats)
        assert stats.get("planner.cache_hits") == 1

    def test_env_var_configures_the_cache(self, tmp_path, monkeypatch):
        root = str(tmp_path / "plans")
        monkeypatch.setenv("REPRO_PLAN_CACHE", root)
        stats = ExecutionStats()
        plan(JoinQuery.cycle(4), stats=stats)
        assert stats.get("planner.cache_misses") == 1
        assert os.path.exists(os.path.join(root, "plans.pkl"))

    def test_non_optimal_plans_are_not_persisted(self, tmp_path):
        cache = PlanCache(str(tmp_path / "plans"))
        degraded = plan(JoinQuery.cycle(4), budget=1, cache=cache)
        assert degraded.optimal is False
        assert len(cache) == 0
        # A later unbudgeted plan stores the proven-optimal entry.
        clear_search_memo()
        full = plan(JoinQuery.cycle(4), cache=cache)
        assert full.optimal
        assert len(cache) == 1

    def test_corrupted_entry_degrades_to_research(self, tmp_path):
        root = str(tmp_path / "plans")
        query = JoinQuery.cycle(4)
        plan(query, cache=root)
        _CACHES.clear()
        clear_search_memo()
        # Poison the stored partition in place: lookup succeeds but
        # decode fails, so the planner silently re-searches and the
        # stats record a miss, not a hit.
        cache = PlanCache(root)
        digest = key_digest(cache_key(query.hypergraph))
        entry = dict(cache.lookup(digest))
        entry["fhtw_partition"] = [[99]]
        cache.store(digest, entry)
        stats = ExecutionStats()
        repaired = plan(query, cache=cache, stats=stats)
        assert stats.get("planner.cache_hits") == 0
        assert stats.get("planner.cache_misses") == 1
        assert repaired.optimal
        assert decode_entry(cache.lookup(digest), query.hypergraph) is not None
