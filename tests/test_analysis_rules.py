"""Self-tests for every repro-lint rule: one good and one bad fixture each,
plus suppression, baseline and engine-level behavior."""

import textwrap

import pytest

from repro.analysis.engine import Baseline, BaselineEntry, lint_source, run_lint
from repro.analysis.rules import default_rules


def findings_for(source, logical, rule_id=None):
    out = lint_source(textwrap.dedent(source), logical, default_rules())
    if rule_id is not None:
        out = [f for f in out if f.rule == rule_id]
    return out


ALG = "src/repro/algorithms/fixture.py"
CORE = "src/repro/core/fixture.py"
REGISTRY = "src/repro/algorithms/registry.py"


class TestNoBareAssert:
    def test_bad(self):
        src = """
        def f(x):
            assert x is not None
            return x
        """
        found = findings_for(src, ALG, "no-bare-assert")
        assert len(found) == 1
        assert found[0].line == 3

    def test_good(self):
        src = """
        from repro.core.errors import InvariantError

        def f(x):
            if x is None:
                raise InvariantError("x must be set")
            return x
        """
        assert findings_for(src, ALG, "no-bare-assert") == []


class TestNoMutableDefault:
    def test_bad(self):
        src = """
        def f(x, acc=[], opts={}):
            return acc, opts
        """
        assert len(findings_for(src, ALG, "no-mutable-default")) == 2

    def test_bad_kwonly_and_call(self):
        src = """
        def f(x, *, seen=set()):
            return seen
        """
        assert len(findings_for(src, ALG, "no-mutable-default")) == 1

    def test_good(self):
        src = """
        def f(x, acc=None, pair=(), label=""):
            if acc is None:
                acc = []
            return acc
        """
        assert findings_for(src, ALG, "no-mutable-default") == []


class TestFloatEndpointEquality:
    def test_bad(self):
        src = """
        def clip(iv, t):
            if iv.lo == t or t != iv.hi:
                return None
            return iv
        """
        assert len(findings_for(src, ALG, "float-endpoint-equality")) == 2

    def test_good_ordered_comparisons(self):
        src = """
        def contains(iv, t):
            return iv.lo <= t <= iv.hi
        """
        assert findings_for(src, ALG, "float-endpoint-equality") == []

    def test_infinity_sentinel_allowed(self):
        src = """
        import math

        def unbounded(iv):
            return iv.hi == math.inf or iv.lo == -math.inf
        """
        assert findings_for(src, ALG, "float-endpoint-equality") == []

    def test_exempt_inside_interval_module(self):
        src = """
        def same(a, b):
            return a.lo == b.lo and a.hi == b.hi
        """
        assert findings_for(src, "src/repro/core/interval.py",
                            "float-endpoint-equality") == []


class TestErrorTaxonomy:
    def test_bad(self):
        src = """
        def f():
            raise ValueError("bad input")
        """
        assert len(findings_for(src, CORE, "error-taxonomy")) == 1

    def test_bad_assertion_error(self):
        src = """
        def f():
            raise AssertionError("broken")
        """
        assert len(findings_for(src, CORE, "error-taxonomy")) == 1

    def test_good(self):
        src = """
        from repro.core.errors import QueryError

        def f():
            raise QueryError("bad query")
        """
        assert findings_for(src, CORE, "error-taxonomy") == []

    def test_out_of_scope_path_not_flagged(self):
        src = """
        def f():
            raise ValueError("workloads may use stdlib errors")
        """
        assert findings_for(src, "src/repro/workloads/fixture.py",
                            "error-taxonomy") == []

    def test_reraise_without_exc_ignored(self):
        src = """
        def f():
            try:
                g()
            except KeyError:
                raise
        """
        assert findings_for(src, CORE, "error-taxonomy") == []


class TestDeterminism:
    def test_bad_for_loop(self):
        src = """
        def emit(xs, out):
            for v in set(xs):
                out.append(v)
        """
        assert len(findings_for(src, ALG, "determinism")) == 1

    def test_bad_comprehension_and_set_algebra(self):
        src = """
        def emit(a, b):
            return [v for v in set(a) | set(b)]
        """
        assert len(findings_for(src, "src/repro/parallel/merge.py",
                                "determinism")) == 1

    def test_good_sorted(self):
        src = """
        def emit(xs, out):
            for v in sorted(set(xs)):
                out.append(v)
        """
        assert findings_for(src, ALG, "determinism") == []

    def test_out_of_scope_path_not_flagged(self):
        src = """
        def emit(xs):
            return [v for v in set(xs)]
        """
        assert findings_for(src, "src/repro/parallel/partition.py",
                            "determinism") == []


class TestSpawnSafety:
    def test_bad_lambda(self):
        src = """
        def fan_out(pool, items):
            return pool.map(lambda x: x + 1, items)
        """
        assert len(findings_for(src, "src/repro/parallel/executor.py",
                                "spawn-safety")) == 1

    def test_bad_nested_function(self):
        src = """
        def fan_out(executor, tasks):
            def work(task):
                return task.run()
            return [executor.submit(work, t) for t in tasks]
        """
        assert len(findings_for(src, "src/repro/parallel/executor.py",
                                "spawn-safety")) == 1

    def test_good_module_level_payload(self):
        src = """
        def work(task):
            return task.run()

        def fan_out(pool, tasks):
            return pool.map(work, tasks, chunksize=1)
        """
        assert findings_for(src, "src/repro/parallel/executor.py",
                            "spawn-safety") == []

    def test_non_pool_receiver_ignored(self):
        src = """
        def apply(seq):
            return seq.map(lambda x: x + 1)
        """
        assert findings_for(src, "src/repro/parallel/executor.py",
                            "spawn-safety") == []


class TestPairedTracerPhases:
    def test_bad_bare_call(self):
        src = """
        def run(stats):
            t = stats.timer("phase.sweep")
            do_work()
        """
        assert len(findings_for(src, ALG, "paired-tracer-phases")) == 1

    def test_good_with_statement(self):
        src = """
        def run(stats):
            with stats.timer("phase.sweep"):
                do_work()
        """
        assert findings_for(src, ALG, "paired-tracer-phases") == []


class TestStatsContract:
    def test_bad_missing_stats(self):
        src = """
        _REGISTRY = {}
        EXECUTOR_KWARGS = frozenset({"workers", "parallel_mode"})

        def myalg(query, database, tau=0):
            return None

        _REGISTRY.setdefault("myalg", myalg)
        """
        found = findings_for(src, REGISTRY, "stats-contract")
        assert len(found) == 1
        assert "stats=" in found[0].message

    def test_bad_shadowed_executor_kwarg(self):
        src = """
        _REGISTRY = {}
        EXECUTOR_KWARGS = frozenset({"workers", "parallel_mode"})

        def myalg(query, database, tau=0, stats=None, workers=None):
            return None

        _REGISTRY.setdefault("myalg", myalg)
        """
        found = findings_for(src, REGISTRY, "stats-contract")
        assert len(found) == 1
        assert "workers" in found[0].message

    def test_good(self):
        src = """
        _REGISTRY = {}
        EXECUTOR_KWARGS = frozenset({"workers", "parallel_mode"})

        def myalg(query, database, tau=0, stats=None, **kwargs):
            return None

        _REGISTRY.setdefault("myalg", myalg)
        _REGISTRY["other"] = myalg
        """
        assert findings_for(src, REGISTRY, "stats-contract") == []

    def test_out_of_scope_path_not_flagged(self):
        src = """
        _REGISTRY = {}

        def myalg(query, database):
            return None

        _REGISTRY.setdefault("myalg", myalg)
        """
        assert findings_for(src, ALG, "stats-contract") == []

    def test_cross_file_import_resolution(self, tmp_path):
        pkg = tmp_path / "algorithms"
        pkg.mkdir()
        (pkg / "other.py").write_text(
            "def alg(query, database, tau=0):\n    return None\n"
        )
        (pkg / "registry.py").write_text(
            "from .other import alg\n"
            "_REGISTRY = {}\n"
            '_REGISTRY.setdefault("alg", alg)\n'
        )
        report = run_lint([str(pkg)], rules=default_rules())
        contract = [f for f in report.findings if f.rule == "stats-contract"]
        assert len(contract) == 1
        assert "other.py" in contract[0].message


class TestKernelNoObjectRows:
    KERNEL = "src/repro/kernels/fixture.py"

    def test_rows_access_in_loop_flagged(self):
        src = """
        def sweep(relation):
            total = 0
            for values, interval in relation.rows:
                total += 1
            return total
        """
        found = findings_for(src, self.KERNEL, "kernel-no-object-rows")
        assert len(found) == 1
        assert ".rows" in found[0].message

    def test_private_rows_and_comprehensions_flagged(self):
        src = """
        def collect(relation):
            return [v for v, _ in relation._rows]
        """
        assert len(findings_for(
            src, self.KERNEL, "kernel-no-object-rows")) == 1

    def test_event_stream_call_flagged_anywhere(self):
        src = """
        from repro.algorithms.events import event_stream

        def build(db):
            return list(event_stream(db))
        """
        found = findings_for(src, self.KERNEL, "kernel-no-object-rows")
        assert len(found) == 1
        assert "event_stream" in found[0].message

    def test_rows_outside_loop_allowed(self):
        # One-shot (non-loop) access, e.g. sizing, is not a hot loop.
        src = """
        def size(relation):
            return len(relation.rows)
        """
        assert findings_for(src, self.KERNEL, "kernel-no-object-rows") == []

    def test_columns_module_exempt(self):
        src = """
        def intern(db):
            out = []
            for name in db:
                for values, interval in db[name].rows:
                    out.append(values)
            return out
        """
        assert findings_for(
            src, "src/repro/kernels/columns.py", "kernel-no-object-rows"
        ) == []

    def test_rule_scoped_to_kernels_dir(self):
        src = """
        def f(relation):
            for row in relation.rows:
                pass
        """
        assert findings_for(src, ALG, "kernel-no-object-rows") == []

    def test_real_kernels_package_is_clean(self):
        report = run_lint(["src/repro/kernels"], rules=default_rules())
        assert [f for f in report.findings
                if f.rule == "kernel-no-object-rows"] == []


class TestEngineBehavior:
    def test_inline_suppression(self):
        src = """
        def f(x):
            assert x  # repro-lint: disable=no-bare-assert
            return x
        """
        assert findings_for(src, ALG, "no-bare-assert") == []

    def test_file_level_suppression(self):
        src = """
        # repro-lint: disable-file=no-bare-assert

        def f(x):
            assert x
            return x
        """
        assert findings_for(src, ALG, "no-bare-assert") == []

    def test_suppression_is_rule_specific(self):
        src = """
        def f(x):
            assert x  # repro-lint: disable=determinism
            return x
        """
        assert len(findings_for(src, ALG, "no-bare-assert")) == 1

    def test_syntax_error_becomes_finding(self):
        found = findings_for("def f(:\n", ALG)
        assert [f.rule for f in found] == ["syntax-error"]

    def test_baseline_subtracts_and_reports_stale(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(x):\n    assert x\n    return x\n")
        report = run_lint([str(tmp_path)], rules=default_rules())
        assert [f.rule for f in report.findings] == ["no-bare-assert"]

        baseline = Baseline.from_findings(report.findings, justification="seed")
        baseline.entries.append(
            BaselineEntry(rule="determinism", path="gone.py", line=1,
                          justification="stale")
        )
        report2 = run_lint([str(tmp_path)], rules=default_rules(),
                           baseline=baseline)
        assert report2.findings == []
        assert [f.rule for f in report2.baselined] == ["no-bare-assert"]
        assert [e.path for e in report2.stale_baseline] == ["gone.py"]
        assert report2.exit_code == 0

    def test_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline([BaselineEntry("no-bare-assert", "a/b.py", 7, "why")])
        baseline.save(str(path))
        loaded = Baseline.load(str(path))
        assert loaded.fingerprints() == {("no-bare-assert", "a/b.py", 7)}
        assert loaded.entries[0].justification == "why"

    def test_every_rule_has_identity(self):
        rules = default_rules()
        assert len(rules) == 9
        assert len({r.id for r in rules}) == 9
        for rule in rules:
            assert rule.description and rule.hint and rule.severity == "error"
