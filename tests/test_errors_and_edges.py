"""Edge-case and error-path coverage across the library surface."""

import pytest

from repro.core.errors import (
    IntervalError,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [SchemaError, QueryError, PlanError, IntervalError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestDuplicateTupleGuard:
    def test_hierarchical_sweep_rejects_duplicates(self):
        from repro.algorithms.registry import temporal_join

        q = JoinQuery.star(2)
        dup = TemporalRelation(
            "R1", ("x1", "y"),
            [((1, "h"), (0, 5)), ((1, "h"), (1, 9))],
            check_distinct=False,
        )
        db = {
            "R1": dup,
            "R2": TemporalRelation("R2", ("x2", "y"), [((2, "h"), (0, 9))]),
        }
        with pytest.raises(QueryError):
            temporal_join(q, db, algorithm="timefirst")


class TestSingleRelationQueries:
    """m = 1 degenerates every algorithm to a scan — all must cope."""

    @pytest.mark.parametrize(
        "algorithm", ["timefirst", "baseline", "hybrid", "joinfirst", "naive", "auto"]
    )
    def test_single_relation(self, algorithm):
        from repro.algorithms.registry import temporal_join

        q = JoinQuery({"R": ("a", "b")})
        db = {
            "R": TemporalRelation(
                "R", ("a", "b"), [((1, 2), (0, 5)), ((3, 4), (2, 9))]
            )
        }
        out = temporal_join(q, db, algorithm=algorithm)
        assert sorted(out.values_only()) == [(1, 2), (3, 4)]

    def test_single_relation_durable(self):
        from repro.algorithms.registry import temporal_join

        q = JoinQuery({"R": ("a",)})
        db = {
            "R": TemporalRelation("R", ("a",), [((1,), (0, 3)), ((2,), (0, 9))])
        }
        out = temporal_join(q, db, tau=5)
        assert out.values_only() == [(2,)]
        assert out.rows[0][1] == Interval(0, 9)


class TestUnaryEverything:
    """All-unary queries (set intersections with intervals)."""

    @pytest.mark.parametrize(
        "algorithm", ["timefirst", "baseline", "hybrid", "joinfirst"]
    )
    def test_three_unary_relations(self, algorithm):
        from repro.algorithms.naive import naive_join
        from repro.algorithms.registry import temporal_join

        q = JoinQuery({"R1": ("a",), "R2": ("a",), "R3": ("a",)})
        db = {
            "R1": TemporalRelation("R1", ("a",), [((1,), (0, 9)), ((2,), (0, 9))]),
            "R2": TemporalRelation("R2", ("a",), [((1,), (3, 20)), ((3,), (0, 9))]),
            "R3": TemporalRelation("R3", ("a",), [((1,), (5, 7))]),
        }
        got = temporal_join(q, db, algorithm=algorithm)
        assert got.normalized() == naive_join(q, db).normalized()
        assert got.rows == [((1,), Interval(5, 7))]


class TestHarnessValidation:
    def test_compare_flags_result_mismatch(self, monkeypatch, rng):
        from conftest import random_database
        from repro.algorithms import registry
        from repro.bench.harness import compare_algorithms
        from repro.core.result import JoinResultSet

        q = JoinQuery.line(2)
        db = random_database(q, rng, n=10, domain=2, time_span=10)

        def broken(query, database, tau=0, **kwargs):
            out = JoinResultSet(query.attrs)
            out.append(tuple("?" for _ in query.attrs), Interval(0, 1))
            return out

        registry._ensure_loaded()
        monkeypatch.setitem(registry._REGISTRY, "broken", broken)
        ms = compare_algorithms(
            ["timefirst", "broken"], q, db, measure_memory=False, validate=True
        )
        by = {m.algorithm: m for m in ms}
        assert by["timefirst"].ok
        assert not by["broken"].ok
        assert "MISMATCH" in by["broken"].note

    def test_measure_repeat_takes_min(self, rng):
        from conftest import random_database
        from repro.bench.harness import measure

        q = JoinQuery.line(2)
        db = random_database(q, rng, n=10, domain=3)
        m1 = measure("timefirst", q, db, measure_memory=False, repeat=1)
        m3 = measure("timefirst", q, db, measure_memory=False, repeat=3)
        assert m3.seconds <= m1.seconds * 3  # sanity; min-of-3 is stable


class TestIntervalTreeUnbounded:
    def test_static_tree_with_infinite_endpoints(self):
        from repro.datastructures.interval_tree import StaticIntervalTree

        items = [
            (Interval.always(), "always"),
            (Interval(0, 5), "short"),
            (Interval(3, float("inf")), "open-ended"),
        ]
        tree = StaticIntervalTree(items)
        hits = {p for _, p in tree.stab(4)}
        assert hits == {"always", "short", "open-ended"}
        hits = {p for _, p in tree.overlapping(Interval(100, 200))}
        assert hits == {"always", "open-ended"}

    def test_dynamic_index_with_infinite_endpoints(self):
        from repro.datastructures.interval_tree import DynamicIntervalIndex

        idx = DynamicIntervalIndex()
        idx.insert(Interval.always(), "always")
        idx.insert(Interval(0, 5), "short")
        hits = {p for _, p in idx.overlapping(Interval(50, 60))}
        assert hits == {"always"}
