"""Counter-exactness tests for explain_analyze and stats threading.

A hand-checked two-relation instance pins exact values for the
load-bearing counters of every registered algorithm:

    R(a, b): (a1, b1, [0, 10]), (a2, b1, [5, 15]), (a3, b2, [0, 3])
    S(b, c): (b1, c1, [2, 12]), (b2, c2, [20, 30])

N = 5 tuples. The join R ⋈ S has exactly two results:
(a1, b1, c1, [2, 10]) and (a2, b1, c1, [5, 12]) — (a3, b2) matches
(b2, c2) on value but the intervals [0, 3] and [20, 30] are disjoint.
"""

import pytest

from repro import ExecutionStats, explain_analyze, temporal_join
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation

N = 5  # total input tuples
K = 2  # join results


@pytest.fixture()
def instance():
    query = JoinQuery({"R": ("a", "b"), "S": ("b", "c")})
    db = {
        "R": TemporalRelation(
            "R", ("a", "b"),
            [(("a1", "b1"), (0, 10)), (("a2", "b1"), (5, 15)),
             (("a3", "b2"), (0, 3))],
        ),
        "S": TemporalRelation(
            "S", ("b", "c"),
            [(("b1", "c1"), (2, 12)), (("b2", "c2"), (20, 30))],
        ),
    }
    return query, db


def run(instance, algorithm):
    query, db = instance
    report = explain_analyze(query, db, algorithm=algorithm)
    assert report.algorithm == algorithm
    assert len(report.result) == K
    assert report.stats["results"] == K
    assert report.input_size == N
    assert report.seconds >= 0
    return report.stats


class TestCounterExactness:
    def test_timefirst(self, instance):
        stats = run(instance, "timefirst")
        # One event per endpoint of every input interval.
        assert stats["sweep.events"] == 2 * N
        assert stats["sweep.inserts"] == N
        # ENUMERATE fires once per expiring tuple (Algorithm 1, line 6).
        assert stats["sweep.enumerate_calls"] == N
        # At t=5: (a1,b1), (a2,b1), (b1,c1) are simultaneously active.
        assert stats["sweep.active_peak"] == 3
        assert stats["hier.inserts"] == N
        assert stats["hier.deletes"] == N

    def test_timefirst_cm(self, instance):
        stats = run(instance, "timefirst-cm")
        assert stats["sweep.events"] == 2 * N
        assert stats["sweep.active_peak"] == 3
        assert stats["cm.heap_pushes"] == N
        assert stats["cm.heap_removes"] == N

    def test_hybrid(self, instance):
        stats = run(instance, "hybrid")
        # Sweep runs over the materialized bags; this query's GHD has
        # bags covering all N rows.
        assert stats["hybrid.bags"] >= 1
        assert stats["hybrid.bag_rows.total"] == N
        assert stats["sweep.events"] == 2 * N

    def test_hybrid_interval(self, instance):
        stats = run(instance, "hybrid-interval")
        # Core join over J = {b}: b1 and b2 both survive the value join.
        assert stats["hi.core_tuples"] == 2
        # Every core tuple resolves through the two-group interval join.
        assert stats["hi.interval_joins"] == 2
        # b1 scans 2 R-rows + 1 S-row; b2 scans 1 + 1 (clipping keeps
        # all rows here since each group is checked against the core
        # interval, which is always() for a coreless J).
        assert stats["ij.scan.total"] == 5
        assert stats["ij.pairs.total"] == K

    def test_baseline(self, instance):
        stats = run(instance, "baseline")
        # Two relations: exactly one binary join, materializing K rows.
        assert stats["bin.joins"] == 1
        assert stats["bin.intermediate_rows.total"] == K
        assert stats["bin.intermediate_rows.max"] == K

    def test_joinfirst(self, instance):
        stats = run(instance, "joinfirst")
        # Value-only matches: 2 on b1 + 1 on b2.
        assert stats["jf.matches"] == 3
        # The b2 match dies on the interval filter.
        assert stats["jf.survivors"] == K

    def test_naive(self, instance):
        stats = run(instance, "naive")
        # 3 R-tuples at depth 0, then 2 S-tuples for each of the 3
        # partial bindings that survive to depth 1.
        assert stats["naive.candidates"] == 3 + 3 * 2


class TestExplainAnalyzeApi:
    def test_auto_runs_planner_choice(self, instance):
        query, db = instance
        report = explain_analyze(query, db)
        assert report.algorithm in ("timefirst", "hybrid", "hybrid-interval")
        assert len(report.result) == K
        assert "algorithm" in report.plan_explanation

    def test_render_contains_plan_and_counters(self, instance):
        query, db = instance
        report = explain_analyze(query, db, algorithm="timefirst")
        text = report.render()
        assert "-- plan" in text
        assert "-- execution" in text
        assert "-- counters" in text
        assert "sweep.events" in text
        assert "wall time" in text

    def test_forced_algorithm_noted_when_differs(self, instance):
        query, db = instance
        report = explain_analyze(query, db, algorithm="baseline")
        assert "forced" in report.plan_explanation

    def test_caller_supplied_stats_accumulates(self, instance):
        query, db = instance
        stats = ExecutionStats()
        explain_analyze(query, db, algorithm="timefirst", stats=stats)
        explain_analyze(query, db, algorithm="timefirst", stats=stats)
        assert stats["sweep.events"] == 4 * N

    def test_timers_recorded(self, instance):
        query, db = instance
        report = explain_analyze(query, db, algorithm="timefirst")
        assert "phase.sweep" in report.stats.timers


class TestStatsThreading:
    """temporal_join(..., stats=...) fills counters; stats=None (the
    default) must leave the algorithms' uninstrumented path in use."""

    @pytest.mark.parametrize(
        "algorithm",
        ["timefirst", "timefirst-cm", "hybrid", "hybrid-interval",
         "baseline", "joinfirst", "naive"],
    )
    def test_every_algorithm_fills_stats(self, instance, algorithm):
        query, db = instance
        stats = ExecutionStats()
        out = temporal_join(query, db, algorithm=algorithm, stats=stats)
        assert len(out) == K
        assert stats["results"] == K
        assert stats.counters  # something beyond results was recorded

    @pytest.mark.parametrize(
        "algorithm",
        ["timefirst", "timefirst-cm", "hybrid", "hybrid-interval",
         "baseline", "joinfirst", "naive"],
    )
    def test_stats_do_not_change_results(self, instance, algorithm):
        query, db = instance
        plain = temporal_join(query, db, algorithm=algorithm)
        traced = temporal_join(
            query, db, algorithm=algorithm, stats=ExecutionStats()
        )
        assert plain.normalized() == traced.normalized()

    def test_results_never_double_counted(self, instance):
        # HYBRID delegates emission to the sweep; HYBRID-INTERVAL's
        # recursive TIMEFIRST residuals run without stats. Either way
        # `results` must equal K exactly, not a multiple of it.
        query, db = instance
        for algorithm in ("hybrid", "hybrid-interval"):
            stats = ExecutionStats()
            temporal_join(query, db, algorithm=algorithm, stats=stats)
            assert stats["results"] == K
