"""Tests for the algorithm registry and the temporal_join entry point."""

import pytest

from repro.algorithms.registry import available_algorithms, get_algorithm, temporal_join
from repro.core.errors import QueryError
from repro.core.query import JoinQuery

from conftest import random_database


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = available_algorithms()
        for expected in [
            "timefirst",
            "hybrid",
            "hybrid-interval",
            "baseline",
            "joinfirst",
            "naive",
        ]:
            assert expected in names

    def test_get_algorithm(self):
        fn = get_algorithm("timefirst")
        assert callable(fn)

    def test_unknown_algorithm(self):
        with pytest.raises(QueryError):
            get_algorithm("quantum")


class TestTemporalJoinDispatch:
    def test_auto_matches_explicit(self, rng):
        for query in [JoinQuery.line(3), JoinQuery.star(3), JoinQuery.cycle(4)]:
            db = random_database(query, rng, n=10, domain=3)
            auto = temporal_join(query, db, algorithm="auto")
            naive = temporal_join(query, db, algorithm="naive")
            assert auto.normalized() == naive.normalized()

    def test_unknown_algorithm_raises(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng)
        with pytest.raises(QueryError):
            temporal_join(q, db, algorithm="quantum")

    def test_kwargs_forwarded(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=8, domain=3)
        out = temporal_join(q, db, algorithm="baseline", order=["R2", "R1", "R3"])
        assert out.normalized() == temporal_join(q, db, algorithm="naive").normalized()

    def test_tau_kwarg(self, rng):
        q = JoinQuery.star(3)
        db = random_database(q, rng, n=10, domain=3)
        full = temporal_join(q, db)
        durable = temporal_join(q, db, tau=5)
        assert len(durable) <= len(full)
        assert durable.normalized() == full.filter_durable(5).normalized()
