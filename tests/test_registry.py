"""Tests for the algorithm registry and the temporal_join entry point."""

import math

import pytest

from repro.algorithms import registry
from repro.algorithms.registry import (
    available_algorithms,
    get_algorithm,
    temporal_join,
)
from repro.core.errors import PlanError, QueryError
from repro.core.query import JoinQuery

from conftest import random_database


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = available_algorithms()
        for expected in [
            "timefirst",
            "hybrid",
            "hybrid-interval",
            "baseline",
            "joinfirst",
            "naive",
        ]:
            assert expected in names

    def test_get_algorithm(self):
        fn = get_algorithm("timefirst")
        assert callable(fn)

    def test_unknown_algorithm(self):
        with pytest.raises(QueryError):
            get_algorithm("quantum")


class TestTemporalJoinDispatch:
    def test_auto_matches_explicit(self, rng):
        for query in [JoinQuery.line(3), JoinQuery.star(3), JoinQuery.cycle(4)]:
            db = random_database(query, rng, n=10, domain=3)
            auto = temporal_join(query, db, algorithm="auto")
            naive = temporal_join(query, db, algorithm="naive")
            assert auto.normalized() == naive.normalized()

    def test_unknown_algorithm_raises(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng)
        with pytest.raises(QueryError):
            temporal_join(q, db, algorithm="quantum")

    def test_kwargs_forwarded(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=8, domain=3)
        out = temporal_join(q, db, algorithm="baseline", order=["R2", "R1", "R3"])
        assert out.normalized() == temporal_join(q, db, algorithm="naive").normalized()

    def test_tau_kwarg(self, rng):
        q = JoinQuery.star(3)
        db = random_database(q, rng, n=10, domain=3)
        full = temporal_join(q, db)
        durable = temporal_join(q, db, tau=5)
        assert len(durable) <= len(full)
        assert durable.normalized() == full.filter_durable(5).normalized()


class TestTauValidation:
    """Regression: non-finite τ used to flow into shrink_database and
    either produce a silently empty result (nan) or an IntervalError far
    from the caller (inf). It now fails fast at the API boundary."""

    @pytest.mark.parametrize("tau", [math.inf, -math.inf, math.nan])
    def test_non_finite_tau_rejected(self, rng, tau):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=5, domain=3)
        with pytest.raises(QueryError, match="finite"):
            temporal_join(q, db, tau=tau)

    def test_negative_tau_rejected(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=5, domain=3)
        with pytest.raises(QueryError, match="non-negative"):
            temporal_join(q, db, tau=-1)

    def test_non_numeric_tau_rejected(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=5, domain=3)
        with pytest.raises(QueryError, match="real number"):
            temporal_join(q, db, tau="5")


class TestAutoFallback:
    """Regression: ``algorithm="auto"`` used to wrap the *entire*
    execution in ``except PlanError`` — a PlanError raised mid-execution
    (e.g. a bad kwarg validated inside the algorithm) silently restarted
    the whole join on HYBRID, with the offending kwargs still attached."""

    def test_mid_execution_plan_error_propagates(self, rng):
        # line(3) is guarded, so auto dispatches to an algorithm that
        # accepts residual_strategy — which rejects this value with a
        # PlanError *during* execution. The old code swallowed it and
        # crashed confusingly inside the HYBRID fallback instead.
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=8, domain=3)
        with pytest.raises(PlanError, match="residual strategy"):
            temporal_join(q, db, algorithm="auto", residual_strategy="bogus")

    def test_fallback_is_decided_up_front(self, rng, monkeypatch):
        # Force the planner to pick hybrid-interval for a cycle query
        # (no guarded partition): the up-front applicability check must
        # reroute to HYBRID without ever invoking hybrid-interval.
        from repro.core import planner

        q = JoinQuery.cycle(4)
        db = random_database(q, rng, n=8, domain=3)
        real_plan = planner.plan

        def forced_plan(query, **kwargs):
            choice = real_plan(query, **kwargs)
            object.__setattr__(choice, "algorithm", "hybrid-interval")
            return choice

        monkeypatch.setattr(planner, "plan", forced_plan)
        out = temporal_join(q, db, algorithm="auto")
        want = temporal_join(q, db, algorithm="naive")
        assert out.normalized() == want.normalized()

    def test_fallback_strips_inapplicable_kwargs(self, rng, monkeypatch):
        # Same forced mis-plan, but with a kwarg only the planner's pick
        # understands: the fallback must strip it rather than crash
        # HYBRID with an unexpected keyword argument.
        from repro.core import planner

        q = JoinQuery.cycle(4)
        db = random_database(q, rng, n=8, domain=3)
        real_plan = planner.plan

        def forced_plan(query, **kwargs):
            choice = real_plan(query, **kwargs)
            object.__setattr__(choice, "algorithm", "hybrid-interval")
            return choice

        monkeypatch.setattr(planner, "plan", forced_plan)
        out = temporal_join(q, db, algorithm="auto", residual_strategy="sweep")
        want = temporal_join(q, db, algorithm="naive")
        assert out.normalized() == want.normalized()

    def test_strip_unsupported_kwargs_keeps_var_keyword(self):
        def fn_with_kwargs(query, database, tau=0, **kwargs):
            pass  # pragma: no cover - signature only

        kept = registry._strip_unsupported_kwargs(
            fn_with_kwargs, {"anything": 1, "goes": 2}
        )
        assert kept == {"anything": 1, "goes": 2}

    def test_strip_unsupported_kwargs_filters(self):
        def fn(query, database, tau=0, mode="a"):
            pass  # pragma: no cover - signature only

        kept = registry._strip_unsupported_kwargs(
            fn, {"mode": "b", "residual_strategy": "sweep"}
        )
        assert kept == {"mode": "b"}
