"""Engine-selection regression tests: one decision, reported truthfully.

Satellite suite for two dispatch bugs:

* an explicit ``engine="kernel"`` request could silently degrade to the
  object path (non-kernel algorithm, algorithm kwargs, patched registry
  entry) with no trace — each cause must now record a
  ``kernel.fallback_reason`` note and surface in ``ExplainAnalyze``;
* ``explain_analyze``'s reported ``engine`` under ``algorithm="auto"``
  could disagree with the engine that actually ran — the report must be
  computed from the *post-fallback* algorithm, pinned here against the
  presence/absence of the kernel's own counters.
"""

import pytest

from repro.algorithms import registry
from repro.algorithms.registry import (
    _engine_decision,
    explain_analyze,
    temporal_join,
)
from repro.core.query import JoinQuery
from repro.obs import ExecutionStats
from repro.workloads.synthetic import SyntheticConfig, generate


@pytest.fixture
def line3():
    query = JoinQuery.line(3)
    db = generate(query, SyntheticConfig(n_dangling=25, n_results=8))
    return query, db


@pytest.fixture
def star3():
    query = JoinQuery.star(3)
    db = generate(query, SyntheticConfig(n_dangling=25, n_results=8))
    return query, db


class TestEngineDecision:
    def test_object_request_short_circuits(self):
        assert _engine_decision("timefirst", "object", {}) == ("object", None)

    def test_kernel_on_stock_timefirst(self):
        registry._ensure_loaded()
        assert _engine_decision("timefirst", "kernel", {}) == ("kernel", None)
        assert _engine_decision("timefirst", "auto", {}) == ("kernel", None)

    def test_no_fast_path_reason_only_when_explicit(self):
        used, reason = _engine_decision("baseline", "kernel", {})
        assert used == "object"
        assert "no kernel fast path" in reason
        assert _engine_decision("baseline", "auto", {}) == ("object", None)

    def test_kwargs_reason_only_when_explicit(self):
        kwargs = {"state_factory": object()}
        used, reason = _engine_decision("timefirst", "kernel", kwargs)
        assert used == "object"
        assert "state_factory" in reason
        assert _engine_decision("timefirst", "auto", kwargs) == ("object", None)

    def test_override_reason_only_when_explicit(self, monkeypatch):
        registry._ensure_loaded()

        def patched(query, database, tau=0, stats=None):
            raise AssertionError("should not run")

        monkeypatch.setitem(registry._REGISTRY, "timefirst", patched)
        used, reason = _engine_decision("timefirst", "kernel", {})
        assert used == "object"
        assert "overridden" in reason
        assert _engine_decision("timefirst", "auto", {}) == ("object", None)


class TestFallbackReasonSurfaced:
    def test_no_fast_path_noted(self, line3):
        query, db = line3
        stats = ExecutionStats()
        temporal_join(
            query, db, algorithm="baseline", engine="kernel", stats=stats
        )
        assert "no kernel fast path" in stats.notes["kernel.fallback_reason"]

    def test_kwargs_noted(self, star3):
        from repro.algorithms.hierarchical import HierarchicalState

        query, db = star3
        stats = ExecutionStats()
        temporal_join(
            query, db, algorithm="timefirst", engine="kernel",
            state_factory=lambda q, _db: HierarchicalState(q), stats=stats,
        )
        assert "state_factory" in stats.notes["kernel.fallback_reason"]
        assert "kernel.sort_calls" not in stats  # object path really ran

    def test_override_noted(self, star3, monkeypatch):
        from repro.algorithms.timefirst import timefirst_join

        query, db = star3
        registry._ensure_loaded()
        calls = []

        def wrapped(query, database, tau=0, stats=None, **kwargs):
            calls.append(1)
            return timefirst_join(query, database, tau=tau, stats=stats, **kwargs)

        monkeypatch.setitem(registry._REGISTRY, "timefirst", wrapped)
        stats = ExecutionStats()
        temporal_join(
            query, db, algorithm="timefirst", engine="kernel", stats=stats
        )
        assert calls  # the override ran — the kernel must not bypass it
        assert "overridden" in stats.notes["kernel.fallback_reason"]

    def test_auto_degradation_is_silent(self, line3):
        query, db = line3
        stats = ExecutionStats()
        temporal_join(
            query, db, algorithm="baseline", engine="auto", stats=stats
        )
        assert "kernel.fallback_reason" not in stats.notes

    def test_kernel_request_honored_leaves_no_note(self, star3):
        query, db = star3
        stats = ExecutionStats()
        temporal_join(
            query, db, algorithm="timefirst", engine="kernel", stats=stats
        )
        assert "kernel.fallback_reason" not in stats.notes
        assert stats["kernel.sort_calls"] == 1

    def test_parallel_path_notes_reason(self, line3):
        query, db = line3
        stats = ExecutionStats()
        temporal_join(
            query, db, algorithm="baseline", engine="kernel",
            workers=2, parallel_mode="inline", stats=stats,
        )
        assert "no kernel fast path" in stats.notes["kernel.fallback_reason"]

    def test_note_rendered(self, line3):
        query, db = line3
        stats = ExecutionStats()
        temporal_join(
            query, db, algorithm="baseline", engine="kernel", stats=stats
        )
        assert "kernel.fallback_reason" in stats.render()


class TestExplainAnalyzeEngine:
    """The reported engine is the engine that ran, never a guess."""

    def _engine_agrees_with_counters(self, report):
        ran_kernel = "kernel.sort_calls" in report.stats
        assert (report.engine == "kernel") == ran_kernel

    def test_auto_on_hierarchical_query(self, star3):
        # Planner picks timefirst -> kernel runs -> report says kernel.
        query, db = star3
        report = explain_analyze(query, db, algorithm="auto")
        assert report.algorithm == "timefirst"
        assert report.engine == "kernel"
        assert report.kernel_fallback is None
        self._engine_agrees_with_counters(report)

    def test_auto_resolving_to_non_kernel_algorithm(self, line3):
        # Planner routes line3 elsewhere (hybrid-interval); the report
        # must say "object" even though engine="auto" was kernel-willing.
        query, db = line3
        report = explain_analyze(query, db, algorithm="auto")
        assert report.algorithm != "timefirst"
        assert report.engine == "object"
        assert report.kernel_fallback is None
        self._engine_agrees_with_counters(report)

    def test_explicit_kernel_degradation_reported(self, line3):
        query, db = line3
        report = explain_analyze(
            query, db, algorithm="baseline", engine="kernel"
        )
        assert report.engine == "object"
        assert "no kernel fast path" in report.kernel_fallback
        assert "kernel fallback:" in report.render()
        self._engine_agrees_with_counters(report)

    def test_honored_kernel_request_reported(self, star3):
        query, db = star3
        report = explain_analyze(
            query, db, algorithm="timefirst", engine="kernel"
        )
        assert report.engine == "kernel"
        assert report.kernel_fallback is None
        assert "kernel fallback:" not in report.render()
        self._engine_agrees_with_counters(report)

    def test_forced_object_reported(self, star3):
        query, db = star3
        report = explain_analyze(
            query, db, algorithm="timefirst", engine="object"
        )
        assert report.engine == "object"
        assert report.kernel_fallback is None
        self._engine_agrees_with_counters(report)

    @pytest.mark.parametrize("family", ["line3", "star3", "triangle"])
    def test_engine_report_matches_execution_across_families(self, family):
        query = {
            "line3": JoinQuery.line(3),
            "star3": JoinQuery.star(3),
            "triangle": JoinQuery.triangle(),
        }[family]
        db = generate(query, SyntheticConfig(n_dangling=15, n_results=5))
        for engine in ("auto", "kernel", "object"):
            report = explain_analyze(query, db, algorithm="auto", engine=engine)
            self._engine_agrees_with_counters(report)
