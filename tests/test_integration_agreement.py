"""Differential integration tests: every algorithm vs the brute-force oracle.

This is the library's most important safety net. For every query family
in the paper (lines, stars, cycles, hierarchical, bowtie, TPC-like ad hoc
shapes) and randomized instances with varied durability thresholds, every
registered algorithm must produce exactly the oracle's (values, interval)
multiset.
"""

import random

import pytest

from repro.algorithms.naive import naive_join
from repro.algorithms.registry import temporal_join
from repro.core.errors import PlanError
from repro.core.query import JoinQuery

from conftest import random_database

ALGORITHMS = ["timefirst", "baseline", "joinfirst", "hybrid", "hybrid-interval", "auto"]

FAMILIES = {
    "line3": JoinQuery.line(3),
    "line4": JoinQuery.line(4),
    "line5": JoinQuery.line(5),
    "star3": JoinQuery.star(3),
    "star5": JoinQuery.star(5),
    "triangle": JoinQuery.triangle(),
    "cycle4": JoinQuery.cycle(4),
    "cycle5": JoinQuery.cycle(5),
    "bowtie": JoinQuery.bowtie(),
    "hier": JoinQuery.hier(),
    "tpc9ish": JoinQuery(
        {"partsupp": ("PK", "SK"), "lineitem": ("OK", "PK", "SK"), "orders": ("OK", "CK")}
    ),
    "mixed_arity": JoinQuery(
        {"R1": ("a", "b", "c"), "R2": ("c", "d"), "R3": ("d", "e", "f"), "R4": ("b",)}
    ),
    "disconnected": JoinQuery({"R1": ("a", "b"), "R2": ("c", "d")}),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_algorithm_agrees_with_oracle(family, algorithm):
    query = FAMILIES[family]
    rng = random.Random(hash((family, algorithm)) & 0xFFFF)
    for trial in range(3):
        db = random_database(
            query, rng, n=rng.randrange(5, 14), domain=rng.randrange(2, 5),
            time_span=30,
        )
        tau = rng.choice([0, 0, 2, 5, 11])
        want = naive_join(query, db, tau=tau).normalized()
        try:
            got = temporal_join(query, db, tau=tau, algorithm=algorithm)
        except PlanError:
            assert algorithm == "hybrid-interval"
            return  # no guarded partition for this family: expected
        assert got.normalized() == want, (
            f"{algorithm} disagrees on {family} trial {trial} tau {tau}"
        )
        assert tuple(got.attrs) == tuple(query.attrs)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_dense_time_collisions(algorithm):
    """Many identical endpoints stress the sweep tie-breaking."""
    query = JoinQuery.line(3)
    rng = random.Random(99)
    for _ in range(3):
        db = random_database(query, rng, n=14, domain=3, time_span=4)
        want = naive_join(query, db).normalized()
        got = temporal_join(query, db, algorithm=algorithm)
        assert got.normalized() == want


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_heavy_skew_hub_values(algorithm):
    """One hub value everywhere: quadratic intermediates, tiny domains."""
    from repro.core.relation import TemporalRelation

    query = JoinQuery.line(3)
    rng = random.Random(7)
    db = {}
    for name in query.edge_names:
        rows = {}
        for i in range(12):
            left = 0 if rng.random() < 0.7 else i
            right = 0 if rng.random() < 0.7 else i + 100
            lo = rng.randrange(20)
            rows[(left, right)] = (lo, lo + rng.randrange(10))
        db[name] = TemporalRelation(name, query.edge(name), list(rows.items()))
    want = naive_join(query, db).normalized()
    got = temporal_join(query, db, algorithm=algorithm)
    assert got.normalized() == want


def test_all_algorithms_agree_on_durability_sweep():
    query = JoinQuery.star(3)
    rng = random.Random(13)
    db = random_database(query, rng, n=15, domain=3, time_span=50)
    reference_full = naive_join(query, db)
    for tau in [0, 1, 5, 10, 20, 100]:
        want = reference_full.filter_durable(tau).normalized()
        for algorithm in ALGORITHMS:
            got = temporal_join(query, db, tau=tau, algorithm=algorithm)
            assert got.normalized() == want, (algorithm, tau)
