"""Hypothesis: ``KernelColumns.subset`` round-trips exactly.

Satellite property suite for the shard/restriction substrate: for
randomly drawn databases — duplicate endpoints, zero-length and ±inf
intervals included — any strictly-increasing row-id subset must

* preserve interval identity (``intervals()`` of the subset equals the
  parent's intervals at those rows, value for value),
* de-intern identically to the parent (shared ``domains`` tables),
* keep its derived event-code stream sorted, complete (two events per
  row) and equal in ``(time, kind, seq)`` order to a cold re-sort —
  the no-resort derivation must be indistinguishable from sorting.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.errors import InvariantError  # noqa: E402
from repro.core.interval import Interval  # noqa: E402
from repro.core.relation import TemporalRelation  # noqa: E402
from repro.kernels.columns import build_columns  # noqa: E402

_INF = float("inf")

_lo = st.one_of(st.integers(min_value=-4, max_value=6), st.just(-_INF))
_dur = st.one_of(st.integers(min_value=0, max_value=5), st.just(_INF))


@st.composite
def _columns_and_subset(draw):
    """A two-relation database's columns plus a random row-id subset."""
    database = {}
    for name, attrs in (("R1", ("x", "y")), ("R2", ("y", "z"))):
        raw = draw(
            st.lists(
                st.tuples(
                    st.tuples(st.integers(0, 2), st.integers(0, 2)),
                    _lo,
                    _dur,
                ),
                min_size=0,
                max_size=6,
            )
        )
        rows, seen = [], set()
        for values, lo, dur in raw:
            if values in seen:
                continue
            seen.add(values)
            hi = _INF if dur == _INF else (dur if lo == -_INF else lo + dur)
            rows.append((values, Interval(lo, hi)))
        database[name] = TemporalRelation(name, attrs, rows)
    columns = build_columns(database)
    mask = draw(
        st.lists(st.booleans(), min_size=columns.n_rows, max_size=columns.n_rows)
    )
    row_ids = [rid for rid, keep in zip(range(columns.n_rows), mask) if keep]
    return columns, row_ids


def _decode(columns):
    """Event stream as ``(time, kind, relation, deinterned values)``.

    The comparable form of a stream across different rank/row-id spaces:
    what the sweep observes, minus the representation.
    """
    n = columns.n_rows
    out = []
    for code in columns.event_codes:
        rid = code % n
        rank_kind = code // n
        values = tuple(
            columns.domains[a][v]
            for a, v in zip(
                _attrs_of(columns, rid), columns.row_values[rid]
            )
        )
        out.append(
            (
                columns.rank_times[rank_kind >> 1],
                rank_kind & 1,
                columns.row_relation[rid],
                values,
            )
        )
    return out


_ATTRS = {"R1": ("x", "y"), "R2": ("y", "z")}


def _attrs_of(columns, rid):
    return _ATTRS[columns.row_relation[rid]]


@settings(max_examples=80, deadline=None)
@given(drawn=_columns_and_subset())
def test_subset_round_trips(drawn):
    columns, row_ids = drawn
    sub = columns.subset(row_ids)

    # Row payloads: intervals and de-interned values are the parent's,
    # in the parent's order.
    parent_intervals = columns.intervals()
    assert sub.intervals() == [parent_intervals[r] for r in row_ids]
    assert sub.row_values == [columns.row_values[r] for r in row_ids]
    assert sub.row_relation == [columns.row_relation[r] for r in row_ids]
    assert sub.domains is columns.domains  # de-intern identically

    # Rank space stays order-preserving and exact.
    for local in range(sub.n_rows):
        iv = sub.intervals()[local]
        assert sub.rank_times[sub.row_lo[local]] == iv.lo
        assert sub.rank_times[sub.row_hi[local]] == iv.hi
    assert sub.rank_times == sorted(sub.rank_times)

    # The derived (no-resort) event stream: sorted, complete, and
    # identical to what a cold sort of the same rows would produce.
    assert sub.event_codes == sorted(sub.event_codes)
    assert len(sub.event_codes) == 2 * sub.n_rows
    from repro.kernels.columns import _sorted_event_codes

    assert sub.event_codes == _sorted_event_codes(sub.row_lo, sub.row_hi)


@settings(max_examples=40, deadline=None)
@given(drawn=_columns_and_subset())
def test_subset_stream_semantically_equals_parent_filter(drawn):
    """Decoded to (time, kind, relation, values), the subset's stream is
    exactly the parent's stream filtered to the kept rows — same order,
    same ties."""
    columns, row_ids = drawn
    sub = columns.subset(row_ids)
    kept = set(row_ids)
    n = columns.n_rows
    want = [
        event
        for code, event in zip(columns.event_codes, _decode(columns))
        if code % n in kept
    ]
    assert _decode(sub) == want


@settings(max_examples=30, deadline=None)
@given(drawn=_columns_and_subset())
def test_identity_subset_is_equivalent(drawn):
    columns, _ = drawn
    sub = columns.subset(list(range(columns.n_rows)))
    assert sub.event_codes == columns.event_codes
    assert sub.intervals() == columns.intervals()
    assert list(sub.row_lo) == list(columns.row_lo)
    assert list(sub.row_hi) == list(columns.row_hi)


def test_non_increasing_row_ids_rejected():
    db = {
        "R1": TemporalRelation("R1", ("x", "y"), [((0, 0), Interval(0, 1))]),
        "R2": TemporalRelation("R2", ("y", "z"), [((0, 0), Interval(0, 1))]),
    }
    columns = build_columns(db)
    with pytest.raises(InvariantError, match="strictly increasing"):
        columns.subset([1, 0])
    with pytest.raises(InvariantError, match="strictly increasing"):
        columns.subset([0, 0])
