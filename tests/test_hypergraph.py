"""Tests for repro.core.hypergraph: acyclicity, join trees, reduction."""

import pytest

from repro.core.errors import QueryError
from repro.core.hypergraph import Hypergraph, join_tree_children, verify_join_tree
from repro.core.query import JoinQuery


def hg(edges):
    return Hypergraph(edges)


class TestBasics:
    def test_attrs_first_appearance_order(self):
        h = hg({"R1": ("b", "a"), "R2": ("a", "c")})
        assert h.attrs == ("b", "a", "c")

    def test_edge_lookup(self):
        h = hg({"R": ("a", "b")})
        assert h.edge("R") == ("a", "b")
        assert h.edge_set("R") == frozenset({"a", "b"})

    def test_unknown_edge(self):
        with pytest.raises(QueryError):
            hg({"R": ("a",)}).edge("S")

    def test_edges_of(self):
        h = hg({"R1": ("a", "b"), "R2": ("b", "c")})
        assert h.edges_of("b") == frozenset({"R1", "R2"})
        assert h.edges_of("a") == frozenset({"R1"})

    def test_unknown_attr(self):
        with pytest.raises(QueryError):
            hg({"R": ("a",)}).edges_of("z")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph({})

    def test_empty_edge_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph({"R": ()})

    def test_repeated_attr_in_edge_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph({"R": ("a", "a")})

    def test_equality_ignores_attr_order(self):
        assert hg({"R": ("a", "b")}) == hg({"R": ("b", "a")})
        assert hash(hg({"R": ("a", "b")})) == hash(hg({"R": ("b", "a")}))

    def test_inequality(self):
        assert hg({"R": ("a", "b")}) != hg({"R": ("a", "c")})

    def test_rename_attrs(self):
        h = hg({"R": ("a", "b")}).rename_attrs({"a": "x"})
        assert h.edge("R") == ("x", "b")


class TestConnectivity:
    def test_connected(self):
        assert JoinQuery.line(3).hypergraph.is_connected()

    def test_disconnected(self):
        h = hg({"R1": ("a",), "R2": ("b",)})
        assert not h.is_connected()
        assert h.connected_components() == [["R1"], ["R2"]]

    def test_components_partition_edges(self):
        h = hg({"R1": ("a", "b"), "R2": ("b", "c"), "R3": ("z",)})
        comps = h.connected_components()
        flat = sorted(name for comp in comps for name in comp)
        assert flat == ["R1", "R2", "R3"]
        assert len(comps) == 2


class TestReduce:
    def test_no_containment_is_identity(self):
        h = JoinQuery.line(3).hypergraph
        reduced, absorbed = h.reduce()
        assert reduced == h and absorbed == {}

    def test_contained_edge_absorbed(self):
        h = hg({"R1": ("a", "b", "c"), "R2": ("a", "b")})
        reduced, absorbed = h.reduce()
        assert reduced.edge_names == ["R1"]
        assert absorbed == {"R2": "R1"}

    def test_chain_containment(self):
        h = hg({"R1": ("a", "b", "c"), "R2": ("a", "b"), "R3": ("a",)})
        reduced, absorbed = h.reduce()
        assert reduced.edge_names == ["R1"]
        assert set(absorbed) == {"R2", "R3"}

    def test_equal_edges_one_survives(self):
        h = hg({"R1": ("a", "b"), "R2": ("b", "a")})
        reduced, absorbed = h.reduce()
        assert len(reduced) == 1 and len(absorbed) == 1

    def test_deterministic(self):
        h = hg({"R1": ("a", "b", "c"), "R2": ("a", "b"), "R3": ("b", "c")})
        assert h.reduce() == h.reduce()


class TestInduced:
    def test_line_induced_endpoints(self):
        h = JoinQuery.line(3).hypergraph
        sub = h.induced(["x1", "x4"])
        assert set(sub.edge_names) == {"R1", "R3"}
        assert sub.edge("R1") == ("x1",)

    def test_induced_drops_uncovered_edges(self):
        h = JoinQuery.line(3).hypergraph
        sub = h.induced(["x2", "x3"])
        assert set(sub.edge_names) == {"R1", "R2", "R3"}
        assert sub.edge("R2") == ("x2", "x3")

    def test_induced_empty_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery.line(3).hypergraph.induced(["zzz"])


class TestAcyclicity:
    @pytest.mark.parametrize(
        "query",
        [
            JoinQuery.line(2),
            JoinQuery.line(5),
            JoinQuery.star(4),
            JoinQuery.hier(),
        ],
    )
    def test_acyclic_families(self, query):
        assert query.hypergraph.is_acyclic()

    @pytest.mark.parametrize(
        "query",
        [JoinQuery.triangle(), JoinQuery.cycle(4), JoinQuery.cycle(6), JoinQuery.bowtie()],
    )
    def test_cyclic_families(self, query):
        assert not query.hypergraph.is_acyclic()

    def test_single_edge_acyclic(self):
        assert hg({"R": ("a", "b", "c")}).is_acyclic()

    def test_disconnected_acyclic(self):
        assert hg({"R1": ("a",), "R2": ("b",)}).is_acyclic()

    def test_alpha_acyclic_with_big_edge(self):
        # A triangle plus an edge covering it is α-acyclic.
        h = hg(
            {
                "R1": ("a", "b"),
                "R2": ("b", "c"),
                "R3": ("a", "c"),
                "Big": ("a", "b", "c"),
            }
        )
        assert h.is_acyclic()

    def test_join_tree_valid_for_acyclic(self):
        for query in [JoinQuery.line(4), JoinQuery.star(5), JoinQuery.hier()]:
            h = query.hypergraph
            tree = h.gyo_join_tree()
            assert tree is not None
            assert verify_join_tree(h, tree)

    def test_join_tree_none_for_cyclic(self):
        assert JoinQuery.triangle().hypergraph.gyo_join_tree() is None

    def test_join_tree_single_root_when_connected(self):
        tree = JoinQuery.line(4).hypergraph.gyo_join_tree()
        roots = [n for n, p in tree.items() if p is None]
        assert len(roots) == 1


class TestJoinTreeHelpers:
    def test_children_inversion(self):
        parent = {"A": None, "B": "A", "C": "A"}
        children = join_tree_children(parent)
        assert children[""] == ["A"]
        assert children["A"] == ["B", "C"]

    def test_verify_rejects_wrong_nodes(self):
        h = JoinQuery.line(3).hypergraph
        assert not verify_join_tree(h, {"R1": None, "R2": "R1"})

    def test_verify_rejects_disconnected_attr(self):
        # x2 appears in R1 and R3 but they are not adjacent: invalid tree.
        h = hg({"R1": ("x1", "x2"), "R2": ("x1",), "R3": ("x2", "x3")})
        bad = {"R1": None, "R2": "R1", "R3": "R2"}
        assert not verify_join_tree(h, bad)

    def test_verify_accepts_gyo_output(self):
        h = JoinQuery.star(6).hypergraph
        assert verify_join_tree(h, h.gyo_join_tree())
