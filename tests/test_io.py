"""Tests for CSV import/export of relations and results."""

import math

import pytest

from repro.core.errors import SchemaError
from repro.core.interval import Interval
from repro.core.io import (
    read_database_csv,
    read_relation_csv,
    write_database_csv,
    write_relation_csv,
    write_results_csv,
)
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.algorithms.registry import temporal_join

from conftest import random_database


class TestRelationRoundTrip:
    def test_round_trip_values_and_intervals(self, tmp_path):
        rel = TemporalRelation(
            "R", ("a", "b"),
            [(("x", "y"), (0, 10)), (("z", "w"), (5, 7))],
        )
        path = tmp_path / "r.csv"
        write_relation_csv(rel, path)
        back = read_relation_csv(path)
        assert back.attrs == rel.attrs
        assert sorted(back.rows) == sorted(rel.rows)

    def test_numeric_value_parser(self, tmp_path):
        rel = TemporalRelation("R", ("a",), [((7,), (0, 1))])
        path = tmp_path / "r.csv"
        write_relation_csv(rel, path)
        back = read_relation_csv(path, value_parser=int)
        assert back.rows == [((7,), Interval(0, 1))]

    def test_unbounded_endpoints(self, tmp_path):
        rel = TemporalRelation("R", ("a",), [(("x",), Interval.always())])
        path = tmp_path / "r.csv"
        write_relation_csv(rel, path)
        back = read_relation_csv(path)
        assert back.rows[0][1] == Interval(-math.inf, math.inf)

    def test_float_and_int_endpoints_preserved(self, tmp_path):
        rel = TemporalRelation(
            "R", ("a",), [(("x",), (0, 10)), (("y",), (1.5, 2.25))]
        )
        path = tmp_path / "r.csv"
        write_relation_csv(rel, path)
        back = read_relation_csv(path)
        rows = dict(back.rows)
        assert rows[("x",)] == Interval(0, 10)
        assert isinstance(rows[("x",)].lo, int)
        assert rows[("y",)] == Interval(1.5, 2.25)

    def test_name_defaults_to_stem(self, tmp_path):
        rel = TemporalRelation("orig", ("a",), [(("x",), (0, 1))])
        path = tmp_path / "edges.csv"
        write_relation_csv(rel, path)
        assert read_relation_csv(path).name == "edges"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_relation_csv(path)

    def test_too_few_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,valid_from\n")
        with pytest.raises(SchemaError):
            read_relation_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,valid_from,valid_to\nx,0\n")
        with pytest.raises(SchemaError):
            read_relation_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,valid_from,valid_to\nx,0,5\n\ny,1,2\n")
        back = read_relation_csv(path)
        assert len(back) == 2


class TestBadEndpointRejection:
    """Regression: NaN endpoints used to parse 'successfully' and poison
    the sweep's sort much later with no hint of the offending row."""

    @pytest.mark.parametrize("token", ["nan", "NaN", "-nan", "+nan"])
    def test_nan_rejected_with_location(self, tmp_path, token):
        path = tmp_path / "r.csv"
        path.write_text(f"a,valid_from,valid_to\nx,0,5\ny,{token},2\n")
        with pytest.raises(SchemaError) as excinfo:
            read_relation_csv(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert ":3" in message  # the bad row, 1-based with header = line 1
        assert token in message

    def test_garbage_endpoint_rejected_with_location(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,valid_from,valid_to\nx,zero,5\n")
        with pytest.raises(SchemaError) as excinfo:
            read_relation_csv(path)
        assert f"{path}:2" in str(excinfo.value)

    def test_inverted_interval_rejected_with_location(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,valid_from,valid_to\nx,9,5\n")
        with pytest.raises(SchemaError) as excinfo:
            read_relation_csv(path)
        assert f"{path}:2" in str(excinfo.value)

    def test_infinite_endpoint_spellings_accepted(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text(
            "a,valid_from,valid_to\n"
            "x,-inf,inf\ny,-Infinity,Infinity\nz,+inf,inf\n"
        )
        back = read_relation_csv(path)
        assert back.rows[0][1] == Interval.always()
        assert back.rows[1][1] == Interval.always()
        assert back.rows[2][1] == Interval(math.inf, math.inf)


class TestDatabaseRoundTrip:
    def test_write_then_read_and_join(self, tmp_path, rng):
        query = JoinQuery.line(3)
        db = random_database(query, rng, n=10, domain=3)
        paths = write_database_csv(db, tmp_path / "db")
        assert set(paths) == set(query.edge_names)
        back = read_database_csv(query, paths, value_parser=int)
        original = temporal_join(query, db).normalized()
        reloaded = temporal_join(query, back).normalized()
        assert original == reloaded

    def test_read_validates_schema(self, tmp_path):
        query = JoinQuery.line(2)
        rel = TemporalRelation("R1", ("wrong", "attrs"), [((1, 2), (0, 1))])
        path = tmp_path / "r1.csv"
        write_relation_csv(rel, path)
        other = TemporalRelation("R2", ("x2", "x3"), [((2, 3), (0, 1))])
        path2 = tmp_path / "r2.csv"
        write_relation_csv(other, path2)
        with pytest.raises(SchemaError):
            read_database_csv(query, {"R1": path, "R2": path2})


class TestResultsExport:
    def test_results_csv_has_durability(self, tmp_path, rng):
        query = JoinQuery.star(2)
        db = random_database(query, rng, n=10, domain=3)
        results = temporal_join(query, db)
        path = tmp_path / "out.csv"
        write_results_csv(results, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].endswith("valid_from,valid_to,durability")
        assert len(lines) == len(results) + 1


# ----------------------------------------------------------------------
# Property: write → read is the identity on values, endpoints, and
# endpoint *types* (int stays int, float stays float, ±inf round-trips).
# ----------------------------------------------------------------------
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_finite_int = st.integers(min_value=-10**9, max_value=10**9)
_finite_float = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-1e12, max_value=1e12,
)
_endpoint = st.one_of(
    _finite_int,
    _finite_float,
    st.just(math.inf),
    st.just(-math.inf),
)


@st.composite
def _interval_endpoints(draw):
    lo = draw(_endpoint)
    hi = draw(_endpoint)
    if lo > hi:
        lo, hi = hi, lo
    return lo, hi


@st.composite
def _relation_rows(draw):
    pairs = draw(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=10**6), _interval_endpoints()),
            min_size=0, max_size=20,
            unique_by=lambda p: p[0],
        )
    )
    return [((f"v{key}",), endpoints) for key, (endpoints) in pairs]


class TestCsvRoundTripProperty:
    @given(rows=_relation_rows())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_identity(self, tmp_path_factory, rows):
        tmp_path = tmp_path_factory.mktemp("io_prop")
        rel = TemporalRelation("R", ("a",), rows)
        path = tmp_path / "r.csv"
        write_relation_csv(rel, path)
        back = read_relation_csv(path)
        assert back.attrs == rel.attrs
        assert len(back) == len(rel)
        got = dict(back.rows)
        for values, interval in rel.rows:
            interval = Interval.coerce(interval)
            assert got[values] == interval
            # Endpoint *types* survive: the sweep sorts ints and floats
            # together, but mixed-type equality hides drift — check both.
            assert type(got[values].lo) is type(interval.lo)
            assert type(got[values].hi) is type(interval.hi)
