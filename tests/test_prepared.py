"""Tests for the prepared-columns multi-query engine (kernels.prepared)."""

import pickle

import pytest

from repro import prepare, run_batch, temporal_join
from repro.core.errors import InvariantError, QueryError
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.kernels.prepared import PreparedDatabase, needs_reduction
from repro.obs import ExecutionStats
from repro.workloads.synthetic import SyntheticConfig, generate

CONFIG = SyntheticConfig(n_dangling=25, n_results=8)


@pytest.fixture
def line3():
    query = JoinQuery.line(3)
    return query, generate(query, CONFIG)


@pytest.fixture
def star3():
    query = JoinQuery.star(3)
    return query, generate(query, CONFIG)


def _object_result(query, db, tau=0, algorithm="timefirst"):
    return temporal_join(
        query, db, tau=tau, algorithm=algorithm, engine="object"
    ).normalized()


class TestPreparedSingleQuery:
    @pytest.mark.parametrize("tau", [0, 3])
    def test_matches_object_path(self, line3, star3, tau):
        for query, db in (line3, star3):
            artifact = prepare(db)
            got = temporal_join(
                query, db, tau=tau, algorithm="timefirst", prepared=artifact
            )
            assert got.normalized() == _object_result(query, db, tau=tau)

    def test_skips_ingest_on_reuse(self, line3):
        query, db = line3
        prep_stats = ExecutionStats()
        artifact = prepare(db, stats=prep_stats)
        assert prep_stats["kernel.sort_calls"] == 1

        stats = ExecutionStats()
        temporal_join(
            query, db, algorithm="timefirst", prepared=artifact, stats=stats
        )
        # τ=0 reuse: no interning, ranking or sorting on the call path.
        assert "kernel.sort_calls" not in stats
        assert stats["prepared.reuse"] == 1

    def test_tau_view_cached_across_calls(self, line3):
        query, db = line3
        artifact = prepare(db)
        stats = ExecutionStats()
        for _ in range(3):
            temporal_join(
                query, db, tau=3, algorithm="timefirst", prepared=artifact,
                stats=stats,
            )
        # One shrink (re-rank + re-sort) total, then cache hits.
        assert stats["kernel.sort_calls"] == 1
        assert stats["prepared.view_cache_misses"] == 1
        assert stats["prepared.view_cache_hits"] == 2

    def test_auto_algorithm_uses_plan_cache(self, star3):
        query, db = star3
        artifact = prepare(db)
        want = temporal_join(query, db, algorithm="auto").normalized()
        stats = ExecutionStats()
        for _ in range(2):
            got = temporal_join(
                query, db, algorithm="auto", prepared=artifact, stats=stats
            )
            assert got.normalized() == want
        assert stats["prepared.plan_cache_misses"] == 1
        assert stats["prepared.plan_cache_hits"] == 1

    @pytest.mark.parametrize("tau", [0, 3])
    def test_parallel_inline_matches(self, line3, tau):
        query, db = line3
        artifact = prepare(db)
        got = temporal_join(
            query, db, tau=tau, algorithm="timefirst", prepared=artifact,
            workers=3, parallel_mode="inline",
        )
        assert got.normalized() == _object_result(query, db, tau=tau)

    def test_parallel_reuses_artifact(self, line3):
        query, db = line3
        artifact = prepare(db)
        stats = ExecutionStats()
        temporal_join(
            query, db, algorithm="timefirst", prepared=artifact,
            workers=3, parallel_mode="inline", stats=stats,
        )
        assert stats["prepared.reuse"] == 1
        assert "kernel.sort_calls" not in stats

    def test_object_engine_ignores_artifact(self, line3):
        query, db = line3
        artifact = prepare(db)
        got = temporal_join(
            query, db, algorithm="timefirst", engine="object",
            prepared=artifact,
        )
        assert got.normalized() == _object_result(query, db)

    def test_explain_analyze_reports_prepared_counters(self, line3):
        from repro import explain_analyze

        query, db = line3
        artifact = prepare(db)
        report = explain_analyze(
            query, db, algorithm="timefirst", prepared=artifact
        )
        assert report.engine == "kernel"
        assert report.stats["prepared.reuse"] == 1
        assert "prepared.reuse" in report.render()


class TestValidation:
    def test_equal_content_different_objects_pass(self, line3):
        query, db = line3
        artifact = prepare(db)
        clone = {
            name: TemporalRelation(name, rel.attrs, list(rel))
            for name, rel in db.items()
        }
        got = temporal_join(
            query, clone, algorithm="timefirst", prepared=artifact
        )
        assert got.normalized() == _object_result(query, db)

    def test_relation_set_mismatch(self, line3):
        _, db = line3
        artifact = prepare(db)
        smaller = {k: v for k, v in db.items() if k != "R3"}
        with pytest.raises(QueryError, match="does not match"):
            artifact.validate_against(smaller)

    def test_changed_rows_detected(self, line3):
        query, db = line3
        artifact = prepare(db)
        stale = dict(db)
        rows = list(db["R1"])
        rows[0] = (rows[0][0], Interval(-100, 100))
        stale["R1"] = TemporalRelation("R1", db["R1"].attrs, rows)
        with pytest.raises(QueryError, match="stale"):
            temporal_join(
                query, stale, algorithm="timefirst", prepared=artifact
            )

    def test_changed_attrs_detected(self, line3):
        _, db = line3
        artifact = prepare(db)
        renamed = dict(db)
        renamed["R1"] = TemporalRelation("R1", ("x1", "z"), list(db["R1"]))
        with pytest.raises(QueryError, match="attributes"):
            artifact.validate_against(renamed)

    def test_run_batch_validates_queries(self, line3):
        from repro.core.errors import SchemaError

        _, db = line3
        artifact = prepare(db)
        foreign = JoinQuery({"S1": ("a", "b")})
        with pytest.raises(SchemaError, match="missing relation"):
            run_batch([foreign], artifact)


def _sub_db(query, db):
    return {name: db[name] for name in query.edge_names}


def _fleet(db):
    """line3 twice, an attr-order variant, and a line2 sub-chain."""
    line3 = JoinQuery.line(3)
    reversed3 = JoinQuery(
        {name: line3.edge(name) for name in line3.edge_names},
        attr_order=tuple(reversed(line3.attrs)),
    )
    line2 = JoinQuery({"R1": ("x1", "x2"), "R2": ("x2", "x3")})
    return [line3, line3, reversed3, line2]


class TestRunBatch:
    def test_matches_individual_calls(self, line3):
        _, db = line3
        artifact = prepare(db)
        queries = _fleet(db)
        results = run_batch(queries, artifact, algorithm="timefirst")
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert tuple(result.attrs) == tuple(query.attrs)
            assert result.normalized() == _object_result(
                query, _sub_db(query, db)
            )

    def test_single_sort_across_batch(self, line3):
        _, db = line3
        stats = ExecutionStats()
        artifact = prepare(db, stats=stats)
        run_batch(_fleet(db), artifact, algorithm="timefirst", stats=stats)
        # The ingest sort is the only sort: restriction and sharing are
        # derivations, never re-sorts. This is the amortization contract.
        assert stats["kernel.sort_calls"] == 1
        assert stats["prepared.batch_queries"] == 4
        assert stats["prepared.batch_evaluations"] == 2
        assert stats["prepared.shared_results"] == 2
        assert stats["prepared.restrict_cache_misses"] == 1

    def test_tau_batch_adds_exactly_one_sort(self, line3):
        _, db = line3
        stats = ExecutionStats()
        artifact = prepare(db, stats=stats)
        queries = _fleet(db)
        results = run_batch(
            queries, artifact, tau=3, algorithm="timefirst", stats=stats
        )
        assert stats["kernel.sort_calls"] == 2  # ingest + one τ-view
        for query, result in zip(queries, results):
            assert result.normalized() == _object_result(
                query, _sub_db(query, db), tau=3
            )

    def test_duplicate_templates_share_rows(self, line3):
        _, db = line3
        query = JoinQuery.line(3)
        results = run_batch([query, query], prepare(db), algorithm="timefirst")
        assert results[0].normalized() == results[1].normalized()
        assert results[0] is not results[1]  # caller-safe copies

    def test_auto_algorithm_batch(self, line3):
        _, db = line3
        artifact = prepare(db)
        queries = _fleet(db)
        stats = ExecutionStats()
        results = run_batch(queries, artifact, algorithm="auto", stats=stats)
        for query, result in zip(queries, results):
            want = temporal_join(
                query, _sub_db(query, db), algorithm="auto"
            ).normalized()
            assert result.normalized() == want
        assert stats["prepared.plan_cache_hits"] >= 1

    def test_non_kernel_algorithm_falls_back(self, line3):
        _, db = line3
        artifact = prepare(db)
        queries = _fleet(db)
        stats = ExecutionStats()
        results = run_batch(
            queries, artifact, algorithm="baseline", stats=stats
        )
        assert stats["prepared.fallback_queries"] == len(queries)
        for query, result in zip(queries, results):
            assert result.normalized() == _object_result(
                query, _sub_db(query, db), algorithm="baseline"
            )

    @pytest.mark.parametrize("tau", [0, 3])
    def test_parallel_inline_matches_serial(self, line3, tau):
        _, db = line3
        artifact = prepare(db)
        queries = _fleet(db)
        serial = run_batch(queries, artifact, tau=tau, algorithm="timefirst")
        stats = ExecutionStats()
        par = run_batch(
            queries, artifact, tau=tau, algorithm="timefirst",
            workers=3, parallel_mode="inline", stats=stats,
        )
        for a, b in zip(serial, par):
            assert a.normalized() == b.normalized()
        assert stats["parallel.shards"] >= 1
        assert stats["parallel.workers"] >= 1

    def test_empty_batch(self, line3):
        _, db = line3
        assert run_batch([], prepare(db)) == []

    def test_invalid_arguments(self, line3):
        _, db = line3
        artifact = prepare(db)
        query = JoinQuery.line(3)
        with pytest.raises(QueryError, match="workers"):
            run_batch([query], artifact, workers=0)
        with pytest.raises(QueryError, match="unknown algorithm"):
            run_batch([query], artifact, algorithm="quantum")
        with pytest.raises(QueryError, match="engine"):
            run_batch([query], artifact, engine="gpu")
        with pytest.raises(QueryError, match="finite"):
            run_batch([query], artifact, tau=float("inf"))
        with pytest.raises(QueryError, match="mode"):
            run_batch([query], artifact, workers=2, parallel_mode="threads")


class TestPickleContract:
    def test_prepared_database_round_trip(self, line3):
        query, db = line3
        artifact = prepare(db)
        # Warm the caches (τ-view + restriction + plan) before pickling.
        run_batch(_fleet(db), artifact, tau=3, algorithm="timefirst")
        loaded = pickle.loads(pickle.dumps(artifact))
        assert isinstance(loaded, PreparedDatabase)
        got = temporal_join(
            query, db, algorithm="timefirst", prepared=loaded
        )
        assert got.normalized() == _object_result(query, db)

    def test_columns_payload_has_no_object_rows(self, line3):
        """Satellite 1: shard payloads ship no Interval objects.

        ``KernelColumns`` excludes the lazy interval cache from pickling,
        so the payload must never reference the Interval class — even
        after ``intervals()`` has populated the cache.
        """
        _, db = line3
        artifact = prepare(db)
        artifact.columns.intervals()  # populate the per-process cache
        payload = pickle.dumps(artifact.columns)
        assert b"repro.core.interval" not in payload
        assert b"Interval" not in payload

    def test_batch_shard_task_payload_has_no_object_rows(self, line3):
        from repro.parallel.worker import BatchShardTask

        query, db = line3
        artifact = prepare(db)
        columns = artifact.columns
        columns.intervals()
        task = BatchShardTask(
            shard=0, queries=[query], tau=0, cuts=(),
            columns=columns.subset(list(range(columns.n_rows))),
        )
        assert b"repro.core.interval" not in pickle.dumps(task)

    def test_intervals_rebuilt_after_unpickle(self, line3):
        _, db = line3
        columns = prepare(db).columns
        want = columns.intervals()
        loaded = pickle.loads(pickle.dumps(columns))
        assert loaded.intervals() == want


class TestNeedsReduction:
    def test_hierarchical_query_does_not(self):
        assert not needs_reduction(JoinQuery.star(3))

    def test_non_hierarchical_query_does_not(self):
        assert not needs_reduction(JoinQuery.line(3))

    def test_r_hierarchical_only_query_does(self):
        # Hierarchical only after the footnote-2 reduction removes the
        # R2/R3 edges contained in R1.
        query = JoinQuery(
            {"R1": ("a", "b", "c"), "R2": ("a", "b"), "R3": ("b", "c")}
        )
        assert (not query.is_hierarchical) and query.is_r_hierarchical
        assert needs_reduction(query)

    def test_reduction_query_runs_cold_but_correct(self):
        query = JoinQuery(
            {"R1": ("a", "b", "c"), "R2": ("a", "b"), "R3": ("b", "c")}
        )
        assert needs_reduction(query)
        db = {
            "R1": TemporalRelation(
                "R1", ("a", "b", "c"),
                [(("a0", "b0", "c0"), Interval(0, 10)),
                 (("a1", "b0", "c0"), Interval(2, 8))],
            ),
            "R2": TemporalRelation(
                "R2", ("a", "b"),
                [(("a0", "b0"), Interval(1, 9)), (("a1", "b0"), Interval(3, 7))],
            ),
            "R3": TemporalRelation(
                "R3", ("b", "c"), [(("b0", "c0"), Interval(0, 6))]
            ),
        }
        artifact = prepare(db)
        want = _object_result(query, db)
        assert len(want) > 0
        stats = ExecutionStats()
        got = temporal_join(
            query, db, algorithm="timefirst", prepared=artifact, stats=stats
        )
        assert got.normalized() == want
        results = run_batch(
            [query], artifact, algorithm="timefirst", stats=stats
        )
        assert results[0].normalized() == want
        # The batch ran it cold (the per-query instance reduction cannot
        # share prepared columns) and said why.
        assert stats["prepared.fallback_queries"] == 1
        assert "reduction" in stats.notes.get("kernel.fallback_reason", "")


class TestRestrict:
    def test_restrict_unknown_relation_rejected(self, line3):
        _, db = line3
        with pytest.raises(InvariantError, match="unknown relations"):
            prepare(db).columns.restrict(["R1", "S9"])

    def test_restrict_identity_shortcut(self, line3):
        _, db = line3
        columns = prepare(db).columns
        assert columns.restrict(list(columns.relations)) is columns
