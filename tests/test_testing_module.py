"""Tests for the public repro.testing helpers and package doctests."""

import doctest
import random

import pytest

import repro
import repro.testing
from repro import JoinQuery
from repro.core.errors import InvariantError
from repro.testing import differential_check, random_instance, random_temporal_relation


class TestGenerators:
    def test_relation_respects_domain_cap(self):
        rng = random.Random(0)
        rel = random_temporal_relation("R", ("a", "b"), 100, 3, 20, rng)
        assert len(rel) == 9  # 3² distinct tuples max

    def test_deterministic_given_rng(self):
        a = random_instance(JoinQuery.line(3), random.Random(5))
        b = random_instance(JoinQuery.line(3), random.Random(5))
        for name in a:
            assert a[name].rows == b[name].rows

    def test_max_duration_respected(self):
        rng = random.Random(1)
        rel = random_temporal_relation(
            "R", ("a",), 10, 100, 50, rng, max_duration=3
        )
        assert all(iv.duration < 3 for _, iv in rel)

    def test_instance_covers_all_edges(self):
        q = JoinQuery.bowtie()
        db = random_instance(q, random.Random(2), n=5)
        assert set(db) == set(q.edge_names)


class TestDifferentialCheck:
    def test_passes_on_consistent_algorithms(self):
        q = JoinQuery.star(3)
        db = random_instance(q, random.Random(3), n=10, domain=3)
        differential_check(q, db)  # no raise

    def test_detects_divergence(self, monkeypatch):
        from repro.algorithms import registry

        q = JoinQuery.line(2)
        db = random_instance(q, random.Random(4), n=8, domain=3)

        def broken(query, database, tau=0, **kwargs):
            from repro.core.result import JoinResultSet

            return JoinResultSet(query.attrs)  # always empty: wrong

        monkeypatch.setitem(registry._REGISTRY, "timefirst", broken)
        if not any(len(r) for r in [db["R1"]]):  # pragma: no cover
            pytest.skip("degenerate instance")
        # Only diverges when the true result is non-empty; regenerate
        # until it is.
        rng = random.Random(4)
        from repro.algorithms.naive import naive_join

        while not len(naive_join(q, db)):
            db = random_instance(q, rng, n=10, domain=2)
        with pytest.raises(InvariantError):
            differential_check(q, db, algorithms=("timefirst",))

    def test_skips_inapplicable(self):
        q = JoinQuery.triangle()
        db = random_instance(q, random.Random(6), n=8, domain=3)
        differential_check(q, db, algorithms=("hybrid-interval",))  # skipped


class TestDoctests:
    @pytest.mark.parametrize(
        "module",
        [repro, repro.testing],
        ids=lambda m: m.__name__,
    )
    def test_module_doctests(self, module):
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"

    def test_query_parse_doctest(self):
        import repro.core.query as qmod

        result = doctest.testmod(qmod, verbose=False)
        assert result.failed == 0
