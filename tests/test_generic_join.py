"""Tests for the worst-case optimal GenericJoin."""

import random

import pytest

from repro.algorithms.naive import naive_nontemporal_join
from repro.core.hypergraph import Hypergraph
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.nontemporal.generic_join import (
    choose_attribute_order,
    generic_join,
    generic_join_with_order,
)

from conftest import random_database


def as_set(results, order, target):
    pos = [order.index(a) for a in target]
    return {tuple(r[p] for p in pos) for r in results}


class TestAttributeOrder:
    def test_covers_all_attrs(self):
        for q in [JoinQuery.line(4), JoinQuery.triangle(), JoinQuery.bowtie()]:
            order = choose_attribute_order(q.hypergraph)
            assert sorted(order) == sorted(q.hypergraph.attrs)

    def test_connected_prefixes(self):
        hg = JoinQuery.line(5).hypergraph
        order = choose_attribute_order(hg)
        seen = {order[0]}
        for attr in order[1:]:
            adjacent = any(
                seen & set(hg.edge(e)) for e in hg.edges_of(attr)
            )
            assert adjacent
            seen.add(attr)


class TestGenericJoin:
    def test_triangle_finds_triangles(self):
        edges = [((1, 2), (0, 1)), ((2, 3), (0, 1)), ((3, 1), (0, 1)), ((1, 4), (0, 1))]
        q = JoinQuery.triangle()
        db = {
            n: TemporalRelation(n, q.edge(n), edges, check_distinct=False)
            for n in q.edge_names
        }
        results, order = generic_join_with_order(q.hypergraph, db)
        got = as_set(results, order, ("x1", "x2", "x3"))
        assert (1, 2, 3) in got
        assert (2, 3, 1) in got  # rotations are distinct assignments
        assert (1, 4, 3) not in got

    def test_empty_relation_short_circuits(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 1))]),
            "R2": TemporalRelation("R2", ("x2", "x3")),
        }
        assert generic_join(q.hypergraph, db) == []

    def test_explicit_order_respected(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 1))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (0, 1))]),
        }
        results, order = generic_join_with_order(
            q.hypergraph, db, order=("x3", "x2", "x1")
        )
        assert order == ["x3", "x2", "x1"]
        assert results == [(3, 2, 1)]

    def test_cartesian_product(self):
        hg = Hypergraph({"R1": ("a",), "R2": ("b",)})
        db = {
            "R1": TemporalRelation("R1", ("a",), [((1,), (0, 1)), ((2,), (0, 1))]),
            "R2": TemporalRelation("R2", ("b",), [((9,), (0, 1))]),
        }
        results, order = generic_join_with_order(hg, db)
        assert as_set(results, order, ("a", "b")) == {(1, 9), (2, 9)}

    def test_relation_attr_order_independence(self):
        # Binding a relation whose stored column order differs from the
        # hyperedge declaration must still work (positions by name).
        hg = Hypergraph({"R1": ("a", "b"), "R2": ("b", "c")})
        db = {
            "R1": TemporalRelation("R1", ("b", "a"), [((2, 1), (0, 1))]),
            "R2": TemporalRelation("R2", ("b", "c"), [((2, 3), (0, 1))]),
        }
        results, order = generic_join_with_order(hg, db)
        assert as_set(results, order, ("a", "b", "c")) == {(1, 2, 3)}

    @pytest.mark.parametrize(
        "query",
        [
            JoinQuery.line(3),
            JoinQuery.star(3),
            JoinQuery.triangle(),
            JoinQuery.cycle(4),
            JoinQuery.bowtie(),
            JoinQuery.hier(),
        ],
    )
    def test_randomized_against_backtracking(self, query, rng):
        for _ in range(4):
            db = random_database(query, rng, n=10, domain=3)
            results, order = generic_join_with_order(query.hypergraph, db)
            got = as_set(results, order, query.attrs)
            want = set(naive_nontemporal_join(query, db))
            assert got == want

    def test_no_duplicates(self, rng):
        query = JoinQuery.cycle(4)
        db = random_database(query, rng, n=12, domain=3)
        results = generic_join(query.hypergraph, db)
        assert len(results) == len(set(results))
