"""Hypothesis: kernel and object engines are observationally identical.

Satellite property suite: for randomly drawn instances —
including duplicate endpoint values, zero-length intervals and infinite
endpoints — ``engine="kernel"`` and ``engine="object"`` produce the same
normalized :class:`~repro.core.result.JoinResultSet` for every
registered algorithm, for τ ∈ {0, >0}, and for workers ∈ {1, 3}.

Instances are deliberately tiny (≤ 6 tuples per relation, domain of 3,
endpoints in a dozen-value range) so that endpoint collisions and
boundary coincidences are the *common* case, not the rare one.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import temporal_join  # noqa: E402
from repro.algorithms.registry import available_algorithms  # noqa: E402
from repro.core.errors import PlanError, QueryError  # noqa: E402
from repro.core.interval import Interval  # noqa: E402
from repro.core.query import JoinQuery  # noqa: E402
from repro.core.relation import TemporalRelation  # noqa: E402

QUERIES = (
    JoinQuery.line(3),   # acyclic, non-hierarchical -> generic kernel state
    JoinQuery.star(3),   # hierarchical -> hierarchical kernel state
    JoinQuery.triangle(),  # cyclic -> generic kernel state over a GHD
)

_INF = float("inf")

# Endpoints are drawn from a small integer range plus +/-inf so that
# duplicate endpoints, instantaneous intervals and unbounded intervals
# all occur frequently.
_lo = st.one_of(st.integers(min_value=-4, max_value=6), st.just(-_INF))
_dur = st.one_of(st.integers(min_value=0, max_value=5), st.just(_INF))


@st.composite
def _instance(draw):
    query = draw(st.sampled_from(QUERIES))
    database = {}
    for name in query.edge_names:
        attrs = query.edge(name)
        raw = draw(
            st.lists(
                st.tuples(
                    st.tuples(*[st.integers(0, 2) for _ in attrs]),
                    _lo,
                    _dur,
                ),
                min_size=0,
                max_size=6,
            )
        )
        rows, seen = [], set()
        for values, lo, dur in raw:
            if values in seen:  # relations are sets of value tuples
                continue
            seen.add(values)
            hi = _INF if dur == _INF else (dur if lo == -_INF else lo + dur)
            rows.append((values, Interval(lo, hi)))
        database[name] = TemporalRelation(name, attrs, rows)
    return query, database


@settings(max_examples=60, deadline=None)
@given(instance=_instance(), tau=st.sampled_from([0, 3]))
def test_kernel_matches_object_serial(instance, tau):
    query, database = instance
    want = temporal_join(
        query, database, tau=tau, algorithm="timefirst", engine="object"
    ).normalized()
    got = temporal_join(
        query, database, tau=tau, algorithm="timefirst", engine="kernel"
    ).normalized()
    assert got == want


@settings(max_examples=30, deadline=None)
@given(instance=_instance(), tau=st.sampled_from([0, 3]))
def test_kernel_matches_object_parallel(instance, tau):
    query, database = instance
    want = temporal_join(
        query, database, tau=tau, algorithm="timefirst", engine="object"
    ).normalized()
    for workers in (1, 3):
        got = temporal_join(
            query, database, tau=tau, algorithm="timefirst", engine="kernel",
            workers=workers, parallel_mode="inline",
        ).normalized()
        assert got == want, workers


@settings(max_examples=25, deadline=None)
@given(instance=_instance(), tau=st.sampled_from([0, 3]))
def test_engine_kwarg_uniform_across_registry(instance, tau):
    """``engine="kernel"`` is accepted by *every* registered algorithm
    and never changes its answer (algorithms without a fast path strip
    it and run unchanged)."""
    query, database = instance
    for algorithm in available_algorithms():
        try:
            want = temporal_join(
                query, database, tau=tau, algorithm=algorithm, engine="object"
            ).normalized()
        except (PlanError, QueryError):
            # e.g. timefirst-cm on a non-hierarchical query, or
            # hybrid-interval on a cyclic one; the engine kwarg must not
            # change *that* outcome either.
            with pytest.raises((PlanError, QueryError)):
                temporal_join(
                    query, database, tau=tau, algorithm=algorithm,
                    engine="kernel",
                )
            continue
        got = temporal_join(
            query, database, tau=tau, algorithm=algorithm, engine="kernel"
        ).normalized()
        assert got == want, algorithm
