"""Tests for the workload characterization module."""

import pytest

from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.workloads.stats import (
    pair_stats,
    relation_stats,
    workload_stats,
)
from repro.workloads.synthetic import SyntheticConfig, generate


def rel(name, attrs, rows):
    return TemporalRelation(name, attrs, rows)


class TestRelationStats:
    def test_basic_numbers(self):
        r = rel("R", ("a", "b"), [((1, 2), (0, 10)), ((1, 3), (5, 7))])
        s = relation_stats(r)
        assert s.rows == 2
        assert s.min_duration == 2
        assert s.max_duration == 10
        assert s.median_duration == 6
        assert s.time_span == (0, 10)
        assert s.max_key_multiplicity["a"] == 2
        assert s.max_key_multiplicity["b"] == 1

    def test_empty_relation(self):
        s = relation_stats(rel("R", ("a",), []))
        assert s.rows == 0 and s.time_span == (0, 0)


class TestPairStats:
    def test_exact_counts(self):
        left = rel("L", ("a", "b"), [((1, 0), (0, 10)), ((2, 0), (0, 1))])
        right = rel("R", ("b", "c"), [((0, "x"), (5, 20)), ((0, "y"), (50, 60))])
        s = pair_stats(left, right)
        assert s.on == ("b",)
        assert s.value_join_size == 4
        assert s.temporal_join_size == 1  # only (1,0)×(0,x) overlaps
        assert s.temporal_selectivity == 0.25

    def test_no_matches(self):
        left = rel("L", ("a", "b"), [((1, 0), (0, 10))])
        right = rel("R", ("b", "c"), [((9, "x"), (0, 10))])
        s = pair_stats(left, right)
        assert s.value_join_size == 0
        assert s.temporal_selectivity == 0.0

    def test_overlap_count_matches_brute_force(self, rng):
        left_rows = {}
        right_rows = {}
        for i in range(30):
            lo = rng.randrange(40)
            left_rows[(i, 0)] = Interval(lo, lo + rng.randrange(12))
            lo = rng.randrange(40)
            right_rows[(0, i)] = Interval(lo, lo + rng.randrange(12))
        left = rel("L", ("a", "b"), list(left_rows.items()))
        right = rel("R", ("b", "c"), list(right_rows.items()))
        s = pair_stats(left, right)
        brute = sum(
            1
            for (_, k1), iv1 in left_rows.items()
            for (k2, _), iv2 in right_rows.items()
            if k1 == k2 and iv1.intersects(iv2)
        )
        assert s.temporal_join_size == brute


class TestWorkloadStats:
    def test_synthetic_blowup_detected(self):
        q = JoinQuery.star(4)
        db = generate(q, SyntheticConfig(n_dangling=80, n_results=20, seed=5))
        stats = workload_stats(q, db)
        # The dangling mass makes some pairwise temporal join much larger
        # than the input — the whole point of the generator.
        assert stats.blowup_factor() > 3.0

    def test_report_renders(self, rng):
        from conftest import random_database

        q = JoinQuery.line(3)
        db = random_database(q, rng, n=8, domain=3)
        text = workload_stats(q, db).report()
        assert "input size" in text
        assert "blow-up factor" in text
        assert "R1 ⋈ R2" in text

    def test_disconnected_pairs_skipped(self, rng):
        from conftest import random_database

        q = JoinQuery({"R1": ("a", "b"), "R2": ("c", "d")})
        db = random_database(q, rng, n=6, domain=3)
        stats = workload_stats(q, db)
        assert stats.pairs == []
        assert stats.blowup_factor() == 0.0
