"""Tests for the ``python -m repro`` command-line demo."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_default_run(self, capsys):
        rc = main(["line3", "--dangling", "30", "--results", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 7 planner decision" in out
        assert "Cost-based advisor" in out
        assert "results in" in out
        assert "RESULT MISMATCH" not in out

    def test_single_algorithm(self, capsys):
        rc = main(
            ["star3", "--dangling", "30", "--results", "10",
             "--algorithm", "timefirst"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "timefirst" in out
        assert out.count("results in") == 1  # only the requested algorithm ran

    def test_durable_run(self, capsys):
        rc = main(["star3", "--dangling", "30", "--results", "10", "--tau", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tau = 500" in out

    def test_cyclic_family_handles_inapplicable_algorithms(self, capsys):
        rc = main(["triangle", "--dangling", "25", "--results", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "not applicable" in out  # hybrid-interval on a cycle

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["dodecahedron"])

    def test_non_finite_tau_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["line3", "--tau", "inf"])
        assert "finite" in capsys.readouterr().err

    def test_stats_flag_prints_counters(self, capsys):
        rc = main(
            ["line3", "--dangling", "20", "--results", "5", "--stats",
             "--algorithm", "timefirst"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Execution counters" in out
        assert "[timefirst]" in out
        assert "sweep.events" in out

    def test_without_stats_flag_no_counters(self, capsys):
        rc = main(["line3", "--dangling", "20", "--results", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Execution counters" not in out

    def test_parse_flag(self, capsys):
        rc = main(
            ["--parse", "R1(a,b) ⋈ R2(b,c)", "--dangling", "20",
             "--results", "5", "--algorithm", "timefirst"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "custom query" in out
        assert "R1(a, b)" in out

    def test_parse_rejects_non_binary(self):
        with pytest.raises(SystemExit):
            main(["--parse", "R1(a,b,c) ⋈ R2(c,d)"])

    def test_list_flag(self, capsys):
        rc = main(["--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TIMEFIRST sweep" in out
        assert "guarded partition" in out.lower() or "guarded" in out

    def test_describe_covers_every_algorithm(self):
        from repro.algorithms.registry import available_algorithms, describe_algorithms

        text = describe_algorithms()
        for name in available_algorithms():
            assert name in text
        assert "(no description)" not in text


class TestCLIParallel:
    def test_workers_inline_run(self, capsys):
        rc = main(
            ["line3", "--dangling", "20", "--results", "5",
             "--workers", "2", "--parallel-mode", "inline"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Parallel: 2 time shards" in out
        assert "inline mode" in out
        assert "RESULT MISMATCH" not in out

    def test_workers_with_stats_reports_shard_counters(self, capsys):
        rc = main(
            ["line3", "--dangling", "20", "--results", "5",
             "--workers", "3", "--parallel-mode", "inline", "--stats",
             "--algorithm", "timefirst"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallel.shards" in out
        assert "phase.parallel.shard00" in out

    def test_invalid_workers_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["line3", "--workers", "0"])
        assert "--workers" in capsys.readouterr().err

    def test_workers_process_mode_end_to_end(self, capsys):
        # The acceptance path: a real spawn-based pool, kept tiny.
        rc = main(
            ["line3", "--dangling", "15", "--results", "4",
             "--workers", "2", "--algorithm", "timefirst", "--stats"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Parallel: 2 time shards" in out
        assert "parallel.shards" in out
        assert "RESULT MISMATCH" not in out


class TestServeSubcommand:
    """``python -m repro serve`` dispatches to the serving-layer CLI."""

    def test_synthetic_run_with_verify_and_stats(self, capsys):
        rc = main(["serve", "synthetic", "--n", "80", "--verify", "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "one shared ingest pass" in out
        assert "Per-query SLO report" in out
        assert "MISMATCH" not in out
        assert "serve.ingest_passes" in out
        assert "serve.template_dedup" in out

    def test_sharded_ingest_run(self, capsys):
        rc = main(["serve", "synthetic", "--n", "60", "--workers", "3",
                   "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MISMATCH" not in out

    def test_workload_tau_defaults_to_paper_value(self, capsys):
        rc = main(["serve", "ldbc", "--n", "60"])
        assert rc == 0
        assert "tau=11" in capsys.readouterr().out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "enron"])
        assert "invalid choice" in capsys.readouterr().err
