"""Tests for the JOINFIRST baseline."""

import pytest

from repro.algorithms.joinfirst import joinfirst_join
from repro.algorithms.naive import naive_join, naive_nontemporal_join
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation

from conftest import random_database


class TestJoinFirst:
    @pytest.mark.parametrize(
        "query",
        [
            JoinQuery.line(3),
            JoinQuery.star(3),
            JoinQuery.triangle(),
            JoinQuery.cycle(4),
            JoinQuery.bowtie(),
        ],
    )
    def test_matches_naive(self, query, rng):
        for _ in range(3):
            db = random_database(query, rng, n=10, domain=3)
            got = joinfirst_join(query, db)
            want = naive_join(query, db)
            assert got.normalized() == want.normalized()

    def test_durable(self, rng):
        q = JoinQuery.line(3)
        for tau in [0, 4, 9]:
            db = random_database(q, rng, n=12, domain=3)
            got = joinfirst_join(q, db, tau=tau)
            want = naive_join(q, db, tau=tau)
            assert got.normalized() == want.normalized()

    def test_filters_temporal_nonanswers(self):
        # Value matches exist but intervals never intersect.
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 5))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (10, 20))]),
        }
        assert len(naive_nontemporal_join(q, db)) == 1
        assert len(joinfirst_join(q, db)) == 0

    def test_interval_attached(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 8))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (4, 20))]),
        }
        out = joinfirst_join(q, db)
        assert out.rows == [((1, 2, 3), Interval(4, 8))]

    def test_pays_for_nontemporal_blowup(self, rng):
        """Witness the strategy's weakness: it enumerates every value match."""
        q = JoinQuery.line(2)
        hub = [((i, 0), (i * 10, i * 10 + 1)) for i in range(30)]
        spokes = [((0, i), (5000 + i, 5000 + i)) for i in range(30)]
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), hub),
            "R2": TemporalRelation("R2", ("x2", "x3"), spokes),
        }
        out = joinfirst_join(q, db)
        assert len(out) == 0  # all 900 value pairs are temporally dead
