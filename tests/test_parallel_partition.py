"""Tests for the time-domain partitioner and the exactly-once ownership rule."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.errors import QueryError
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.parallel.partition import (
    TimePartition,
    collect_endpoints,
    partition_timeline,
    replication_factor,
    shard_databases,
)

from conftest import random_database

INF = float("inf")

cut_lists = st.lists(
    st.integers(min_value=-100, max_value=100), min_size=0, max_size=6, unique=True
).map(lambda xs: tuple(sorted(xs)))

instants = st.one_of(
    st.integers(min_value=-150, max_value=150),
    st.sampled_from([-INF, INF]),
)


class TestTimePartition:
    def test_validation_rejects_unsorted_cuts(self):
        with pytest.raises(QueryError):
            TimePartition((5, 3))

    def test_validation_rejects_duplicate_cuts(self):
        with pytest.raises(QueryError):
            TimePartition((3, 3))

    def test_validation_rejects_infinite_cuts(self):
        with pytest.raises(QueryError):
            TimePartition((float("inf"),))
        with pytest.raises(QueryError):
            TimePartition((float("nan"),))

    def test_single_shard(self):
        p = TimePartition(())
        assert p.n_shards == 1
        assert p.owner(-INF) == 0
        assert p.owner(42) == 0
        assert p.owner(INF) == 0
        assert p.window(0) == Interval.always()

    @given(cuts=cut_lists, t=instants)
    @settings(max_examples=200, deadline=None)
    def test_every_instant_owned_by_exactly_one_shard(self, cuts, t):
        partition = TimePartition(cuts)
        owner = partition.owner(t)
        assert 0 <= owner < partition.n_shards
        # The owned range [c_{i-1}, c_i) is the half-open window check.
        if owner > 0:
            assert cuts[owner - 1] <= t
        if owner < len(cuts):
            assert t < cuts[owner]

    @given(cuts=cut_lists, a=instants, b=instants)
    @settings(max_examples=200, deadline=None)
    def test_owner_is_monotone(self, cuts, a, b):
        partition = TimePartition(cuts)
        if a <= b:
            assert partition.owner(a) <= partition.owner(b)

    def test_cut_point_belongs_to_the_shard_starting_there(self):
        partition = TimePartition((10, 20))
        assert partition.owner(9) == 0
        assert partition.owner(10) == 1
        assert partition.owner(19) == 1
        assert partition.owner(20) == 2

    def test_windows_tile_the_axis(self):
        partition = TimePartition((0, 10))
        assert partition.window(0) == Interval(-INF, 0)
        assert partition.window(1) == Interval(0, 10)
        assert partition.window(2) == Interval(10, INF)

    @given(
        cuts=cut_lists,
        lo=st.integers(min_value=-150, max_value=150),
        width=st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=200, deadline=None)
    def test_shard_range_is_exactly_the_owners_inside_the_interval(
        self, cuts, lo, width
    ):
        partition = TimePartition(cuts)
        interval = Interval(lo, lo + width)
        first, last = partition.shard_range(interval)
        assert first == partition.owner(interval.lo)
        assert last == partition.owner(interval.hi)
        assert first <= last
        # Every cut strictly inside the interval advances the shard range.
        inside = [c for c in cuts if interval.lo < c <= interval.hi]
        assert last - first == len(inside)

    def test_unbounded_interval_spans_all_shards(self):
        partition = TimePartition((0, 10))
        assert partition.shard_range(Interval.always()) == (0, 2)


class TestPartitionTimeline:
    def test_one_shard_requested(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=10)
        assert partition_timeline(db, 1).n_shards == 1

    def test_invalid_shard_count(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=4)
        with pytest.raises(QueryError):
            partition_timeline(db, 0)

    def test_empty_database_degrades_to_one_shard(self):
        rel = TemporalRelation("R1", ("a", "b"))
        assert partition_timeline({"R1": rel}, 4).n_shards == 1

    def test_identical_endpoints_degrade_to_one_shard(self):
        rel = TemporalRelation(
            "R1", ("a", "b"), [((i, i), (5, 5)) for i in range(10)]
        )
        assert partition_timeline({"R1": rel}, 4).n_shards == 1

    def test_always_tuples_are_ignored_for_cuts(self):
        rel = TemporalRelation(
            "R1", ("a", "b"),
            [((0, 0), Interval.always()), ((1, 1), (0, 1)), ((2, 2), (10, 11))],
        )
        partition = partition_timeline({"R1": rel}, 2)
        assert partition.n_shards == 2
        assert all(c not in (-INF, INF) for c in partition.cuts)

    def test_endpoint_balance_under_skew(self):
        # 100 tuples crammed into [0, 10], 4 tuples spread to 1000: a
        # width-balanced split would put ~all endpoints in shard 0.
        rows = [((i, i), (i % 10, i % 10 + 1)) for i in range(100)]
        rows += [((100 + i, 100 + i), (900 + i, 1000)) for i in range(4)]
        db = {"R1": TemporalRelation("R1", ("a", "b"), rows)}
        partition = partition_timeline(db, 4)
        endpoints = collect_endpoints(db)
        counts = [0] * partition.n_shards
        for t in endpoints:
            counts[partition.owner(t)] += 1
        assert partition.n_shards >= 3
        assert max(counts) <= len(endpoints) / 2

    def test_requested_shards_upper_bounds_effective(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=15)
        for p in (2, 3, 7):
            assert partition_timeline(db, p).n_shards <= p


class TestShardDatabases:
    def test_every_shard_has_every_relation(self, rng):
        q = JoinQuery.line(3)
        db = random_database(q, rng, n=12)
        partition = partition_timeline(db, 3)
        shard_dbs = shard_databases(db, partition)
        assert len(shard_dbs) == partition.n_shards
        for shard_db in shard_dbs:
            assert set(shard_db) == set(db)
            q.validate(shard_db)

    def test_rows_assigned_to_overlapping_shards_only(self, rng):
        q = JoinQuery.line(2)
        db = random_database(q, rng, n=20)
        partition = partition_timeline(db, 4)
        shard_dbs = shard_databases(db, partition)
        for name, rel in db.items():
            for values, interval in rel:
                first, last = partition.shard_range(interval)
                for shard, shard_db in enumerate(shard_dbs):
                    present = any(
                        v == values for v, _ in shard_db[name].rows
                    )
                    assert present == (first <= shard <= last)

    def test_replication_factor(self):
        rows = [((0, 0), (0, 100)), ((1, 1), (0, 10)), ((2, 2), (90, 100))]
        db = {"R1": TemporalRelation("R1", ("a", "b"), rows)}
        partition = TimePartition((50,))
        shard_dbs = shard_databases(db, partition)
        total, replicated = replication_factor(db, shard_dbs)
        assert total == 3
        assert replicated == 1  # only the [0, 100] tuple straddles the cut
