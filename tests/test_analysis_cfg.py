"""CFG golden-shape tests and worklist-solver behavior.

The shapes are deliberate goldens: block numbering is deterministic
(entry=0, exit=1, then creation order), so a change to the builder that
re-routes an edge shows up as a diff here before it silently changes
what a flow rule can prove.
"""

import ast

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    MAYBE,
    NONE,
    NONNONE,
    OptionalNoneLattice,
    ReachingDefinitions,
    solve_forward,
)


def _func(source: str) -> ast.FunctionDef:
    node = ast.parse(source).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


class TestCfgShapes:
    def test_branch_golden(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        ))
        # 0=entry(if header), 1=exit, 2=after, 3=then, 4=else
        assert cfg.shape() == {0: [3, 4], 1: [], 2: [1], 3: [2], 4: [2]}
        labels = {lab[0] for _, lab in cfg.blocks[0].succs}
        assert labels == {"true", "false"}

    def test_loop_golden(self):
        cfg = build_cfg(_func(
            "def g(xs):\n"
            "    total = 0\n"
            "    for x in xs:\n"
            "        total = total + x\n"
            "    return total\n"
        ))
        # 0=entry, 1=exit, 2=header, 3=after, 4=body (back edge 4->2)
        assert cfg.shape() == {0: [2], 1: [], 2: [3, 4], 3: [1], 4: [2]}
        header_labels = {lab[0] for _, lab in cfg.blocks[2].succs}
        assert header_labels == {"loop-body", "false"}

    def test_try_golden(self):
        cfg = build_cfg(_func(
            "def h():\n"
            "    try:\n"
            "        x = risky()\n"
            "    except ValueError:\n"
            "        x = 0\n"
            "    return x\n"
        ))
        # 0=entry(try header), 1=exit, 2=body, 3=after, 4=handler. The
        # handler is reachable from the protected body (exception may
        # fire before or after the assignment).
        assert cfg.shape() == {0: [2], 1: [], 2: [3, 4], 3: [1], 4: [3]}

    def test_break_and_continue_target_loop_blocks(self):
        cfg = build_cfg(_func(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x < 0:\n"
            "            continue\n"
            "        if x > 9:\n"
            "            break\n"
            "    return 1\n"
        ))
        header = next(
            b for b in cfg.blocks.values()
            if b.stmts and isinstance(b.stmts[0], ast.For)
        )
        continue_block = next(
            b for b in cfg.blocks.values()
            if b.stmts and isinstance(b.stmts[-1], ast.Continue)
        )
        assert [dst for dst, _ in continue_block.succs] == [header.id]
        after = [dst for dst, lab in header.succs if lab and lab[0] == "false"]
        break_block = next(
            b for b in cfg.blocks.values()
            if b.stmts and isinstance(b.stmts[-1], ast.Break)
        )
        assert [dst for dst, _ in break_block.succs] == after

    def test_return_edges_to_exit(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"
        ))
        return_blocks = [
            b for b in cfg.blocks.values()
            if b.stmts and isinstance(b.stmts[-1], ast.Return)
        ]
        assert len(return_blocks) == 2
        for block in return_blocks:
            assert [dst for dst, _ in block.succs] == [cfg.exit]


class TestWorklistSolver:
    def test_convergence_on_loop_with_join(self):
        func = _func(
            "def f(xs):\n"
            "    acc = []\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            y = 1\n"
            "        else:\n"
            "            y = 2\n"
            "        acc.append(y)\n"
            "    return acc\n"
        )
        cfg = build_cfg(func)
        rd = ReachingDefinitions(params=["xs"])
        solution = solve_forward(cfg, rd)  # must terminate
        ret = func.body[-1]
        state = solution.before(ret)
        assert state is not None
        # Both branch assignments of y survive the loop-exit join.
        assert len(rd.definitions(state, "y")) == 2
        # acc has exactly its single initializer.
        (stmt, value), = rd.definitions(state, "acc")
        assert isinstance(value, ast.List)

    def test_param_definitions_are_sentinels(self):
        func = _func("def f(a):\n    return a\n")
        cfg = build_cfg(func)
        rd = ReachingDefinitions(params=["a"])
        solution = solve_forward(cfg, rd)
        state = solution.before(func.body[0])
        assert rd.definitions(state, "a") == [(None, None)]

    def test_non_convergence_raises(self):
        class Diverging(ReachingDefinitions):
            def join(self, a, b):
                merged = dict(super().join(a, b))
                merged[f"fresh{len(merged)}"] = frozenset()  # grows forever
                return merged

        func = _func(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        x = x\n"
        )
        with pytest.raises(RuntimeError):
            solve_forward(build_cfg(func), Diverging(), max_iterations=50)


class TestOptionalNoneLattice:
    def _states(self, source):
        func = _func(source)
        cfg = build_cfg(func)
        solution = solve_forward(cfg, OptionalNoneLattice("stats"))
        return func, solution

    def test_is_none_branch_rebind(self):
        func, solution = self._states(
            "def f(stats):\n"
            "    if stats is None:\n"
            "        stats = make()\n"
            "    use(stats)\n"
        )
        assert solution.before(func.body[-1]) == NONNONE

    def test_is_not_none_refinement(self):
        func, solution = self._states(
            "def f(stats):\n"
            "    if stats is not None:\n"
            "        use(stats)\n"
            "    other(stats)\n"
        )
        inside = func.body[0].body[0]
        assert solution.before(inside) == NONNONE
        assert solution.before(func.body[-1]) == MAYBE

    def test_assignments(self):
        func, solution = self._states(
            "def f():\n"
            "    stats = None\n"
            "    a(stats)\n"
            "    stats = Make()\n"
            "    b(stats)\n"
        )
        assert solution.before(func.body[1]) == NONE
        assert solution.before(func.body[3]) == NONNONE

    def test_truthiness_narrows_only_true_branch(self):
        func, solution = self._states(
            "def f(stats):\n"
            "    if stats:\n"
            "        use(stats)\n"
            "    else:\n"
            "        other(stats)\n"
        )
        assert solution.before(func.body[0].body[0]) == NONNONE
        # Falsy is not None-y: empty containers are falsy non-Nones.
        assert solution.before(func.body[0].orelse[0]) == MAYBE

    def test_loop_join_keeps_maybe(self):
        func, solution = self._states(
            "def f(stats, xs):\n"
            "    for x in xs:\n"
            "        if stats is not None:\n"
            "            stats = None\n"
            "    tail(stats)\n"
        )
        assert solution.before(func.body[-1]) == MAYBE
