"""Tests for the bench-allen entry point and its regression gate."""

import json
from pathlib import Path

from repro.bench.allen import (
    check_against_baseline,
    main,
    make_workload,
    naive_predicate_join,
    run_bench,
    run_cell,
)


def _tiny_doc():
    # One sweep-vs-forward-scan cell and one sweep-vs-naive cell at the
    # smallest size keeps the test fast while still timing real sweeps.
    return run_bench(cells_wanted=[("overlaps", "1k"), ("meets", "1k")], repeat=1)


def _pinned_doc():
    # Gate-logic tests compare ratios, not machines: pin the measured
    # speedups so a noisy cell cannot change which gate rule fires.
    doc = _tiny_doc()
    for cell in doc["cells"]:
        cell["speedup"] = 2.0
    return doc


class TestRunBench:
    def test_document_shape(self):
        doc = _tiny_doc()
        assert doc["benchmark"] == "allen"
        assert [(c["family"], c["size"]) for c in doc["cells"]] == [
            ("overlaps", "1k"), ("meets", "1k"),
        ]
        for cell in doc["cells"]:
            assert cell["ok"], cell
            assert cell["baseline_seconds"] > 0
            assert cell["sweep_seconds"] > 0
        assert doc["cells"][0]["baseline"] == "forward-scan"
        assert doc["cells"][1]["baseline"] == "naive"
        assert "speedup" in doc["rendered"]

    def test_cell_cross_validates_outputs(self):
        cell = run_cell("during", "1k", repeat=1)
        assert cell["ok"]
        assert cell["pairs"] > 0

    def test_grid_workload_makes_equality_atoms_fire(self):
        # Float endpoints almost never coincide; the gridded workload
        # must produce a nonzero meets count or the cell is vacuous.
        left, right = make_workload("1k", seed=1000, grid=True)
        assert naive_predicate_join(left, right, "meets")


class TestGate:
    def test_passes_against_itself(self):
        doc = _pinned_doc()
        assert check_against_baseline(doc, doc, tolerance=0.15) == []

    def test_flags_regression_beyond_tolerance(self):
        doc = _pinned_doc()
        inflated = json.loads(json.dumps(doc))
        for cell in inflated["cells"]:
            cell["speedup"] *= 10
        failures = check_against_baseline(doc, inflated, tolerance=0.15)
        assert len(failures) == len(doc["cells"])
        assert all("regressed" in f for f in failures)

    def test_flags_sweep_slower_than_baseline(self):
        doc = _pinned_doc()
        slow = json.loads(json.dumps(doc))
        for cell in slow["cells"]:
            cell["speedup"] = 0.5
        failures = check_against_baseline(slow, doc, tolerance=0.15)
        assert all("slower than" in f for f in failures)

    def test_flags_result_mismatch(self):
        doc = _pinned_doc()
        bad = json.loads(json.dumps(doc))
        bad["cells"][0]["ok"] = False
        failures = check_against_baseline(bad, doc, tolerance=0.15)
        assert any("different results" in f for f in failures)

    def test_new_cells_have_nothing_to_regress_against(self):
        doc = _pinned_doc()
        assert check_against_baseline(doc, {"cells": []}) == []


class TestMain:
    def test_check_mode_missing_baseline(self, tmp_path, capsys):
        rc = main([
            "--check", "--baseline", str(tmp_path / "nope.json"),
        ])
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().out

    def test_committed_baseline_meets_the_issue_floor(self):
        # The default-strategy flip rests on the committed measurement:
        # lazy-sweep must beat forward-scan by >= 1.3x at N = 10k.
        baseline = Path(__file__).resolve().parent.parent / "BENCH_allen.json"
        doc = json.loads(baseline.read_text())
        cell = next(
            c for c in doc["cells"]
            if c["family"] == "overlaps" and c["size"] == "10k"
        )
        assert cell["ok"]
        assert cell["speedup"] >= 1.3
