"""Tests for the TIMEFIRST driver and the generic GHD sweep state."""

import pytest

from repro.algorithms.generic_state import GenericGHDState
from repro.algorithms.naive import naive_join
from repro.algorithms.timefirst import sweep, timefirst_join
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation

from conftest import random_database


class TestGenericState:
    @pytest.mark.parametrize(
        "query",
        [
            JoinQuery.line(3),
            JoinQuery.line(4),
            JoinQuery.triangle(),
            JoinQuery.cycle(4),
            JoinQuery.cycle(5),
            JoinQuery.bowtie(),
        ],
    )
    def test_matches_naive(self, query, rng):
        for _ in range(4):
            db = random_database(query, rng, n=10, domain=3)
            state = GenericGHDState(query, db)
            got = sweep(query, db, state)
            want = naive_join(query, db)
            assert got.normalized() == want.normalized()

    def test_acyclic_uses_trivial_ghd(self):
        state = GenericGHDState(JoinQuery.line(4))
        assert state.ghd.is_trivial()

    def test_cyclic_uses_fhtw_ghd(self):
        state = GenericGHDState(JoinQuery.triangle())
        assert len(state.ghd.bags) == 1

    def test_insert_delete_bookkeeping(self):
        q = JoinQuery.line(2)
        state = GenericGHDState(q)
        state.insert("R1", (1, 2), Interval(0, 5))
        assert (1, 2) in state._active["R1"]
        assert state._attr_index["R1"]["x2"][2] == {(1, 2)}
        state.delete("R1", (1, 2), Interval(0, 5))
        assert not state._active["R1"]
        assert 2 not in state._attr_index["R1"]["x2"]

    def test_enumerate_prunes_early(self):
        # No matching partner: enumerate returns without materializing.
        q = JoinQuery.line(2)
        state = GenericGHDState(q)
        from repro.core.result import JoinResultSet

        out = JoinResultSet(q.attrs)
        state.insert("R1", (1, 2), Interval(0, 5))
        state.enumerate_results("R1", (1, 2), Interval(0, 5), out)
        assert len(out) == 0


class TestTimefirstDispatch:
    def test_hierarchical_query_uses_hierarchical_state(self, rng):
        # Indirect check: results still correct and attribute layout right.
        q = JoinQuery.star(3)
        db = random_database(q, rng, n=10, domain=3)
        got = timefirst_join(q, db)
        assert got.attrs == q.attrs
        assert got.normalized() == naive_join(q, db).normalized()

    def test_explicit_state_factory(self, rng):
        q = JoinQuery.star(3)
        db = random_database(q, rng, n=8, domain=3)
        got = timefirst_join(
            q, db, state_factory=lambda query, database: GenericGHDState(query, database)
        )
        assert got.normalized() == naive_join(q, db).normalized()

    def test_durable_join(self, rng):
        q = JoinQuery.line(3)
        for tau in [0, 3, 8]:
            db = random_database(q, rng, n=12, domain=3)
            got = timefirst_join(q, db, tau=tau)
            want = naive_join(q, db, tau=tau)
            assert got.normalized() == want.normalized()

    def test_durable_results_keep_original_intervals(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 10))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (2, 20))]),
        }
        got = timefirst_join(q, db, tau=6)
        # Result interval must be the un-shrunk [2, 10].
        assert got.rows == [((1, 2, 3), Interval(2, 10))]

    def test_empty_database(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2")),
            "R2": TemporalRelation("R2", ("x2", "x3")),
        }
        assert len(timefirst_join(q, db)) == 0

    def test_negative_and_float_times(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (-5.5, 0.5))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (-1.25, 9.0))]),
        }
        got = timefirst_join(q, db)
        assert got.rows == [((1, 2, 3), Interval(-1.25, 0.5))]

    def test_unbounded_intervals(self):
        q = JoinQuery.line(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), Interval.always())]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (4, 7))]),
        }
        got = timefirst_join(q, db)
        assert got.rows == [((1, 2, 3), Interval(4, 7))]

    def test_string_and_mixed_domains(self):
        q = JoinQuery.star(2)
        db = {
            "R1": TemporalRelation("R1", ("x1", "y"), [(("alpha", 0), (0, 4))]),
            "R2": TemporalRelation("R2", ("x2", "y"), [((17, 0), (2, 6))]),
        }
        got = timefirst_join(q, db)
        assert got.values_only() == [("alpha", 0, 17)]
