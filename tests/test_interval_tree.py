"""Tests for StaticIntervalTree and DynamicIntervalIndex."""

import random

import pytest

from repro.core.interval import Interval
from repro.datastructures.interval_tree import DynamicIntervalIndex, StaticIntervalTree


def brute_overlap(items, probe):
    return sorted(
        (iv, p) for iv, p in items if iv.intersects(probe)
    )


def random_items(rng, n, span=100):
    items = []
    for i in range(n):
        lo = rng.randrange(span)
        hi = lo + rng.randrange(span // 4)
        items.append((Interval(lo, hi), i))
    return items


class TestStaticTree:
    def test_empty(self):
        tree = StaticIntervalTree([])
        assert len(tree) == 0
        assert tree.stab(5) == []
        assert tree.overlapping(Interval(0, 10)) == []

    def test_single_item_stab(self):
        tree = StaticIntervalTree([(Interval(2, 6), "x")])
        assert tree.stab(2) == [(Interval(2, 6), "x")]
        assert tree.stab(6) == [(Interval(2, 6), "x")]
        assert tree.stab(7) == []

    def test_overlap_touching(self):
        tree = StaticIntervalTree([(Interval(2, 6), "x")])
        assert tree.overlapping(Interval(6, 9)) == [(Interval(2, 6), "x")]
        assert tree.overlapping(Interval(0, 2)) == [(Interval(2, 6), "x")]

    def test_overlap_disjoint(self):
        tree = StaticIntervalTree([(Interval(2, 6), "x")])
        assert tree.overlapping(Interval(7, 9)) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_against_brute_force(self, seed):
        rng = random.Random(seed)
        items = random_items(rng, 80)
        tree = StaticIntervalTree(items)
        for _ in range(40):
            lo = rng.randrange(120)
            probe = Interval(lo, lo + rng.randrange(30))
            assert sorted(tree.overlapping(probe)) == brute_overlap(items, probe)

    @pytest.mark.parametrize("seed", range(3))
    def test_stab_randomized(self, seed):
        rng = random.Random(seed + 100)
        items = random_items(rng, 60)
        tree = StaticIntervalTree(items)
        for t in range(0, 130, 7):
            expect = sorted((iv, p) for iv, p in items if iv.contains(t))
            assert sorted(tree.stab(t)) == expect


class TestDynamicIndex:
    def test_empty(self):
        idx = DynamicIntervalIndex()
        assert len(idx) == 0
        assert idx.overlapping(Interval(0, 5)) == []

    def test_insert_then_query(self):
        idx = DynamicIntervalIndex()
        idx.insert(Interval(1, 4), "a")
        idx.insert(Interval(3, 9), "b")
        hits = {p for _, p in idx.overlapping(Interval(4, 5))}
        assert hits == {"a", "b"}

    def test_remove(self):
        idx = DynamicIntervalIndex()
        idx.insert(Interval(1, 4), "a")
        idx.remove(Interval(1, 4), "a")
        assert len(idx) == 0
        assert idx.overlapping(Interval(0, 10)) == []

    def test_remove_missing(self):
        idx = DynamicIntervalIndex()
        with pytest.raises(KeyError):
            idx.remove(Interval(0, 1), "nope")

    def test_bulk_load(self):
        rng = random.Random(0)
        items = random_items(rng, 50)
        idx = DynamicIntervalIndex(items)
        assert len(idx) == 50
        assert sorted(idx.items()) == sorted(items)

    def test_stab(self):
        idx = DynamicIntervalIndex([(Interval(0, 5), "a"), (Interval(6, 9), "b")])
        assert [p for _, p in idx.stab(5)] == ["a"]

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_mixed_ops(self, seed):
        rng = random.Random(seed + 9)
        idx = DynamicIntervalIndex()
        alive = []
        for step in range(400):
            if rng.random() < 0.65 or not alive:
                lo = rng.randrange(100)
                iv = Interval(lo, lo + rng.randrange(25))
                idx.insert(iv, step)
                alive.append((iv, step))
            else:
                victim = alive.pop(rng.randrange(len(alive)))
                idx.remove(*victim)
            if step % 20 == 0:
                lo = rng.randrange(110)
                probe = Interval(lo, lo + rng.randrange(30))
                assert sorted(idx.overlapping(probe)) == brute_overlap(alive, probe)
        assert len(idx) == len(alive)
