"""Tests for the addressable min-heap."""

import random

import pytest

from repro.datastructures.heap import AddressableHeap


class TestBasics:
    def test_push_peek_pop(self):
        h = AddressableHeap()
        h.push(5, "a")
        h.push(2, "b")
        h.push(9, "c")
        assert h.peek() == (2, "b")
        assert h.pop() == (2, "b")
        assert h.pop() == (5, "a")
        assert h.pop() == (9, "c")

    def test_len_and_contains(self):
        h = AddressableHeap()
        h.push(1, "x")
        assert len(h) == 1 and "x" in h and "y" not in h
        h.pop()
        assert len(h) == 0 and not h

    def test_duplicate_item_rejected(self):
        h = AddressableHeap()
        h.push(1, "x")
        with pytest.raises(KeyError):
            h.push(2, "x")

    def test_peek_empty(self):
        with pytest.raises(IndexError):
            AddressableHeap().peek()

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            AddressableHeap().pop()

    def test_min_key(self):
        h = AddressableHeap()
        assert h.min_key() is None
        h.push(4, "a")
        h.push(1, "b")
        assert h.min_key() == 1

    def test_duplicate_keys_allowed(self):
        h = AddressableHeap()
        h.push(1, "a")
        h.push(1, "b")
        popped = {h.pop()[1], h.pop()[1]}
        assert popped == {"a", "b"}


class TestRemoveAndUpdate:
    def test_remove_by_handle(self):
        h = AddressableHeap()
        for k, item in [(3, "a"), (1, "b"), (7, "c")]:
            h.push(k, item)
        assert h.remove("a") == 3
        assert "a" not in h
        assert [h.pop()[1] for _ in range(2)] == ["b", "c"]

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            AddressableHeap().remove("nope")

    def test_remove_root(self):
        h = AddressableHeap()
        h.push(1, "a")
        h.push(2, "b")
        h.remove("a")
        assert h.peek() == (2, "b")

    def test_update_key_decrease(self):
        h = AddressableHeap()
        h.push(5, "a")
        h.push(3, "b")
        h.update_key("a", 1)
        assert h.peek() == (1, "a")

    def test_update_key_increase(self):
        h = AddressableHeap()
        h.push(1, "a")
        h.push(3, "b")
        h.update_key("a", 9)
        assert h.peek() == (3, "b")

    def test_update_missing(self):
        with pytest.raises(KeyError):
            AddressableHeap().update_key("x", 1)

    def test_key_of(self):
        h = AddressableHeap()
        h.push(42, "a")
        assert h.key_of("a") == 42
        with pytest.raises(KeyError):
            h.key_of("b")


class TestRandomized:
    def test_heapsort_agrees_with_sorted(self):
        rng = random.Random(3)
        h = AddressableHeap()
        keys = [rng.randrange(1000) for _ in range(300)]
        for i, k in enumerate(keys):
            h.push(k, i)
        out = [h.pop()[0] for _ in range(len(keys))]
        assert out == sorted(keys)

    def test_interleaved_ops_keep_invariant(self):
        rng = random.Random(7)
        h = AddressableHeap()
        alive = {}
        for step in range(2000):
            op = rng.random()
            if op < 0.5 or not alive:
                item = f"i{step}"
                key = rng.randrange(100)
                h.push(key, item)
                alive[item] = key
            elif op < 0.75:
                item = rng.choice(list(alive))
                h.remove(item)
                del alive[item]
            elif op < 0.9:
                item = rng.choice(list(alive))
                key = rng.randrange(100)
                h.update_key(item, key)
                alive[item] = key
            else:
                key, item = h.pop()
                assert alive.pop(item) == key
                assert all(key <= k for k in alive.values())
            assert h.check_invariant()
        assert len(h) == len(alive)
