"""Tests for HybridGuarded / HYBRID-INTERVAL (Algorithm 6)."""

import pytest

from repro.algorithms.hybrid_interval import hybrid_interval_join
from repro.algorithms.naive import naive_join
from repro.core.errors import PlanError
from repro.core.interval import Interval
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation
from repro.nontemporal.ghd import find_guarded_partition

from conftest import random_database


class TestApplicability:
    def test_rejects_unguarded(self):
        q = JoinQuery.triangle()
        db = {n: TemporalRelation(n, q.edge(n), []) for n in q.edge_names}
        with pytest.raises(PlanError):
            hybrid_interval_join(q, db)

    def test_accepts_lines_and_stars(self, rng):
        for q in [JoinQuery.line(3), JoinQuery.star(3)]:
            db = random_database(q, rng, n=6, domain=3)
            hybrid_interval_join(q, db)  # no raise


class TestLine3IntervalJoinPath:
    """Line-3 exercises the two-group forward-scan shortcut."""

    def test_figure2(self, figure2_database):
        q = JoinQuery.line(3)
        got = hybrid_interval_join(q, figure2_database)
        want = naive_join(q, figure2_database)
        assert got.normalized() == want.normalized()

    def test_core_interval_prunes(self):
        # R2's tuple (core) has a narrow interval; residual pairs outside
        # it must be clipped away.
        q = JoinQuery.line(3)
        db = {
            "R1": TemporalRelation(
                "R1", ("x1", "x2"), [((1, 2), (0, 3)), ((9, 2), (5, 9))]
            ),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (4, 20))]),
            "R3": TemporalRelation("R3", ("x3", "x4"), [((3, 4), (0, 30))]),
        }
        got = hybrid_interval_join(q, db)
        assert got.values_only() == [(9, 2, 3, 4)]
        assert got.rows[0][1] == Interval(5, 9)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_lines_match_naive(self, n, rng):
        q = JoinQuery.line(n)
        for _ in range(4):
            db = random_database(q, rng, n=10, domain=3)
            got = hybrid_interval_join(q, db)
            want = naive_join(q, db)
            assert got.normalized() == want.normalized()


class TestStarProductSweep:
    """Stars with k ≥ 3 leaves exercise the multi-group product sweep."""

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_stars_match_naive(self, n, rng):
        q = JoinQuery.star(n)
        for _ in range(3):
            db = random_database(q, rng, n=8, domain=3)
            got = hybrid_interval_join(q, db)
            want = naive_join(q, db)
            assert got.normalized() == want.normalized()

    def test_no_duplicate_results_on_shared_endpoints(self):
        q = JoinQuery.star(3)
        db = {
            f"R{i}": TemporalRelation(
                f"R{i}", (f"x{i}", "y"), [((j, "h"), (0, 10)) for j in range(3)]
            )
            for i in (1, 2, 3)
        }
        got = hybrid_interval_join(q, db)
        assert len(got) == 27
        assert len(set(got.values_only())) == 27


class TestDurable:
    def test_durable_line(self, rng):
        q = JoinQuery.line(3)
        for tau in [0, 3, 9]:
            db = random_database(q, rng, n=12, domain=3)
            got = hybrid_interval_join(q, db, tau=tau)
            want = naive_join(q, db, tau=tau)
            assert got.normalized() == want.normalized()

    def test_durable_interval_restoration(self):
        q = JoinQuery.line(3)
        db = {
            "R1": TemporalRelation("R1", ("x1", "x2"), [((1, 2), (0, 10))]),
            "R2": TemporalRelation("R2", ("x2", "x3"), [((2, 3), (2, 12))]),
            "R3": TemporalRelation("R3", ("x3", "x4"), [((3, 4), (0, 9))]),
        }
        got = hybrid_interval_join(q, db, tau=5)
        assert got.rows == [((1, 2, 3, 4), Interval(2, 9))]


class TestExplicitPartition:
    def test_custom_partition(self, rng):
        q = JoinQuery.line(3)
        gp = find_guarded_partition(q.hypergraph)
        db = random_database(q, rng, n=10, domain=3)
        got = hybrid_interval_join(q, db, partition=gp)
        assert got.normalized() == naive_join(q, db).normalized()

    def test_tpc_style_single_residual_group(self, rng):
        # Q_tpc3-like shape: one relation holds all the private attributes.
        q = JoinQuery(
            {
                "customer": ("CK",),
                "orders": ("OK", "CK"),
                "lineitem": ("OK", "PK", "SK"),
            }
        )
        for _ in range(3):
            db = random_database(q, rng, n=10, domain=3)
            got = hybrid_interval_join(q, db)
            want = naive_join(q, db)
            assert got.normalized() == want.normalized()
