"""Determinism regression tests (the ``determinism`` lint rule's runtime twin).

Every registered algorithm must produce *byte-identical* normalized
results regardless of relation insertion order (database dict key order)
and tuple insertion order within each relation. The PR 2 parallel engine
merges shard outputs exactly once and therefore depends on this: any
hash-ordered iteration (set ordering, dict-of-sets, ...) inside an
algorithm would surface here as a flaky diff.
"""

import random

import pytest

from repro.algorithms.registry import available_algorithms, temporal_join
from repro.core.query import JoinQuery
from repro.core.relation import TemporalRelation

from conftest import random_database

#: line(2) is hierarchical AND guarded, so every registered algorithm —
#: including the (r-)hierarchical-only timefirst-cm and the
#: guarded-partition-only hybrid-interval — is applicable to it.
UNIVERSAL_QUERY = JoinQuery.line(2)

#: Applicable-everywhere algorithms additionally run on a cyclic query.
CYCLIC_CAPABLE = ["timefirst", "hybrid", "baseline", "joinfirst", "naive"]


def canonical_bytes(result):
    """Byte serialization of a result set, stable iff output is deterministic."""
    rows = [
        (values, (interval.lo, interval.hi))
        for values, interval in result.normalized()
    ]
    return repr(rows).encode()


def shuffled_database(database, seed):
    """Same logical database, different relation and tuple insertion order."""
    rng = random.Random(seed)
    names = list(database)
    rng.shuffle(names)
    out = {}
    for name in names:
        relation = database[name]
        rows = list(relation)
        rng.shuffle(rows)
        out[name] = TemporalRelation(relation.name, relation.attrs, rows)
    return out


def run_both_orders(algorithm, query, seed, tau=0):
    rng = random.Random(seed)
    db = random_database(query, rng, n=12, domain=3, time_span=30)
    first = temporal_join(query, db, tau=tau, algorithm=algorithm)
    second = temporal_join(
        query, shuffled_database(db, seed + 1), tau=tau, algorithm=algorithm
    )
    return canonical_bytes(first), canonical_bytes(second)


@pytest.mark.parametrize("algorithm", available_algorithms())
def test_insertion_order_invariance_universal_query(algorithm):
    got, want = run_both_orders(algorithm, UNIVERSAL_QUERY, seed=2022)
    assert got == want


@pytest.mark.parametrize("algorithm", available_algorithms())
def test_insertion_order_invariance_with_durability(algorithm):
    got, want = run_both_orders(algorithm, UNIVERSAL_QUERY, seed=612, tau=4)
    assert got == want


@pytest.mark.parametrize("algorithm", CYCLIC_CAPABLE)
@pytest.mark.parametrize("name, query", [
    ("triangle", JoinQuery.triangle()),
    ("line4", JoinQuery.line(4)),
    ("star3", JoinQuery.star(3)),
])
def test_insertion_order_invariance_structured_queries(algorithm, name, query):
    got, want = run_both_orders(algorithm, query, seed=hash(name) & 0xFFFF)
    assert got == want


@pytest.mark.parametrize("algorithm", available_algorithms())
def test_repeated_runs_are_identical(algorithm):
    rng = random.Random(777)
    db = random_database(UNIVERSAL_QUERY, rng, n=10, domain=3, time_span=20)
    runs = {
        canonical_bytes(temporal_join(UNIVERSAL_QUERY, db, algorithm=algorithm))
        for _ in range(3)
    }
    assert len(runs) == 1
