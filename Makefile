# Convenience targets for the reproduction repository.

.PHONY: install test bench examples figures clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

figures: bench
	@cat benchmarks/results/*.txt

examples:
	@for f in examples/*.py; do echo "=== $$f"; python $$f; done

clean:
	rm -rf benchmarks/results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
