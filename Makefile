# Convenience targets for the reproduction repository.

.PHONY: install test lint analyze analyze-fast bench bench-smoke bench-kernels bench-kernels-check bench-prepared bench-prepared-check bench-service bench-service-check bench-allen bench-allen-check bench-planner bench-planner-check examples figures clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Style lint (ruff). A missing ruff is an error, not a silent skip —
# set REPRO_LINT_OPTIONAL=1 to opt out (e.g. minimal local setups).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif [ -n "$$REPRO_LINT_OPTIONAL" ]; then \
		echo "ruff not installed; skipping lint (REPRO_LINT_OPTIONAL set)"; \
	else \
		echo "error: ruff is not installed. Run 'pip install -e .[dev]'" \
		     "or set REPRO_LINT_OPTIONAL=1 to skip." >&2; \
		exit 1; \
	fi

# Domain lint + static analysis (repro-lint): node rules plus the flow/
# interprocedural set. Incremental via .repro-lint-cache/ — a warm run
# over an unchanged tree re-parses 0 files. No artifact is written into
# the source tree; CI generates the SARIF report explicitly.
analyze:
	PYTHONPATH=src python -m repro.analysis src

# Warm developer loop: refuses a cold cache so it never silently pays
# the full-parse cost ('make analyze' first seeds the cache).
analyze-fast:
	@test -f .repro-lint-cache/files.json || { \
		echo "analyze-fast: cold cache — run 'make analyze' once first" >&2; \
		exit 1; \
	}
	PYTHONPATH=src python -m repro.analysis src

bench:
	pytest benchmarks/ --benchmark-only

# Small serial-vs-2-worker timing snapshot; accumulates the perf
# trajectory of the parallel engine as BENCH_parallel.json per commit.
bench-smoke:
	PYTHONPATH=src python -m repro.bench.smoke --out BENCH_parallel.json

# Object-vs-kernel engine speedups per workload family and size;
# refreshes the committed BENCH_kernels.json baseline.
bench-kernels:
	PYTHONPATH=src python -m repro.bench.kernels --out BENCH_kernels.json

# Regression gate against the committed baseline: re-measures the smoke
# size and fails if the kernel speedup ratio regressed >15%.
bench-kernels-check:
	PYTHONPATH=src python -m repro.bench.kernels --check \
		--baseline BENCH_kernels.json --out BENCH_kernels_check.json

# Cold-fleet vs prepared-batch amortization over the 10-template
# standing-query fleet; refreshes the committed BENCH_prepared.json.
bench-prepared:
	PYTHONPATH=src python -m repro.bench.prepared --out BENCH_prepared.json

# Regression gate against the committed baseline: re-measures the smoke
# size and fails if the amortized speedup regressed >15% (or fell
# below break-even, or the batch re-sorted the event stream).
bench-prepared-check:
	PYTHONPATH=src python -m repro.bench.prepared --check \
		--baseline BENCH_prepared.json --out BENCH_prepared_check.json

# Standing-query service over the Figure-9 workloads (TPC-E star τ=170,
# LDBC line τ=11): one shared ingest pass feeding a 3-query fleet;
# refreshes the committed BENCH_service.json.
bench-service:
	PYTHONPATH=src python -m repro.bench.service --out BENCH_service.json

# Smoke gate: re-measures the smoke size and fails if any standing
# query's snapshot differs from the offline temporal_join, if the fleet
# consumed more than one ingest pass, or if template dedup broke.
bench-service-check:
	PYTHONPATH=src python -m repro.bench.service --check \
		--baseline BENCH_service.json --out BENCH_service_check.json

# Lazy-sweep vs forward-scan (overlaps) and vs the naive predicate
# scan (Allen atoms); refreshes the committed BENCH_allen.json.
bench-allen:
	PYTHONPATH=src python -m repro.bench.allen --out BENCH_allen.json

# Regression gate against the committed baseline: re-measures the
# check cells and fails if a speedup ratio regressed >15% or the
# implementations disagreed on results.
bench-allen-check:
	PYTHONPATH=src python -m repro.bench.allen --check \
		--baseline BENCH_allen.json --out BENCH_allen_check.json

# Cold exact decomposition search vs warm persistent plan cache over
# the Table 1 fleet; refreshes the committed BENCH_planner.json.
bench-planner:
	PYTHONPATH=src python -m repro.bench.planner --out BENCH_planner.json

# Regression gate against the committed baseline: fails if the warm
# arm did any search work, missed the cache, fell below the 2x
# amortization floor, or regressed >15% vs the baseline ratio.
bench-planner-check:
	PYTHONPATH=src python -m repro.bench.planner --check \
		--baseline BENCH_planner.json --out BENCH_planner_check.json

figures: bench
	@cat benchmarks/results/*.txt

examples:
	@for f in examples/*.py; do echo "=== $$f"; python $$f; done

clean:
	rm -rf benchmarks/results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
