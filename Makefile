# Convenience targets for the reproduction repository.

.PHONY: install test lint bench bench-smoke examples figures clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff)"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

# Small serial-vs-2-worker timing snapshot; accumulates the perf
# trajectory of the parallel engine as BENCH_parallel.json per commit.
bench-smoke:
	PYTHONPATH=src python -m repro.bench.smoke --out BENCH_parallel.json

figures: bench
	@cat benchmarks/results/*.txt

examples:
	@for f in examples/*.py; do echo "=== $$f"; python $$f; done

clean:
	rm -rf benchmarks/results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
