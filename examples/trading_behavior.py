#!/usr/bin/env python
"""Mining similar trading behaviour on TPC-E-like holdings (Q_tpce).

The paper's TPC-E task: find sets of customers who simultaneously held
many of the same securities — the star self-join

    Q_tpce = σ_{count ≥ k} Σ_S  R(C1,S) ⋈ R(C2,S) ⋈ … ⋈ R(Cn,S)

evaluated as a durable temporal join (the holdings must overlap for at
least τ days) followed by a group-count aggregation.

Run:  python examples/trading_behavior.py
"""

from repro import plan, temporal_join
from repro.workloads import tpce
from repro.workloads.tpce import (
    customers_with_common_securities,
    generate_holdings,
    star_database,
    star_query,
)

N_CUSTOMERS = 3  # customers per group (the paper uses 5 at full scale)
TAU = 170  # the paper's Figure 9 durability threshold
MIN_COMMON = 2  # securities the group must share (paper: count >= 4)


def main() -> None:
    config = tpce.TPCEConfig(
        n_customers=120, n_securities=25, n_holdings=500, seed=5
    )
    holdings = generate_holdings(config)
    print(f"Holdings table: {len(holdings)} (customer, security) intervals")

    query = star_query(N_CUSTOMERS)
    print(f"Query: {query}")
    decision = plan(query)
    print(
        f"Planner: {decision.algorithm} "
        f"(class {decision.query_class.value}, "
        f"star joins are hierarchical → O(N log N + K))"
    )
    print()

    database = star_database(holdings, N_CUSTOMERS)
    results = temporal_join(query, database, tau=TAU, algorithm="timefirst")
    print(
        f"{N_CUSTOMERS}-customer × security combinations held "
        f"simultaneously for ≥ {TAU} days: {len(results)}"
    )

    groups = customers_with_common_securities(
        results, min_count=MIN_COMMON, n_customers=N_CUSTOMERS
    )
    print(
        f"Customer groups with ≥ {MIN_COMMON} common durable securities: "
        f"{len(groups)}"
    )
    for customers, count in groups[:8]:
        print(f"  {customers}: {count} common securities")


if __name__ == "__main__":
    main()
