#!/usr/bin/env python
"""Simultaneous flight patterns on a Flights-like temporal graph.

Finds pattern occurrences whose flights are all *in the air at the same
moment* — line, star, cycle, and bowtie patterns over the flight graph,
exactly the query set of Figure 10 (middle) — and shows how the Figure 7
planner picks different strategies per pattern shape.

Also demonstrates a *lead/lag* analysis using the interval-transformation
machinery: connecting flights where the first lands at least 30 minutes
before the second departs (a layover constraint), evaluated as a durable
temporal join after the lead/lag transform.

Run:  python examples/flight_routes.py
"""

from repro import JoinQuery, plan, temporal_join
from repro.core.durability import lead_lag_transform
from repro.workloads import flights

PATTERNS = {
    "L3 (3-leg chain)": JoinQuery.line(3),
    "S3 (3 flights, one hub)": JoinQuery.star(3),
    "C3 (triangle)": JoinQuery.triangle(),
    "bowtie": JoinQuery.bowtie(),
}


def main() -> None:
    config = flights.FlightsConfig(n_airports=200, n_flights=600, seed=7)
    graph = flights.generate_graph(config)
    print(
        f"Flights-like graph: {graph.vertex_count} airports, "
        f"{graph.edge_count} flights (minutes of one day)"
    )
    print()

    # ------------------------------------------------------------------
    # Simultaneous patterns, one query shape at a time.
    # ------------------------------------------------------------------
    for label, query in PATTERNS.items():
        decision = plan(query)
        results = graph.pattern_join(query, tau=0)
        durable = graph.pattern_join(query, tau=60)
        print(
            f"{label:>24}: {len(results):>6} simultaneous occurrences, "
            f"{len(durable):>5} lasting ≥ 1h   "
            f"[planner: {decision.algorithm}, class {decision.query_class.value}]"
        )
    print()

    # ------------------------------------------------------------------
    # Layovers: flight A lands >= 30 min before flight B departs, and B
    # departs from A's arrival airport. Lead/lag transform + durable join.
    # ------------------------------------------------------------------
    edge = graph.edge_relation(symmetric=True)
    inbound = edge.rename({"u": "origin", "v": "hub"}, name="inbound")
    outbound = edge.rename({"u": "hub", "v": "dest"}, name="outbound")
    lead, follow = lead_lag_transform(inbound, outbound)
    query = JoinQuery({"inbound": ("origin", "hub"), "outbound": ("hub", "dest")})
    connections = temporal_join(
        query, {"inbound": lead, "outbound": follow}, tau=30
    )
    print(
        f"Connecting flight pairs with ≥ 30 min layover at the shared "
        f"airport: {len(connections)}"
    )
    for values, interval in connections.normalized()[:5]:
        print(f"  {values[0]} → {values[1]} → {values[2]}")


if __name__ == "__main__":
    main()
