#!/usr/bin/env python
"""Quickstart: the paper's running example (Figures 1 and 2), end to end.

Builds the toy DBLP collaboration network, runs the length-3 path
temporal join with every algorithm in the toolbox, shows the durable
variant, and prints the planner's explanation of why each algorithm was
(or wasn't) the right choice.

Run:  python examples/quickstart.py
"""

from repro import (
    JoinQuery,
    TemporalRelation,
    available_algorithms,
    plan,
    temporal_join,
)

# ----------------------------------------------------------------------
# The temporal relation of Figure 2 (left table): collaborations with
# valid intervals, edges directed in alphabetic order.
# ----------------------------------------------------------------------
collaborations = [
    (("A", "B"), (2013, 2017)),
    (("A", "E"), (2012, 2015)),
    (("B", "C"), (2011, 2015)),
    (("B", "D"), (2017, 2019)),
    (("B", "E"), (2013, 2016)),
    (("C", "D"), (2012, 2016)),
    (("D", "E"), (2016, 2018)),
]

# Three renamed copies of the edge relation form the line-3 query
# Q = R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4).
query = JoinQuery.line(3)
database = {
    name: TemporalRelation(name, query.edge(name), collaborations)
    for name in query.edge_names
}


def main() -> None:
    print("Query:", query)
    print()

    # ------------------------------------------------------------------
    # 1. The temporal join (Figure 2, right table).
    # ------------------------------------------------------------------
    results = temporal_join(query, database)
    print("Temporal join results (length-3 collaboration chains):")
    for values, interval in results.normalized():
        print(f"  {values}  valid {interval}")
    print()

    # (B, C, D, E) is a *non-temporal* join result but has no valid
    # interval, so it must be absent:
    assert ("B", "C", "D", "E") not in [v for v, _ in results]

    # ------------------------------------------------------------------
    # 2. Durable temporal join: only chains lasting >= 2 years.
    # ------------------------------------------------------------------
    durable = temporal_join(query, database, tau=2)
    print("2-durable results (chains that held for at least 2 years):")
    for values, interval in durable.normalized():
        print(f"  {values}  valid {interval}  (durability {interval.duration})")
    print()

    # ------------------------------------------------------------------
    # 3. Every algorithm computes the same answer.
    # ------------------------------------------------------------------
    print("Cross-checking all algorithms:")
    from repro import ReproError

    reference = results.normalized()
    for algorithm in available_algorithms():
        try:
            out = temporal_join(query, database, algorithm=algorithm)
        except ReproError as exc:
            print(f"  {algorithm:>16}: not applicable ({exc})")
            continue
        status = "agrees" if out.normalized() == reference else "MISMATCH"
        print(f"  {algorithm:>16}: {len(out)} results — {status}")
    print()

    # ------------------------------------------------------------------
    # 4. What the Figure 7 guideline says about this query.
    # ------------------------------------------------------------------
    print("Planner explanation:")
    print(plan(query).explain())


if __name__ == "__main__":
    main()
