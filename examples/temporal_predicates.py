#!/usr/bin/env python
"""The paper's temporal-predicate reformulations, worked end to end.

Section 2.1's remarks show that several temporal predicates beyond plain
overlap reduce to (durable) temporal joins via interval transformations.
This example demonstrates all three on small concrete datasets:

1. instant-stamped tuples within τ of each other (widening transform);
2. lead/lag with a minimum gap (endpoint projection transform);
3. relative-positioning triangle patterns (shift-feasibility transform).

Run:  python examples/temporal_predicates.py
"""

from repro import Interval, JoinQuery, TemporalRelation, temporal_join
from repro.core.durability import (
    lead_lag_transform,
    relative_pattern_transform,
    widen_instants,
)


def within_tau_example() -> None:
    """Sensor readings from three stations within 5 minutes of each other."""
    print("1. Instant-stamped joins: readings within τ = 5 minutes")
    readings = {
        "S1": [(("evt1", "A"), 100), (("evt2", "A"), 200)],
        "S2": [(("evt3", "A"), 103), (("evt4", "A"), 290)],
        "S3": [(("evt5", "A"), 98), (("evt6", "A"), 205)],
    }
    query = JoinQuery(
        {"S1": ("e1", "loc"), "S2": ("e2", "loc"), "S3": ("e3", "loc")}
    )
    database = {}
    for name, rows in readings.items():
        rel = TemporalRelation(
            name, query.edge(name), [(v, Interval.instant(t)) for v, t in rows]
        )
        database[name] = widen_instants(rel, tau=5)
    results = temporal_join(query, database)
    for values, _ in results.normalized():
        row = dict(zip(query.attrs, values))
        print(
            f"   co-occurring events at {row['loc']}: "
            f"{row['e1']}, {row['e2']}, {row['e3']}"
        )
    # (evt1, evt3, evt5) at times 100/103/98 all pairwise within 5 ✓
    # (evt2, evt4, evt6) at 200/290/205: evt4 is 90 away → excluded.
    print()


def lead_lag_example() -> None:
    """Orders shipped at least 2 days after payment cleared."""
    print("2. Lead/lag with gap ≥ τ: payment precedes shipment by ≥ 2 days")
    payments = TemporalRelation(
        "pay",
        ("order", "pday"),
        [(("o1", "d3"), (1, 3)), (("o2", "d5"), (2, 5)), (("o3", "d4"), (1, 4))],
    )
    shipments = TemporalRelation(
        "ship",
        ("order", "sday"),
        [(("o1", "d7"), (7, 9)), (("o2", "d6"), (6, 8)), (("o3", "d5"), (5, 6))],
    )
    lead, follow = lead_lag_transform(payments, shipments)
    query = JoinQuery({"pay": ("order", "pday"), "ship": ("order", "sday")})
    results = temporal_join(query, {"pay": lead, "ship": follow}, tau=2)
    for values, _ in results.normalized():
        print(f"   {values[0]}: paid {values[1]}, shipped {values[2]}")
    # o1: gap 7-3=4 ✓;  o2: gap 6-5=1 ✗;  o3: gap 5-4=1 ✗.
    print()


def relative_pattern_example() -> None:
    """Triangles whose three edges follow a prescribed relative timeline."""
    print("3. Relative positioning: edge intervals matching a pattern")
    # Pattern: R1's interval inside [0, 4], R2's inside [3, 8], R3's
    # inside [6, 12] — after some common shift Δ.
    pattern = {
        "R1": Interval(0, 4),
        "R2": Interval(3, 8),
        "R3": Interval(6, 12),
    }
    query = JoinQuery.triangle()
    database = {
        # (a, b) collaborates early, (b, c) mid, (c, a) late: matches the
        # pattern after shifting the data by Δ = -100 (i.e. the feasible
        # shift interval of the transformed join contains -100).
        "R1": TemporalRelation("R1", ("x1", "x2"), [(("a", "b"), (101, 104))]),
        "R2": TemporalRelation("R2", ("x2", "x3"), [(("b", "c"), (104, 107))]),
        "R3": TemporalRelation(
            "R3",
            ("x3", "x1"),
            [(("c", "a"), (107, 111)), (("c", "z"), (200, 205))],
        ),
    }
    transformed = relative_pattern_transform(database, pattern)
    results = temporal_join(query, transformed)
    for values, interval in results.normalized():
        print(f"   triangle {values} matches with feasible shifts Δ ∈ {interval}")
    print()


def main() -> None:
    within_tau_example()
    lead_lag_example()
    relative_pattern_example()


if __name__ == "__main__":
    main()
