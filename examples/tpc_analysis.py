#!/usr/bin/env python
"""Data-aware plan analysis on the TPC-BiH workload (§6.3's vision).

Section 6.3 concludes that picking between TIMEFIRST / HYBRID /
HYBRID-INTERVAL / BASELINE / JOINFIRST should be *cost-based*, informed
by both query structure and data characteristics. This example walks the
full loop on the four TPC-BiH queries:

1. characterize the data (`workloads.stats`): multiplicities, pairwise
   temporal join sizes, the blow-up factor;
2. ask the structure-only Figure 7 planner and the data-aware advisor;
3. run every applicable algorithm and crown the actual winner.

Run:  python examples/tpc_analysis.py
"""

import time

from repro import available_algorithms, plan
from repro.algorithms.registry import get_algorithm
from repro.core.advisor import advise
from repro.core.errors import ReproError
from repro.workloads import tpc_bih
from repro.workloads.stats import workload_stats

CONFIG = tpc_bih.TPCBiHConfig(n_customers=100, seed=50)


def main() -> None:
    database = tpc_bih.generate_database(CONFIG)
    for qname, qf in tpc_bih.ALL_QUERIES.items():
        query = qf()
        db = {n: database[n] for n in query.edge_names}
        print("=" * 72)
        print(f"{qname}: {query}")
        print("-" * 72)

        stats = workload_stats(query, db)
        print(stats.report())
        print()

        structural = plan(query)
        advice = advise(query, db)
        print(f"Figure 7 planner (structure only): {structural.algorithm}")
        print(f"Cost-based advisor (data-aware)  : {advice.best}")

        timings = {}
        results = None
        for name in available_algorithms():
            if name in ("naive", "timefirst-cm"):
                continue
            fn = get_algorithm(name)
            try:
                start = time.perf_counter()
                out = fn(query, db)
                timings[name] = time.perf_counter() - start
            except ReproError:
                continue
            if results is None:
                results = out.normalized()
            else:
                assert out.normalized() == results, name
        winner = min(timings, key=timings.get)
        print(f"Measured winner                  : {winner}")
        for name, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
            marker = " ◀" if name == winner else ""
            print(f"    {name:>16}: {seconds * 1e3:8.1f} ms{marker}")
        print()


if __name__ == "__main__":
    main()
