#!/usr/bin/env python
"""Durable coauthorship patterns on a DBLP-like graph (Example 2 / Figure 1).

Generates a DBLP-like temporal collaboration network, then uses durable
temporal joins to count how many length-2 paths, length-3 paths, 3-way
stars, and triangles persisted for at least τ years, for a sweep of τ —
regenerating the right-hand chart of Figure 1 on synthetic data.

Also demonstrates the multi-episode interval machinery: collaborations
with publication gaps are exploded into episodes, joined, and coalesced
back.

Run:  python examples/dblp_patterns.py
"""

from repro import JoinQuery, temporal_join
from repro.bench.reporting import render_series
from repro.core.durability import coalesce_results, explode_interval_sets
from repro.core.query import self_join_database
from repro.workloads import dblp
from repro.workloads.graphs import count_durable_patterns

THRESHOLDS = [0, 1, 2, 3, 5, 8, 12, 16, 20]
PATTERNS = ["path2", "path3", "star3", "triangle"]


def main() -> None:
    config = dblp.DBLPConfig(n_authors=400, n_edges=1200, seed=9)
    graph = dblp.generate_graph(config)
    print(
        f"DBLP-like graph: {graph.vertex_count} authors, "
        f"{graph.edge_count} collaboration edges"
    )
    print()

    # ------------------------------------------------------------------
    # Figure 1 (right): durable pattern counts vs threshold τ.
    # ------------------------------------------------------------------
    series = {}
    for pattern in PATTERNS:
        counts = count_durable_patterns(graph, pattern, THRESHOLDS)
        series[pattern] = [float(counts[tau]) for tau in THRESHOLDS]
    print(
        render_series(
            "Durable coauthorship patterns vs durability threshold (years)",
            THRESHOLDS,
            series,
            x_label="tau",
            fmt="{:.0f}",
        )
    )
    print()

    # ------------------------------------------------------------------
    # Multi-episode collaborations: the paper's "set of disjoint
    # intervals" model. Explode → join → coalesce.
    # ------------------------------------------------------------------
    episodes = graph.edge_relation_episodes()
    multi = [(pair, ivs) for pair, ivs in episodes if len(ivs) > 1]
    print(f"Author pairs with >1 collaboration episode: {len(multi) // 2}")
    exploded = explode_interval_sets("E", ("u", "v"), episodes)
    query = JoinQuery(
        {
            "R1": ("x1", "x2", "e1"),
            "R2": ("x2", "x3", "e2"),
        }
    )
    db = {
        "R1": exploded.rename({"u": "x1", "v": "x2", "__episode__": "e1"}, name="R1"),
        "R2": exploded.rename({"u": "x2", "v": "x3", "__episode__": "e2"}, name="R2"),
    }
    raw = temporal_join(query, db, tau=2)
    merged = coalesce_results(raw, hidden_attrs=("e1", "e2"))
    print(
        f"2-durable length-2 paths over episode-aware edges: {len(merged)} "
        f"(from {len(raw)} episode combinations)"
    )


if __name__ == "__main__":
    main()
