#!/usr/bin/env python
"""Streaming pattern monitoring over a live temporal feed.

Section 3.1 frames temporal joins as a dynamic natural-join instance;
this example uses that framing directly: flight-leg records arrive in
departure-time order, and an :class:`OnlineTemporalJoin` emits every
"three flights airborne simultaneously around one hub" pattern the
moment it is finalized — without ever re-reading the past.

Afterwards the same results feed the analysis toolkit: the concurrency
timeline (when was the sky busiest?) and the top-k most durable patterns.

Run:  python examples/streaming_monitor.py
"""

from repro import JoinQuery
from repro.algorithms.online import OnlineTemporalJoin, arrivals_from_database
from repro.algorithms.topk import top_k_durable
from repro.core.timeline import result_timeline
from repro.workloads import flights

QUERY = JoinQuery.star(3)  # three flights sharing hub attribute y


def main() -> None:
    config = flights.FlightsConfig(
        n_airports=150, n_flights=400, n_hubs=25, hub_bias=0.4, seed=99
    )
    graph = flights.generate_graph(config)
    database = graph.pattern_database(QUERY)
    print(
        f"Feed: {graph.edge_count} flights over one day "
        f"({QUERY.input_size(database)} stream records after symmetrizing)"
    )

    # ------------------------------------------------------------------
    # 1. Consume the stream online; report as patterns finalize.
    # ------------------------------------------------------------------
    operator = OnlineTemporalJoin(QUERY)
    arrivals = arrivals_from_database(database)
    emitted = 0
    max_live = 0
    first_batch = None
    for relation, values, interval in arrivals:
        out = operator.insert(relation, values, interval)
        emitted += len(out)
        max_live = max(max_live, operator.active_count)
        if out and first_batch is None:
            first_batch = (interval.lo, out[0])
    emitted += len(operator.finish())
    results = operator.results()
    print(
        f"Emitted {emitted} simultaneous 3-flight hub patterns; "
        f"operator never held more than {max_live} live records "
        f"(of {len(arrivals)} total)"
    )
    if first_batch is not None:
        t, (values, interval) = first_batch
        print(f"First pattern finalized while reading t={t}: {values} {interval}")
    print()

    # ------------------------------------------------------------------
    # 2. When was the sky busiest?
    # ------------------------------------------------------------------
    timeline = result_timeline(results)
    instant, live = timeline.peak()
    print(
        f"Peak congestion: {live:.0f} patterns simultaneously valid at "
        f"minute {instant} (pattern-minutes overall: {timeline.integral():.0f})"
    )

    # ------------------------------------------------------------------
    # 3. The most durable patterns (offline follow-up query). Self-joins
    #    also match a flight against itself on several legs; keep only
    #    patterns with three distinct non-hub flights for display.
    # ------------------------------------------------------------------
    top = top_k_durable(QUERY, database, k=2000, break_ties=True)
    shown = 0
    print("Most durable patterns (three distinct flights):")
    for values, interval in top:
        x1, hub, x2, x3 = values
        if not (x1 < x2 < x3):  # distinct + canonical orientation
            continue
        print(f"  {x1},{x2},{x3} around hub {hub}: airborne together "
              f"{interval} ({interval.duration:.0f} minutes)")
        shown += 1
        if shown == 3:
            break


if __name__ == "__main__":
    main()
