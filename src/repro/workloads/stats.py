"""Workload characterization: the statistics the paper's analysis cites.

Section 6 explains every performance result through data characteristics
— join-key multiplicities, intermediate blow-up potential, interval
length distribution, temporal overlap density. This module computes
those statistics for any (query, database) pair, so workloads can be
inspected (and the generators validated) with numbers rather than vibes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..nontemporal.hash_join import shared_attrs


@dataclass
class RelationStats:
    """Per-relation shape numbers."""

    name: str
    rows: int
    min_duration: Number
    median_duration: Number
    max_duration: Number
    time_span: Tuple[Number, Number]
    max_key_multiplicity: Dict[str, int] = field(default_factory=dict)


@dataclass
class PairStats:
    """Per-joinable-pair numbers (the BASELINE blow-up predictors)."""

    left: str
    right: str
    on: Tuple[str, ...]
    value_join_size: int  # exact count of value-matching pairs
    temporal_join_size: int  # pairs that also overlap in time
    temporal_selectivity: float  # ratio of the two


@dataclass
class WorkloadStats:
    """Everything, with a report renderer."""

    input_size: int
    relations: List[RelationStats]
    pairs: List[PairStats]

    def blowup_factor(self) -> float:
        """max pairwise temporal join size / N — BASELINE's pain index."""
        if not self.pairs or self.input_size == 0:
            return 0.0
        return max(p.temporal_join_size for p in self.pairs) / self.input_size

    def report(self) -> str:
        lines = [f"input size N = {self.input_size}"]
        for rel in self.relations:
            mult = ", ".join(
                f"{a}:{m}" for a, m in sorted(rel.max_key_multiplicity.items())
            )
            lines.append(
                f"  {rel.name}: {rel.rows} rows, durations "
                f"[{rel.min_duration} / {rel.median_duration} / "
                f"{rel.max_duration}], span {rel.time_span}, "
                f"max multiplicity {{{mult}}}"
            )
        for pair in self.pairs:
            lines.append(
                f"  {pair.left} ⋈ {pair.right} on ({', '.join(pair.on)}): "
                f"{pair.value_join_size} value pairs, "
                f"{pair.temporal_join_size} temporal "
                f"(selectivity {pair.temporal_selectivity:.2f})"
            )
        lines.append(f"  pairwise blow-up factor: {self.blowup_factor():.1f}× N")
        return "\n".join(lines)


def relation_stats(relation: TemporalRelation) -> RelationStats:
    """Shape numbers for one relation."""
    durations = sorted(iv.duration for _, iv in relation)
    lows = [iv.lo for _, iv in relation]
    highs = [iv.hi for _, iv in relation]
    multiplicity = {}
    for attr in relation.attrs:
        groups = relation.group_by((attr,))
        multiplicity[attr] = max((len(g) for g in groups.values()), default=0)
    if durations:
        dmin, dmax = durations[0], durations[-1]
        dmed = statistics.median(durations)
        span = (min(lows), max(highs))
    else:
        dmin = dmed = dmax = 0
        span = (0, 0)
    return RelationStats(
        name=relation.name,
        rows=len(relation),
        min_duration=dmin,
        median_duration=dmed,
        max_duration=dmax,
        time_span=span,
        max_key_multiplicity=multiplicity,
    )


def pair_stats(
    left: TemporalRelation, right: TemporalRelation
) -> PairStats:
    """Exact value/temporal pairwise join sizes for one relation pair.

    Counts without materializing: groups both sides by the join key and
    sums the per-key products (value) and per-key overlap counts
    (temporal, via a sort-and-sweep per key).
    """
    on = tuple(shared_attrs(left, right))
    left_groups = left.group_by(on)
    right_groups = right.group_by(on)
    value_pairs = 0
    temporal_pairs = 0
    for key, lrows in left_groups.items():
        rrows = right_groups.get(key)
        if not rrows:
            continue
        value_pairs += len(lrows) * len(rrows)
        temporal_pairs += _overlap_count(
            sorted((iv.lo, iv.hi) for _, iv in lrows),
            sorted((iv.lo, iv.hi) for _, iv in rrows),
        )
    selectivity = temporal_pairs / value_pairs if value_pairs else 0.0
    return PairStats(
        left=left.name,
        right=right.name,
        on=on,
        value_join_size=value_pairs,
        temporal_join_size=temporal_pairs,
        temporal_selectivity=selectivity,
    )


def _overlap_count(
    lefts: List[Tuple[Number, Number]], rights: List[Tuple[Number, Number]]
) -> int:
    """Number of overlapping pairs between two start-sorted interval lists."""
    count = 0
    i = j = 0
    nl, nr = len(lefts), len(rights)
    # Forward-scan counting (same sweep as the FS join, counting only).
    while i < nl and j < nr:
        if lefts[i][0] <= rights[j][0]:
            hi = lefts[i][1]
            k = j
            while k < nr and rights[k][0] <= hi:
                count += 1
                k += 1
            i += 1
        else:
            hi = rights[j][1]
            k = i
            while k < nl and lefts[k][0] <= hi:
                count += 1
                k += 1
            j += 1
    return count


def workload_stats(
    query: JoinQuery, database: Mapping[str, TemporalRelation]
) -> WorkloadStats:
    """Full characterization of a (query, database) pair."""
    query.validate(database)
    relations = [relation_stats(database[name]) for name in query.edge_names]
    pairs = []
    names = query.edge_names
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if shared_attrs(database[a], database[b]):
                pairs.append(pair_stats(database[a], database[b]))
    return WorkloadStats(
        input_size=query.input_size(database),
        relations=relations,
        pairs=pairs,
    )
