"""Temporal graphs and graph-pattern temporal joins.

The paper evaluates graph workloads (Flights, DBLP) by self-joining the
edge table: a pattern query like the length-3 path is three renamed
copies of the edge relation (Figure 2). This module provides

* :class:`TemporalGraph` — a multigraph whose edges carry valid intervals
  (or disjoint interval sets);
* relation exports — directed or symmetrized edge tables;
* pattern-query helpers for the shapes of Section 6 (lines, stars,
  cycles, bowtie) including the canonical-pattern counting used for the
  Figure 1 durability histogram (each undirected pattern counted once,
  repeated vertices excluded).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.interval import Interval, IntervalLike, IntervalSet
from ..core.query import JoinQuery, self_join_database
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..algorithms.registry import temporal_join


@dataclass
class TemporalGraph:
    """An undirected temporal graph: edges with valid intervals."""

    edges: List[Tuple[object, object, Interval]] = field(default_factory=list)

    def add_edge(self, u: object, v: object, interval: IntervalLike) -> None:
        self.edges.append((u, v, Interval.coerce(interval)))

    @property
    def vertex_count(self) -> int:
        vertices: Set[object] = set()
        for u, v, _ in self.edges:
            vertices.add(u)
            vertices.add(v)
        return len(vertices)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    # ------------------------------------------------------------------
    # Relation exports
    # ------------------------------------------------------------------
    def edge_relation(
        self,
        name: str = "E",
        attrs: Sequence[str] = ("u", "v"),
        symmetric: bool = True,
    ) -> TemporalRelation:
        """The edge table; ``symmetric=True`` adds both directions.

        Multi-edges between the same pair with overlapping intervals are
        coalesced per direction (tuples must stay distinct).
        """
        per_pair: Dict[Tuple[object, object], List[Interval]] = {}
        for u, v, ivl in self.edges:
            per_pair.setdefault((u, v), []).append(ivl)
            if symmetric:
                per_pair.setdefault((v, u), []).append(ivl)
        rows = []
        for pair, intervals in per_pair.items():
            episodes = IntervalSet(intervals)
            # The flat export keeps the most durable validity episode per
            # edge; multi-episode analyses should go through
            # edge_relation_episodes() + durability.explode_interval_sets.
            best = max(episodes, key=lambda iv: iv.duration)
            rows.append((pair, best))
        return TemporalRelation(name, attrs, rows)

    def edge_relation_episodes(
        self, name: str = "E", attrs: Sequence[str] = ("u", "v")
    ) -> List[Tuple[Tuple[object, object], IntervalSet]]:
        """Edges with their full disjoint-interval validity sets."""
        per_pair: Dict[Tuple[object, object], List[Interval]] = {}
        for u, v, ivl in self.edges:
            per_pair.setdefault((u, v), []).append(ivl)
            per_pair.setdefault((v, u), []).append(ivl)
        return [
            (pair, IntervalSet(intervals)) for pair, intervals in per_pair.items()
        ]

    # ------------------------------------------------------------------
    # Pattern evaluation
    # ------------------------------------------------------------------
    def pattern_database(
        self, query: JoinQuery, symmetric: bool = True
    ) -> Dict[str, TemporalRelation]:
        """Bind every binary edge of ``query`` to this graph's edge table."""
        rel = self.edge_relation(symmetric=symmetric)
        return self_join_database(query, rel)

    def pattern_join(
        self,
        query: JoinQuery,
        tau: float = 0,
        algorithm: str = "auto",
        symmetric: bool = True,
    ) -> JoinResultSet:
        """Temporal pattern join over the (self-joined) edge table."""
        db = self.pattern_database(query, symmetric=symmetric)
        return temporal_join(query, db, tau=tau, algorithm=algorithm)


# ----------------------------------------------------------------------
# Canonical pattern counting (Figure 1, right)
# ----------------------------------------------------------------------
def count_durable_patterns(
    graph: TemporalGraph,
    pattern: str,
    thresholds: Sequence[float],
    algorithm: str = "auto",
) -> Dict[float, int]:
    """Count canonical durable patterns at each durability threshold.

    ``pattern`` ∈ {"path2", "path3", "star3", "triangle"}. Patterns are
    canonicalized so each undirected occurrence counts once, and patterns
    with repeated vertices are excluded — this is the semantics behind
    Figure 1's "number of durable patterns" curves.
    """
    query, canonical = _PATTERNS[pattern]
    results = graph.pattern_join(query, tau=0, algorithm=algorithm)
    durations: List[float] = []
    for values, interval in results:
        if canonical(values):
            durations.append(interval.duration)
    durations.sort()
    import bisect

    out: Dict[float, int] = {}
    for tau in thresholds:
        out[tau] = len(durations) - bisect.bisect_left(durations, tau)
    return out


def _canonical_path2(v: Tuple[object, ...]) -> bool:
    a, b, c = v
    return a < c and len({a, b, c}) == 3


def _canonical_path3(v: Tuple[object, ...]) -> bool:
    a, b, c, d = v
    return a < d and len({a, b, c, d}) == 4


def _canonical_star3(v: Tuple[object, ...]) -> bool:
    # star(3) attrs order: (x1, y, x2, x3) — first-appearance order.
    x1, y, x2, x3 = v
    return x1 < x2 < x3 and y not in (x1, x2, x3)


def _canonical_triangle(v: Tuple[object, ...]) -> bool:
    a, b, c = v
    return a < b < c


_PATTERNS = {
    "path2": (JoinQuery.line(2), _canonical_path2),
    "path3": (JoinQuery.line(3), _canonical_path3),
    "star3": (JoinQuery.star(3), _canonical_star3),
    "triangle": (JoinQuery.triangle(), _canonical_triangle),
}


def pattern_query(pattern: str) -> JoinQuery:
    """The join query behind a named pattern."""
    return _PATTERNS[pattern][0]


# ----------------------------------------------------------------------
# Random temporal graph generator (power-law-ish degrees)
# ----------------------------------------------------------------------
def random_temporal_graph(
    n_vertices: int,
    n_edges: int,
    time_span: int = 1000,
    mean_duration: int = 60,
    hub_bias: float = 0.5,
    seed: int = 11,
) -> TemporalGraph:
    """A skewed-degree temporal graph.

    With probability ``hub_bias`` an endpoint is sampled from the first
    √n vertices (the hubs), otherwise uniformly — giving the heavy-tailed
    degree profile of collaboration and flight networks. Durations are
    geometric with the given mean.
    """
    rng = random.Random(seed)
    hubs = max(1, int(n_vertices**0.5))
    graph = TemporalGraph()
    seen: Set[Tuple[object, object]] = set()
    attempts = 0
    while graph.edge_count < n_edges and attempts < n_edges * 20:
        attempts += 1
        u = rng.randrange(hubs) if rng.random() < hub_bias else rng.randrange(n_vertices)
        v = rng.randrange(hubs) if rng.random() < hub_bias else rng.randrange(n_vertices)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        start = rng.randrange(time_span)
        duration = min(int(rng.expovariate(1.0 / mean_duration)) + 1, time_span)
        graph.add_edge(key[0], key[1], Interval(start, start + duration))
    return graph
