"""LDBC-SNB-like PersonKnowsPerson table and line self-joins.

The paper uses LDBC's Social Network Benchmark to model evolving
friendships: ``PersonKnowsPerson(PersonId, PersonId, StartTime,
CurrentTime)``. Figure 9 runs a line join with τ = 11 while scaling N
from 10K to 2M and measures throughput (results per time unit), showing
it stays flat for output-sensitive algorithms.

The generator grows a preferential-attachment-flavoured friendship graph
over simulation time: each friendship starts when the younger member has
joined and usually persists to the "current time" (LDBC friendships are
rarely deleted), giving the long-overlap interval profile that makes the
output size dominate the input size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.interval import Interval
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from .graphs import TemporalGraph


@dataclass
class LDBCConfig:
    """Scale knobs; ``n_knows`` is the paper's x-axis N."""

    n_persons: int = 400
    n_knows: int = 1200
    sim_span: int = 1000  # simulation duration
    delete_fraction: float = 0.15  # friendships that ended early
    hub_bias: float = 0.55
    seed: int = 11


def generate_graph(config: LDBCConfig = LDBCConfig()) -> TemporalGraph:
    """Build the person-knows-person temporal graph."""
    rng = random.Random(config.seed)
    join_time = [rng.randrange(config.sim_span // 2) for _ in range(config.n_persons)]
    hubs = max(1, int(config.n_persons**0.5))
    graph = TemporalGraph()
    seen = set()
    attempts = 0
    while graph.edge_count < config.n_knows and attempts < config.n_knows * 30:
        attempts += 1
        u = rng.randrange(hubs) if rng.random() < config.hub_bias else rng.randrange(config.n_persons)
        v = rng.randrange(config.n_persons)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        start = max(join_time[u], join_time[v]) + rng.randrange(
            max(1, config.sim_span // 10)
        )
        if start >= config.sim_span:
            continue
        if rng.random() < config.delete_fraction:
            end = rng.randrange(start, config.sim_span)
        else:
            end = config.sim_span  # persists to current time
        graph.add_edge(f"p{key[0]}", f"p{key[1]}", Interval(start, end))
    return graph


def knows_relation(config: LDBCConfig = LDBCConfig()) -> TemporalRelation:
    """The PersonKnowsPerson edge table (symmetric)."""
    return generate_graph(config).edge_relation(
        name="knows", attrs=("p1", "p2"), symmetric=True
    )


def line_query(n: int = 3) -> JoinQuery:
    """The line self-join over PersonKnowsPerson used by Figure 9."""
    return JoinQuery.line(n)
