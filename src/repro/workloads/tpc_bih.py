"""TPC-BiH-like bitemporal TPC-H generator and the four paper queries.

TPC-BiH [50] extends TPC-H with valid-time *history*: every entity
carries multiple versions over time ("different types of history
classes"). The paper distills four temporal join queries (Section 6.1):

* ``Q_tpc3``  = customer ⋈ orders ⋈ lineitem
* ``Q_tpc5``  = customer ⋈ orders ⋈ lineitem ⋈ supplier
* ``Q_tpc9``  = partsupp ⋈ lineitem ⋈ orders
* ``Q_tpc10`` = partsupp ⋈ lineitem ⋈ orders ⋈ customer

The generator models the data characteristics the paper's Figure 10/11
discussion attributes the results to:

* **Low multiplicity** on customer→orders→lineitem ("most customers only
  place a single order, and most orders only contain one lineitem") and
  *containment* of lineitem validity inside its order's lifetime, so
  BASELINE's intermediates on Q_tpc3/Q_tpc5 shrink immediately to nearly
  the final size — the regime where BASELINE wins;
* **Explosive multiplicity** between partsupp and lineitem on
  Q_tpc9/Q_tpc10: popular (part, supplier) pairs appear in many
  lineitems *and* partsupp rows are version histories (short tiles), so
  the binary temporal join partsupp ⋈ lineitem materializes many
  version × lineitem pairs of which only a sliver survives the
  intersection with the order's (also versioned) validity.

Schemas (join attributes plus version/payload attributes, so query
shapes match the paper's "line join queries"):

* ``customer(CK, MS)``  — one row per customer lifetime;
* ``supplier(SK, SN)``  — one row per supplier lifetime;
* ``orders(OK, CK, ST)`` — one row per *status version* of an order;
* ``lineitem(OK, PK, SK)`` — one row per lineitem;
* ``partsupp(PK, SK, AQ)`` — one row per *availability version*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.interval import Interval
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation


@dataclass
class TPCBiHConfig:
    """Scale knobs; defaults keep a pure-Python bench in the seconds range.

    Temporal layout: partsupp availability versions live (mostly) before
    the ``boundary`` instant, order status versions after it, and
    lineitem validity straddles the boundary. Every lineitem therefore
    overlaps many partsupp versions *and* many order versions — both
    binary temporal joins of Q_tpc9 are wide — while three-way overlaps
    are rare (only the few *bridging* partsupp versions that cross the
    boundary produce final results). Customer and supplier rows span
    their whole lifetime, so Q_tpc3/Q_tpc5 have no such trap: their wide
    join is the last one, whose output *is* the final result.
    """

    n_customers: int = 150
    n_suppliers: int = 60
    n_parts: int = 120
    orders_per_customer: float = 1.0  # low multiplicity
    lineitems_per_order: float = 8.0
    popular_pairs: int = 8  # (part, supplier) pairs most lineitems use
    popular_bias: float = 0.85  # fraction of lineitems hitting those
    popular_versions: int = 100  # availability history of a popular pair
    bridge_versions: int = 1  # popular versions crossing the boundary
    tail_versions: int = 2  # history of an unpopular pair
    order_versions: int = 10  # status versions per order
    time_span: int = 2000
    boundary: int = 1000
    lineitem_length: int = 300
    ps_version_length: int = 150
    order_lifetime: int = 300
    order_version_length: int = 40
    seed: int = 50


def generate_database(
    config: TPCBiHConfig = TPCBiHConfig(),
) -> Dict[str, TemporalRelation]:
    """Build the five temporal relations."""
    rng = random.Random(config.seed)
    span = config.time_span
    boundary = config.boundary

    customers = [
        ((f"c{i}", f"seg{i % 5}"), Interval(0, span))
        for i in range(config.n_customers)
    ]
    suppliers = [
        ((f"s{i}", f"nation{i % 7}"), Interval(0, span))
        for i in range(config.n_suppliers)
    ]

    # partsupp availability histories.
    partsupp: List[Tuple[Tuple[str, str, str], Interval]] = []
    pairs: List[Tuple[str, str]] = []
    for p in range(config.n_parts):
        for s in rng.sample(
            range(config.n_suppliers), min(rng.randrange(2, 5), config.n_suppliers)
        ):
            pairs.append((f"p{p}", f"s{s}"))
    popular = rng.sample(pairs, min(config.popular_pairs, len(pairs)))
    popular_set = set(popular)
    vlen = config.ps_version_length
    for pk, sk in pairs:
        version = 0
        if (pk, sk) in popular_set:
            # Dense pre-boundary history, clustered so most versions
            # overlap the lineitem window's pre-boundary half.
            for _ in range(config.popular_versions):
                lo = rng.randrange(max(1, boundary - 3 * vlen), boundary - vlen + 1)
                partsupp.append(((pk, sk, f"aq{version}"), Interval(lo, lo + vlen)))
                version += 1
            for _ in range(config.bridge_versions):
                lo = rng.randrange(boundary - vlen, boundary)
                partsupp.append(((pk, sk, f"aq{version}"), Interval(lo, lo + vlen)))
                version += 1
        else:
            for _ in range(config.tail_versions):
                lo = rng.randrange(max(1, span - 2 * vlen))
                partsupp.append(((pk, sk, f"aq{version}"), Interval(lo, lo + vlen)))
                version += 1

    orders: List[Tuple[Tuple[str, str, str], Interval]] = []
    lineitems: List[Tuple[Tuple[str, str, str], Interval]] = []
    order_id = 0
    half_li = config.lineitem_length // 2
    for c in range(config.n_customers):
        for _ in range(_rounded(config.orders_per_customer, rng)):
            ok = f"o{order_id}"
            order_id += 1
            start = boundary + rng.randrange(100)
            end = min(start + config.order_lifetime, span)
            for v in range(config.order_versions):
                lo = rng.randrange(start, max(start + 1, end - config.order_version_length))
                orders.append(
                    ((ok, f"c{c}", f"st{v}"),
                     Interval(lo, min(lo + config.order_version_length, span)))
                )
            for _ in range(_rounded(config.lineitems_per_order, rng)):
                if rng.random() < config.popular_bias and popular:
                    pk, sk = popular[rng.randrange(len(popular))]
                else:
                    pk, sk = pairs[rng.randrange(len(pairs))]
                lo = boundary - half_li + rng.randrange(-50, 51)
                lineitems.append(
                    ((ok, pk, sk), Interval(max(0, lo), lo + config.lineitem_length))
                )

    def rel(name, attrs, rows):
        seen = {}
        for values, interval in rows:
            if values not in seen:
                seen[values] = interval
        return TemporalRelation(name, attrs, list(seen.items()))

    return {
        "customer": rel("customer", ("CK", "MS"), customers),
        "supplier": rel("supplier", ("SK", "SN"), suppliers),
        "orders": rel("orders", ("OK", "CK", "ST"), orders),
        "lineitem": rel("lineitem", ("OK", "PK", "SK"), lineitems),
        "partsupp": rel("partsupp", ("PK", "SK", "AQ"), partsupp),
    }


def _rounded(mean: float, rng: random.Random) -> int:
    """Sample a small non-negative integer with the given mean (≥ 1 biased)."""
    base = int(mean)
    return base + (1 if rng.random() < (mean - base) else 0)


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def q_tpc3() -> JoinQuery:
    """customer ⋈ orders ⋈ lineitem."""
    return JoinQuery(
        {
            "customer": ("CK", "MS"),
            "orders": ("OK", "CK", "ST"),
            "lineitem": ("OK", "PK", "SK"),
        }
    )


def q_tpc5() -> JoinQuery:
    """customer ⋈ orders ⋈ lineitem ⋈ supplier."""
    return JoinQuery(
        {
            "customer": ("CK", "MS"),
            "orders": ("OK", "CK", "ST"),
            "lineitem": ("OK", "PK", "SK"),
            "supplier": ("SK", "SN"),
        }
    )


def q_tpc9() -> JoinQuery:
    """partsupp ⋈ lineitem ⋈ orders."""
    return JoinQuery(
        {
            "partsupp": ("PK", "SK", "AQ"),
            "lineitem": ("OK", "PK", "SK"),
            "orders": ("OK", "CK", "ST"),
        }
    )


def q_tpc10() -> JoinQuery:
    """partsupp ⋈ lineitem ⋈ orders ⋈ customer."""
    return JoinQuery(
        {
            "partsupp": ("PK", "SK", "AQ"),
            "lineitem": ("OK", "PK", "SK"),
            "orders": ("OK", "CK", "ST"),
            "customer": ("CK", "MS"),
        }
    )


ALL_QUERIES = {
    "Q_tpc3": q_tpc3,
    "Q_tpc5": q_tpc5,
    "Q_tpc9": q_tpc9,
    "Q_tpc10": q_tpc10,
}


def query_database(
    query: JoinQuery, config: TPCBiHConfig = TPCBiHConfig()
) -> Dict[str, TemporalRelation]:
    """The subset of the generated database a query needs."""
    db = generate_database(config)
    return {name: db[name] for name in query.edge_names}
