"""TPC-E-like customer–security holdings and the Q_tpce star self-join.

The paper aggregates TPC-E into ``R(CustomerKey, SecurityId, StartTime,
EndTime)`` — who held which security when — and mines "customers with
similar trading behaviors" with the 5-way star self-join

    Q_tpce = σ_{count ≥ 4} Σ_S R(C1,S) ⋈ R(C2,S) ⋈ … ⋈ R(C5,S)

(5 customers holding a common security simultaneously, keeping customer
groups with more than 4 common active securities; Figure 9 uses the star
join with τ = 170 for the scalability sweep).

The generator concentrates holdings on a handful of hot securities so
the star join's output dominates the input (the output-sensitivity regime
Figure 9 measures) and holding durations cluster just above/below the τ
used in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.interval import Interval
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet


@dataclass
class TPCEConfig:
    """Scale knobs; ``n_holdings`` is the paper's x-axis N."""

    n_customers: int = 300
    n_securities: int = 40
    n_holdings: int = 1200
    hot_securities: int = 5
    hot_bias: float = 0.5
    time_span: int = 2000
    mean_holding: int = 250
    seed: int = 170


def generate_holdings(config: TPCEConfig = TPCEConfig()) -> TemporalRelation:
    """The holdings table ``R(C, S)`` with validity intervals."""
    rng = random.Random(config.seed)
    rows: Dict[Tuple[str, str], Interval] = {}
    attempts = 0
    while len(rows) < config.n_holdings and attempts < config.n_holdings * 30:
        attempts += 1
        c = rng.randrange(config.n_customers)
        if rng.random() < config.hot_bias:
            s = rng.randrange(config.hot_securities)
        else:
            s = rng.randrange(config.n_securities)
        key = (f"c{c}", f"s{s}")
        if key in rows:
            continue
        start = rng.randrange(config.time_span)
        duration = max(1, int(rng.expovariate(1.0 / config.mean_holding)))
        rows[key] = Interval(start, start + duration)
    return TemporalRelation("R", ("C", "S"), list(rows.items()))


def star_query(n_customers: int = 5) -> JoinQuery:
    """``R(C1,S) ⋈ … ⋈ R(Cn,S)`` — the Q_tpce star (center S)."""
    return JoinQuery(
        {f"R{i}": (f"C{i}", "S") for i in range(1, n_customers + 1)}
    )


def star_database(
    holdings: TemporalRelation, n_customers: int = 5
) -> Dict[str, TemporalRelation]:
    """Bind every star edge to a renamed copy of the holdings table."""
    db = {}
    for i in range(1, n_customers + 1):
        rel = TemporalRelation(
            f"R{i}", (f"C{i}", "S"), holdings.rows, check_distinct=False
        )
        db[f"R{i}"] = rel
    return db


def customers_with_common_securities(
    results: JoinResultSet, min_count: int = 4, n_customers: int = 5
) -> List[Tuple[Tuple[str, ...], int]]:
    """The σ_{count ≥ k} Σ_S aggregation on top of the star join.

    Groups results by the (sorted, distinct) customer tuple and counts the
    distinct securities they simultaneously held; returns groups with
    more than ``min_count`` common securities, mirroring Q_tpce.
    """
    attr_pos = {a: i for i, a in enumerate(results.attrs)}
    c_pos = [attr_pos[f"C{i}"] for i in range(1, n_customers + 1)]
    s_pos = attr_pos["S"]
    per_group: Dict[Tuple[str, ...], set] = {}
    for values, _ in results:
        customers = tuple(sorted({values[p] for p in c_pos}))
        if len(customers) != n_customers:
            continue  # a customer appearing twice is not a 5-customer group
        per_group.setdefault(customers, set()).add(values[s_pos])
    return sorted(
        (
            (group, len(securities))
            for group, securities in per_group.items()
            if len(securities) >= min_count
        ),
        key=lambda item: (-item[1], item[0]),
    )
