"""Flights-like temporal graph (small, dense, hub-dominated).

The paper's Flights dataset has 650 vertices and 1,700 edges: flights
between airports, valid from departure to arrival. The graph is small and
dense around hub airports, the intervals are short (hours out of a day),
and the *non-temporal* pattern counts are modest — the regime where
JOINFIRST shines on simple patterns (Figure 10, middle).

This generator reproduces those characteristics at the same default
scale. Times are minutes within a day; flight durations are 40 minutes to
several hours; hub airports attract a configurable share of endpoints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.interval import Interval
from .graphs import TemporalGraph


@dataclass
class FlightsConfig:
    """Scale and shape knobs of the Flights-like generator."""

    n_airports: int = 650
    n_flights: int = 1700
    n_hubs: int = 12
    hub_bias: float = 0.7
    day_minutes: int = 1440
    min_duration: int = 40
    max_duration: int = 360
    seed: int = 747


def generate_graph(config: FlightsConfig = FlightsConfig()) -> TemporalGraph:
    """Build the Flights-like temporal graph."""
    rng = random.Random(config.seed)
    graph = TemporalGraph()
    seen = set()
    attempts = 0
    while graph.edge_count < config.n_flights and attempts < config.n_flights * 40:
        attempts += 1
        if rng.random() < config.hub_bias:
            u = rng.randrange(config.n_hubs)
        else:
            u = rng.randrange(config.n_airports)
        v = rng.randrange(config.n_airports)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        departure = rng.randrange(config.day_minutes - config.min_duration)
        duration = rng.randrange(config.min_duration, config.max_duration)
        arrival = min(departure + duration, config.day_minutes)
        graph.add_edge(f"ap{key[0]}", f"ap{key[1]}", Interval(departure, arrival))
    return graph
