"""DBLP-like temporal collaboration graph.

The paper's DBLP workload is a coauthorship graph (2.8M authors, 9.5M
edges) where each edge carries the years two authors kept publishing
together — a set of disjoint intervals. We cannot ship the real snapshot,
so this generator reproduces the characteristics the paper's analysis
depends on:

* heavy-tailed degrees (a few prolific hub authors, a long tail);
* multi-year valid intervals with many short (1–3 year) collaborations
  and a few very durable ones — the Figure 1 histogram's shape;
* bursty temporal locality (collaborations cluster around an author's
  active period), which makes temporal predicates selective;
* optional multi-episode edges (collaboration gaps), exercising the
  IntervalSet machinery.

The scale is configurable; benches default to a few thousand edges so a
pure-Python run finishes in seconds while preserving the relative
algorithm behaviour (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..core.interval import Interval
from .graphs import TemporalGraph


@dataclass
class DBLPConfig:
    """Scale and shape knobs of the DBLP-like generator."""

    n_authors: int = 2000
    n_edges: int = 6000
    first_year: int = 1960
    last_year: int = 2021
    career_span: int = 25  # typical active window of an author
    mean_collab_years: float = 3.0
    long_collab_fraction: float = 0.05  # durable collaborations
    episode_fraction: float = 0.15  # edges with a publication gap
    hub_fraction: float = 0.02  # prolific authors
    hub_bias: float = 0.6
    seed: int = 2022


def generate_graph(config: DBLPConfig = DBLPConfig()) -> TemporalGraph:
    """Build the DBLP-like temporal collaboration graph."""
    rng = random.Random(config.seed)
    n = config.n_authors
    hubs = max(1, int(n * config.hub_fraction))
    # Each author gets an active career window; edges live inside the
    # overlap of their endpoints' windows, giving temporal locality.
    career_start = [
        rng.randrange(config.first_year, max(config.first_year + 1,
                                             config.last_year - 5))
        for _ in range(n)
    ]
    graph = TemporalGraph()
    seen = set()
    attempts = 0
    while graph.edge_count < config.n_edges and attempts < config.n_edges * 30:
        attempts += 1
        u = rng.randrange(hubs) if rng.random() < config.hub_bias else rng.randrange(n)
        v = rng.randrange(hubs) if rng.random() < config.hub_bias else rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        start_floor = max(career_start[u], career_start[v])
        if start_floor >= config.last_year:
            continue
        seen.add(key)
        for interval in _collaboration_intervals(config, rng, start_floor):
            graph.add_edge(f"a{key[0]}", f"a{key[1]}", interval)
    return graph


def _collaboration_intervals(
    config: DBLPConfig, rng: random.Random, start_floor: int
) -> List[Interval]:
    """One or two disjoint collaboration episodes for an author pair."""
    span_end = config.last_year
    start = rng.randrange(start_floor, span_end)
    if rng.random() < config.long_collab_fraction:
        years = rng.randrange(10, config.career_span)
    else:
        years = max(1, int(rng.expovariate(1.0 / config.mean_collab_years)))
    end = min(start + years, span_end)
    episodes = [Interval(start, end)]
    if rng.random() < config.episode_fraction and end + 3 < span_end:
        gap = rng.randrange(2, 6)
        restart = end + gap
        if restart < span_end:
            years2 = max(1, int(rng.expovariate(1.0 / config.mean_collab_years)))
            episodes.append(Interval(restart, min(restart + years2, span_end)))
    return episodes


def toy_figure1_graph() -> TemporalGraph:
    """The 5-author toy example of Figure 1 / Figure 2 (exact)."""
    graph = TemporalGraph()
    graph.add_edge("A", "B", (2013, 2017))
    graph.add_edge("A", "E", (2012, 2015))
    graph.add_edge("B", "C", (2011, 2015))
    graph.add_edge("B", "D", (2017, 2019))
    graph.add_edge("B", "E", (2013, 2016))
    graph.add_edge("C", "D", (2012, 2016))
    graph.add_edge("D", "E", (2016, 2018))
    return graph
