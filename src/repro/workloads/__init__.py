"""Workload generators: the paper's synthetic, graph, and benchmark datasets."""

from . import dblp, flights, graphs, ldbc, stats, synthetic, tpc_bih, tpce
from .stats import workload_stats
from .graphs import TemporalGraph, count_durable_patterns, pattern_query, random_temporal_graph
from .synthetic import SyntheticConfig, expected_result_count, generate

__all__ = [
    "SyntheticConfig",
    "TemporalGraph",
    "count_durable_patterns",
    "dblp",
    "expected_result_count",
    "flights",
    "generate",
    "graphs",
    "ldbc",
    "pattern_query",
    "random_temporal_graph",
    "stats",
    "workload_stats",
    "synthetic",
    "tpc_bih",
    "tpce",
]
