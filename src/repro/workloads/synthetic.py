"""The paper's synthetic workload: huge intermediates, tiny final results.

Section 6.1: "The idea is to enlarge the intermediate temporal join size
while keeping the final (temporal/durable) join size small, i.e., a large
number of intermediate results are dangling without participating in
final results."

Construction, per binary-edge query (line / star / cycle):

* a **dangling mass** — every *shared* attribute gets a small set of hub
  values, every *private* attribute fans out; dangling tuples connect
  hubs to hubs (interior/cycle edges) or fans to hubs (end/leaf edges).
  Value-wise, every consecutive pair of relations joins in ~N^1.5
  combinations and the full non-temporal join is enormous (this is what
  makes JOINFIRST collapse). Interval-wise, relation ``j`` draws its
  intervals from window ``[j·stagger, j·stagger + window]``: consecutive
  windows overlap (so the pairwise *temporal* joins BASELINE materializes
  stay huge) but with ``window < 2·stagger`` no three consecutive windows
  share an instant, so the dangling mass contributes nothing to the final
  result. (By Helly's theorem in 1D it is impossible for *all* pairs to
  overlap while no common point exists, so some far-apart relation pairs
  are necessarily temporally disjoint; value-based optimizers — including
  BASELINE's System-R estimator — cannot see that, which mirrors the
  paper's "no pairwise join ordering can easily compute the join
  results".)
* a **backbone** — ``n_results`` genuine results whose common-intersection
  durations decay polynomially, so the final result count falls as τ
  grows and reaches zero at ``max_durability`` (the paper's "0 results
  for τ ≥ 1000").

All randomness flows from an explicit seed; the same config always builds
the same instance.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.errors import QueryError
from ..core.interval import Interval
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic generator (see module docstring)."""

    n_dangling: int = 200
    n_results: int = 100
    max_durability: int = 1000
    durability_decay: float = 3.0
    window: int = 0  # dangling interval length; 0 = auto (see window_for)
    stagger: int = 300  # shift between consecutive relations' windows
    hubs_per_attr: int = 0  # 0 = auto (degree-dependent, see hub_count)
    seed: int = 7

    def hub_count(self, degree: int = 2) -> int:
        """Hub values for a shared attribute with the given edge degree.

        Junction attributes (degree 2, line/cycle interiors) get ~√D hubs
        so hub-to-hub bridge tuples stay distinct while each junction
        still fans out ~√D ways (pairwise joins ≈ D^1.5). High-degree
        attributes (star centers) get very few hubs so all n relations
        collide on them (pairwise joins ≈ D²/hubs).
        """
        if self.hubs_per_attr > 0:
            return self.hubs_per_attr
        if degree >= 3:
            return 4
        return max(2, int(math.isqrt(max(1, self.n_dangling))))

    def window_for(self, n_relations: int) -> int:
        """Dangling window length for an ``n_relations``-way query.

        ``(n-2)·stagger + margin`` makes every (n−1) *consecutive*
        relation windows share an instant — so BASELINE's intermediate
        results survive (and multiply) through every binary join — while
        the full n-way combination never has a common instant. The margin
        (stagger/3) strictly exceeds the jitter (stagger/4), which keeps
        both properties jitter-proof.
        """
        margin = self.stagger // 3
        return max(1, (n_relations - 2)) * self.stagger + margin


def generate(
    query: JoinQuery, config: SyntheticConfig = SyntheticConfig()
) -> Dict[str, TemporalRelation]:
    """Build a synthetic temporal instance for a binary-edge query."""
    for name in query.edge_names:
        if len(query.edge(name)) != 2:
            raise QueryError(
                "the synthetic generator supports binary-edge queries "
                f"(line/star/cycle); {name!r} has {query.edge(name)}"
            )
    rng = random.Random(config.seed)
    rows: Dict[str, Dict[Tuple[object, object], Interval]] = {
        name: {} for name in query.edge_names
    }
    _add_dangling_mass(query, config, rng, rows)
    _add_backbone(query, config, rng, rows)
    return {
        name: TemporalRelation(name, query.edge(name), list(tuples.items()))
        for name, tuples in rows.items()
    }


# ----------------------------------------------------------------------
# Dangling mass
# ----------------------------------------------------------------------
def _dangling_interval(
    config: SyntheticConfig, rng: random.Random, slot: int, window: int
) -> Interval:
    """Interval inside relation slot ``slot``'s window, with jitter."""
    base = slot * config.stagger
    jitter = rng.randrange(max(1, config.stagger // 4))
    return Interval(base + jitter, base + jitter + window)


def _add_dangling_mass(
    query: JoinQuery,
    config: SyntheticConfig,
    rng: random.Random,
    rows: Dict[str, Dict[Tuple[object, object], Interval]],
) -> None:
    hg = query.hypergraph
    hub_counts = {
        attr: config.hub_count(len(hg.edges_of(attr))) for attr in hg.attrs
    }

    def value(attr: str, edge_slot: int, i: int, stride: int) -> object:
        if len(hg.edges_of(attr)) > 1:
            # Shared attribute: hub values. The second side strides by the
            # first side's hub count so hub-hub tuples enumerate distinct
            # pairs for i < hubs_a · hubs_b.
            idx = (i // stride) % hub_counts[attr]
            return f"h_{attr}_{idx}"
        return f"f{edge_slot}_{i}"

    for slot, name in enumerate(query.edge_names):
        a, b = query.edge(name)
        a_shared = len(hg.edges_of(a)) > 1
        b_shared = len(hg.edges_of(b)) > 1
        if a_shared and b_shared:
            count = min(config.n_dangling, hub_counts[a] * hub_counts[b])
        else:
            count = config.n_dangling
        bucket = rows[name]
        stride_b = hub_counts[a] if a_shared else 1
        window = config.window or config.window_for(len(query.edge_names))
        for i in range(count):
            values = (value(a, slot, i, 1), value(b, slot, i, stride_b))
            if values not in bucket:
                bucket[values] = _dangling_interval(config, rng, slot, window)


# ----------------------------------------------------------------------
# Backbone (genuine results)
# ----------------------------------------------------------------------
def backbone_durations(config: SyntheticConfig) -> List[int]:
    """Deterministic decaying durability distribution of the backbone."""
    out = []
    for i in range(config.n_results):
        frac = i / max(1, config.n_results)
        dur = int(config.max_durability * (1.0 - frac) ** config.durability_decay)
        out.append(max(1, min(dur, config.max_durability - 1)))
    return out


def _add_backbone(
    query: JoinQuery,
    config: SyntheticConfig,
    rng: random.Random,
    rows: Dict[str, Dict[Tuple[object, object], Interval]],
) -> None:
    durations = backbone_durations(config)
    attrs = query.attrs
    for i, dur in enumerate(durations):
        start = rng.randrange(config.max_durability)
        interval = Interval(start, start + dur)
        assignment = {x: f"b{i}_{x}" for x in attrs}
        for name in query.edge_names:
            ea, eb = query.edge(name)
            rows[name][(assignment[ea], assignment[eb])] = interval


def expected_result_count(config: SyntheticConfig, tau: float) -> int:
    """How many backbone results survive durability threshold τ."""
    return sum(1 for d in backbone_durations(config) if d >= tau)
