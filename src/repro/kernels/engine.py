"""The kernel TIMEFIRST driver: one interning pass, one flat sweep.

:func:`kernel_timefirst_join` mirrors
:func:`repro.algorithms.timefirst.timefirst_join` step for step —
validate, τ/2-shrink, r-hierarchical reduction, state selection, sweep,
τ/2-expand — but runs on :class:`~repro.kernels.columns.KernelColumns`:
the event stream is flattened and sorted exactly once per call into int
codes, the dynamic structure is keyed on interned ints, and the results
are de-interned in one batch at emission. Output equality with the
object path (normalized row sets, ``sweep.*`` / ``hier.*`` / ``ghd.*``
counters, ``phase.sweep`` timer) is the correctness contract, pinned by
the hypothesis equivalence suite.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from ..core.durability import shrink_database
from ..core.errors import InvariantError
from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..obs import ExecutionStats
from .columns import KernelColumns, build_columns, deintern_results

#: Algorithms with a kernel fast path. Every other registered algorithm
#: silently ignores ``engine="kernel"`` (the dispatch layer strips the
#: kwarg rather than erroring — see ``registry.temporal_join``).
KERNEL_ALGORITHMS = frozenset({"timefirst"})


def supports_kernel(algorithm: str) -> bool:
    """True iff ``algorithm`` has a kernel fast path."""
    return algorithm in KERNEL_ALGORITHMS


def prepare_run(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    stats: Optional[ExecutionStats] = None,
) -> Tuple[JoinQuery, Mapping[str, TemporalRelation]]:
    """Validate, τ/2-shrink and (if r-hierarchical) reduce the instance.

    Returns the (query, database) pair the sweep actually runs on — the
    same pair the object path's ``timefirst_join`` would construct. The
    parallel executor calls this before interning so shard columns are
    built from the final run instance.
    """
    from ..core.classification import reduce_instance

    query.validate(database)
    if stats is None:
        db = shrink_database(database, tau)
    else:
        with stats.timer("phase.shrink"):
            db = shrink_database(database, tau)
    if query.is_hierarchical or not query.is_r_hierarchical:
        return query, db
    reduced_hg, reduced_db = reduce_instance(query.hypergraph, db)
    # Keep the original output attribute order: reduction never removes
    # attributes, only edges.
    run_query = JoinQuery(
        {n: reduced_hg.edge(n) for n in reduced_hg.edge_names},
        attr_order=query.attrs,
    )
    return run_query, reduced_db


def make_state(
    run_query: JoinQuery,
    columns: KernelColumns,
    stats: Optional[ExecutionStats] = None,
):
    """Select the kernel sweep state the way the object path does."""
    from .generic import KernelGenericState
    from .hierarchy import KernelHierarchicalState

    if run_query.is_hierarchical:
        return KernelHierarchicalState(run_query, columns, stats=stats)
    return KernelGenericState(run_query, columns, stats=stats)


def kernel_sweep(
    run_query: JoinQuery,
    columns: KernelColumns,
    state,
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """Algorithm 1 over pre-sorted event codes (interned output rows)."""
    out = JoinResultSet(run_query.attrs)
    n = columns.n_rows
    if n == 0:
        if stats is not None:
            stats.incr("results", 0)
        return out
    codes = columns.event_codes
    insert_row = state.insert_row
    expire_row = state.expire_row
    if stats is None:
        for code in codes:
            if (code // n) & 1:
                expire_row(code % n, out)
            else:
                insert_row(code % n)
        return out
    active = peak = inserts = 0
    with stats.timer("phase.sweep"):
        for code in codes:
            if (code // n) & 1:
                expire_row(code % n, out)
                active -= 1
            else:
                inserts += 1
                active += 1
                if active > peak:
                    peak = active
                insert_row(code % n)
    stats.incr("sweep.events", len(codes))
    stats.incr("sweep.inserts", inserts)
    stats.incr("sweep.enumerate_calls", len(codes) - inserts)
    stats.peak("sweep.active_peak", peak)
    stats.incr("results", len(out))
    return out


def kernel_timefirst_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """τ-durable TIMEFIRST on the columnar kernel substrate.

    Drop-in equivalent of the object path's ``timefirst_join`` (modulo
    ``state_factory``, which forces the object engine): same counters,
    same normalized results, one event sort per call.
    """
    run_query, run_db = prepare_run(query, database, tau, stats=stats)
    columns = build_columns(run_db, stats=stats)
    state = make_state(run_query, columns, stats=stats)
    result = kernel_sweep(run_query, columns, state, stats=stats)
    if tuple(result.attrs) != tuple(query.attrs):  # pragma: no cover - defensive
        raise InvariantError("kernel sweep returned unexpected attribute layout")
    result = deintern_results(columns.domains, result)
    return result.expand_intervals(tau / 2 if tau else 0)
