"""Columnar execution kernels: interned values, rank-space endpoints.

The kernel engine is a fast path under ``temporal_join(engine=...)``,
not a new algorithm: it replays TIMEFIRST's exact event order over
pre-flattened int arrays and de-interns at emission, so results are
indistinguishable from the object path. See DESIGN.md §"Kernel layer".

Layout:

* :mod:`~repro.kernels.columns` — the only module that touches object
  rows: interning, rank compression, the single per-call event sort,
  de-interning, shard subsetting, timeline bridging.
* :mod:`~repro.kernels.hierarchy` / :mod:`~repro.kernels.generic` —
  row-id driven sweep states (Theorem 6 / Theorem 9 structures).
* :mod:`~repro.kernels.engine` — the τ-aware driver and the
  ``supports_kernel`` capability probe used by the dispatch layer.
* :mod:`~repro.kernels.prepared` — pay the ingest once per *database*:
  :func:`prepare` / :class:`PreparedDatabase` /
  :func:`run_batch` amortize interning, ranking and the event sort
  across a whole standing-query fleet.
"""

from .columns import (
    KernelColumns,
    build_columns,
    deintern_results,
    shard_row_ids,
    shrink_columns,
)
from .prepared import PreparedDatabase, prepare, run_batch
from .engine import (
    KERNEL_ALGORITHMS,
    kernel_sweep,
    kernel_timefirst_join,
    make_state,
    prepare_run,
    supports_kernel,
)
from .generic import KernelGenericState
from .hierarchy import KernelHierarchicalState

__all__ = [
    "KERNEL_ALGORITHMS",
    "KernelColumns",
    "KernelGenericState",
    "KernelHierarchicalState",
    "PreparedDatabase",
    "build_columns",
    "deintern_results",
    "kernel_sweep",
    "kernel_timefirst_join",
    "make_state",
    "prepare",
    "prepare_run",
    "run_batch",
    "shard_row_ids",
    "shrink_columns",
    "supports_kernel",
]
