"""Kernel fast path for the §3.2 attribute-tree sweep state.

Same dynamic structure as
:class:`repro.algorithms.hierarchical.HierarchicalState` — ``X_u``
support counting over the attribute tree, ENUMERATE via the root-path
membership walk, REPORT via per-subtree fragments — but keyed entirely
on interned ints and driven by row ids:

* every per-event key (path-value permutation, parent group key, the
  ancestor keys of the Algorithm 2 walk inputs) is precomputed once per
  row from the interned columns, so the hot loop does dict operations
  on small int tuples and nothing else;
* upward propagation, REPORT and the emission layout are inherited
  unchanged from the object state — interned ints are ordinary hashable
  values to them — which keeps Theorem 6's update/enumeration bounds
  and the output semantics identical by construction.

De-interning happens once at the end of the sweep
(:func:`repro.kernels.columns.deintern_results`), not per result.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..algorithms.hierarchical import HierarchicalState
from ..core.errors import QueryError
from ..core.query import JoinQuery
from ..core.result import JoinResultSet
from ..obs import ExecutionStats
from .columns import KernelColumns


class KernelHierarchicalState(HierarchicalState):
    """Row-id driven :class:`HierarchicalState` over interned columns."""

    def __init__(
        self,
        query: JoinQuery,
        columns: KernelColumns,
        stats: Optional[ExecutionStats] = None,
    ) -> None:
        super().__init__(query, stats=stats)
        nodes = self.tree.nodes
        prep = {}
        for name, leaf in self._leaf_id.items():
            chain: List[Tuple[dict, int, int]] = []
            node_id = nodes[leaf].parent
            while node_id is not None:
                chain.append(
                    (
                        self._state[node_id].support,
                        self._path_len[node_id],
                        self._nchildren[node_id],
                    )
                )
                node_id = nodes[node_id].parent
            prep[name] = (
                leaf,
                nodes[leaf].parent,
                self._perm[name],
                self._parent_path_len[leaf],
                tuple(chain),
                nodes[leaf].path_attrs,
            )

        row_pv: List[Tuple[int, ...]] = []
        row_gkey: List[Tuple[int, ...]] = []
        row_leaf: List[int] = []
        row_leaf_parent: List[Optional[int]] = []
        row_chain: List[tuple] = []
        row_path: List[Tuple[str, ...]] = []
        row_names = columns.row_relation
        row_values = columns.row_values
        for rid in range(columns.n_rows):
            leaf, parent, perm, plen, chain, path = prep[row_names[rid]]
            values = row_values[rid]
            pv = tuple(values[i] for i in perm)
            row_pv.append(pv)
            row_gkey.append(pv[:plen])
            row_leaf.append(leaf)
            row_leaf_parent.append(parent)
            row_chain.append(chain)
            row_path.append(path)
        self._row_pv = row_pv
        self._row_gkey = row_gkey
        self._row_leaf = row_leaf
        self._row_leaf_parent = row_leaf_parent
        self._row_chain = row_chain
        self._row_path = row_path
        self._row_interval = columns.intervals()
        self._row_relation = row_names

    # ------------------------------------------------------------------
    # Row-id sweep interface (the kernel event loop calls only these)
    # ------------------------------------------------------------------
    def insert_row(self, rid: int) -> None:
        leaf = self._row_leaf[rid]
        pv = self._row_pv[rid]
        gkey = self._row_gkey[rid]
        if self._stats is not None:
            self._stats.incr("hier.inserts")
        groups = self._state[leaf].groups
        bucket = groups.get(gkey)
        if bucket is None:
            groups[gkey] = {pv: self._row_interval[rid]}
            self._signal_nonempty(self._row_leaf_parent[rid], gkey)
        else:
            if pv in bucket:
                raise QueryError(
                    f"duplicate active tuple {pv} in relation "
                    f"{self._row_relation[rid]!r}; the temporal model "
                    "requires distinct tuples (see IntervalSet/"
                    "explode_interval_sets for multi-interval data)"
                )
            bucket[pv] = self._row_interval[rid]

    def expire_row(self, rid: int, out: JoinResultSet) -> None:
        """ENUMERATE (Algorithm 2) then DELETE for one expiring row."""
        pv = self._row_pv[rid]
        for support, path_len, nchildren in self._row_chain[rid]:
            if support.get(pv[:path_len], 0) != nchildren:
                break
        else:
            binding = dict(zip(self._row_path[rid], pv))
            fragments = self._report(self.tree.root.node_id, binding)
            if self._stats is not None:
                self._stats.incr("hier.report_fragments", len(fragments))
            attrs = self._out_attrs
            append = out.append
            for fragment, result_interval in fragments:
                append(
                    tuple(
                        fragment[a] if a in fragment else binding[a]
                        for a in attrs
                    ),
                    result_interval,
                )
        # DELETE (Algorithm 1, line 9).
        leaf = self._row_leaf[rid]
        gkey = self._row_gkey[rid]
        if self._stats is not None:
            self._stats.incr("hier.deletes")
        groups = self._state[leaf].groups
        bucket = groups[gkey]
        del bucket[pv]
        if not bucket:
            del groups[gkey]
            self._signal_empty(self._row_leaf_parent[rid], gkey)
