"""Rank-space Allen-predicate binary joins over kernel columns.

The kernel counterpart of :func:`repro.algorithms.binary.binary_temporal_join`
for extended Allen predicates: both relations' endpoints already live in
the shared rank space of a :class:`~repro.kernels.columns.KernelColumns`
bundle, and rank compression preserves *both* order and equality — so
every Allen atom (including the equality-shaped ``meets``/``starts``/
``finishes``/``equals``) evaluates exactly on the dense int ranks, with
no float comparisons anywhere in the sweep. Values stay interned until
one de-intern pass at emission; no object rows are touched (the
``kernel-no-object-rows`` rule holds here as everywhere in
:mod:`repro.kernels`).

With ``prepared=`` the per-call intern/rank/sort cost disappears
entirely: the sweep runs straight over the artifact's cached columns,
so switching a standing workload between predicates costs only the
sweep itself.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..algorithms.allen import lazy_sweep_pairs_ranked
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..obs import ExecutionStats
from .columns import KernelColumns, build_columns, deintern_results

Triple = Tuple[int, int, int]


def kernel_predicate_join(
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    predicate: str,
    stats: Optional[ExecutionStats] = None,
    prepared=None,
) -> JoinResultSet:
    """Binary Allen-predicate join on the kernel substrate.

    ``query`` must have exactly two edges (the registry validates this
    before dispatching here). Rows are grouped by the interned
    shared-attribute key — interning is per attribute *domain*, so equal
    values in different relations share one code and the group keys
    compare exactly — and each key group runs one rank-space lazy sweep.
    Returns de-interned results in ``query.attrs`` order; durability
    filtering stays with the caller (predicate joins filter the emitted
    pair interval rather than shrinking inputs).
    """
    left_name, right_name = query.edge_names
    if prepared is not None:
        columns = prepared.columns_for(query, 0, stats=stats)
    else:
        columns = build_columns(
            {left_name: database[left_name], right_name: database[right_name]},
            stats,
        )

    left_attrs = query.hypergraph.edge(left_name)
    right_attrs = query.hypergraph.edge(right_name)
    shared = [a for a in left_attrs if a in set(right_attrs)]
    left_key_pos = [left_attrs.index(a) for a in shared]
    right_key_pos = [right_attrs.index(a) for a in shared]

    # Output layout: every query attribute reads from the left row when
    # the left edge carries it, from the right row otherwise.
    sources: List[Tuple[bool, int]] = []
    for a in query.attrs:
        if a in left_attrs:
            sources.append((True, left_attrs.index(a)))
        else:
            sources.append((False, right_attrs.index(a)))

    left_groups: Dict[Tuple[int, ...], List[Triple]] = {}
    right_groups: Dict[Tuple[int, ...], List[Triple]] = {}
    row_relation = columns.row_relation
    row_values = columns.row_values
    row_lo = columns.row_lo
    row_hi = columns.row_hi
    for rid in range(columns.n_rows):
        rel = row_relation[rid]
        values = row_values[rid]
        if rel == left_name:
            key = tuple(values[p] for p in left_key_pos)
            left_groups.setdefault(key, []).append((rid, row_lo[rid], row_hi[rid]))
        elif rel == right_name:
            key = tuple(values[p] for p in right_key_pos)
            right_groups.setdefault(key, []).append((rid, row_lo[rid], row_hi[rid]))

    out = JoinResultSet(query.attrs)
    append = out.append
    times = columns.rank_times
    if len(left_groups) > len(right_groups):
        keys = (k for k in right_groups if k in left_groups)
    else:
        keys = (k for k in left_groups if k in right_groups)
    for key in keys:
        pairs = lazy_sweep_pairs_ranked(
            left_groups[key],
            right_groups[key],
            times,
            predicate=predicate,
            stats=stats,
        )
        for lrid, rrid, interval in pairs:
            lvals = row_values[lrid]
            rvals = row_values[rrid]
            append(
                tuple(
                    lvals[p] if from_left else rvals[p]
                    for from_left, p in sources
                ),
                interval,
            )
    return deintern_results(columns.domains, out)
