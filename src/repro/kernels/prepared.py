"""Prepared databases: pay the columnar ingest once, sweep many times.

The serving story in ROADMAP.md is "one ingest path, N standing
queries". A cold ``temporal_join(engine="kernel")`` call re-interns
values, re-ranks endpoints and re-sorts the event stream every time;
:func:`prepare` hoists all three into a reusable, immutable, picklable
:class:`PreparedDatabase` artifact that any number of queries then sweep
over:

* ``temporal_join(query, database, prepared=artifact)`` validates the
  artifact against ``database`` and skips ``build_columns`` entirely;
* :func:`run_batch` evaluates a whole query fleet against one artifact —
  distinct hypergraphs are swept once each (queries differing only in
  output attribute order share one sweep and get projections of its
  rows), τ-shrunk views and per-query relation restrictions are derived
  from the base columns without re-sorting (``kernel.sort_calls`` stays
  at the single ingest sort for a τ=0 batch), and a plan cache keyed by
  :func:`repro.core.planner.plan_signature` + algorithm lets repeated
  templates skip the Figure-7 planner;
* with ``workers >= 2`` the batch ships each worker *one* shard column
  subset and reuses it for every query in the batch, instead of
  re-subsetting per query.

Invalidation is the caller's job: the artifact is a snapshot. Passing a
database whose relations no longer match (names, attribute tuples, row
counts, rows) raises :class:`~repro.core.errors.QueryError`; mutating a
relation in place behind the artifact's back is undetectable and
unsupported. Queries that require the footnote-2 r-hierarchical
*instance* reduction fall back to the cold kernel path — the reduction
rewrites the data per query, which is exactly what a shared artifact
cannot amortize.

Telemetry: ``prepared.*`` counters (cache hits/misses for plans, τ-views
and restrictions, reuse and shared-result counts, cold fallbacks) plus
``phase.prepared.*`` timers, including ``phase.prepared.saved`` — the
estimated ingest time each reuse avoided, pro-rated by the fraction of
prepared rows the query touched.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import QueryError
from ..core.interval import Number
from ..core.planner import Plan, hypergraph_signature, plan, plan_signature
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..obs import ExecutionStats
from .columns import (
    KernelColumns,
    build_columns,
    deintern_results,
    shrink_columns,
)
from .engine import kernel_sweep, make_state

Database = Mapping[str, TemporalRelation]


def needs_reduction(query: JoinQuery) -> bool:
    """True iff TIMEFIRST on ``query`` rewrites the *instance* first.

    Merely-r-hierarchical queries go through the footnote-2 reduction,
    which drops rows per query — incompatible with sharing one prepared
    column set across a fleet, so such queries take the cold path.
    """
    return (not query.is_hierarchical) and query.is_r_hierarchical


class PreparedDatabase:
    """Immutable prepared form of one database: columns built once.

    Holds the base :class:`~repro.kernels.columns.KernelColumns` (raw,
    un-shrunk endpoints) plus three caches that fill lazily and only
    ever grow:

    * τ-views — ``shrink_columns`` output per distinct ``tau`` (each
      costs one re-rank + re-sort, then is reused);
    * restrictions — per ``(tau, relation subset)`` column slices,
      derived from the view's sorted stream without re-sorting;
    * plans — :class:`~repro.core.planner.Plan` per
      :func:`~repro.core.planner.plan_signature`.

    The artifact is picklable (caches included) and safe to share
    across any number of queries; nothing in it is ever mutated after
    construction except the append-only caches.
    """

    def __init__(
        self,
        database: Database,
        columns: KernelColumns,
        build_seconds: float = 0.0,
        plan_cache=None,
    ) -> None:
        self.database = database
        self.columns = columns
        self.build_seconds = build_seconds
        self._views: Dict[Number, KernelColumns] = {}
        self._restrictions: Dict[Tuple, KernelColumns] = {}
        self._plans: Dict[Tuple, Plan] = {}
        #: Optional persistent :class:`repro.core.plancache.PlanCache`
        #: (or directory path) consulted on in-memory plan-cache misses.
        self.plan_cache = plan_cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreparedDatabase(relations={list(self.columns.relations)}, "
            f"rows={self.columns.n_rows})"
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate_against(self, database: Database) -> None:
        """Check the artifact still describes ``database`` exactly.

        Identity is the fast path (same mapping, or same relation
        objects); otherwise relations must match by name set, attribute
        tuple, row count and — the full O(N) check, only reached for
        same-shaped but distinct objects — row-for-row content. Any
        mismatch raises :class:`QueryError` naming the stale relation.
        """
        if database is self.database:
            return
        mine = self.database
        if set(database) != set(mine):
            raise QueryError(
                "prepared database does not match: relations "
                f"{sorted(mine)} were prepared, got {sorted(database)}"
            )
        for name, prepared_rel in mine.items():
            rel = database[name]
            if rel is prepared_rel:
                continue
            if tuple(rel.attrs) != tuple(prepared_rel.attrs):
                raise QueryError(
                    f"prepared relation {name!r} has attributes "
                    f"{prepared_rel.attrs}, database has {rel.attrs}"
                )
            if len(rel) != len(prepared_rel) or list(rel) != list(prepared_rel):
                raise QueryError(
                    f"prepared columns are stale: relation {name!r} changed "
                    "since prepare(); re-prepare the database"
                )

    # ------------------------------------------------------------------
    # Cached derivations
    # ------------------------------------------------------------------
    def view(
        self, tau: Number, stats: Optional[ExecutionStats] = None
    ) -> KernelColumns:
        """The τ/2-shrunk columns for ``tau`` (base columns for τ=0)."""
        if tau == 0:
            return self.columns
        cached = self._views.get(tau)
        if cached is not None:
            if stats is not None:
                stats.incr("prepared.view_cache_hits")
            return cached
        if stats is None:
            cached = shrink_columns(self.columns, tau)
        else:
            stats.incr("prepared.view_cache_misses")
            with stats.timer("phase.prepared.view"):
                cached = shrink_columns(self.columns, tau, stats=stats)
        self._views[tau] = cached
        return cached

    def columns_for(
        self,
        query: JoinQuery,
        tau: Number = 0,
        stats: Optional[ExecutionStats] = None,
    ) -> KernelColumns:
        """Columns for ``query`` at ``tau``: view + relation restriction."""
        view_cols = self.view(tau, stats=stats)
        keep = set(query.edge_names)
        if keep == set(view_cols.relations):
            return view_cols
        key = (tau, tuple(sorted(keep)))
        cached = self._restrictions.get(key)
        if cached is not None:
            if stats is not None:
                stats.incr("prepared.restrict_cache_hits")
            return cached
        if stats is None:
            cached = view_cols.restrict(keep)
        else:
            stats.incr("prepared.restrict_cache_misses")
            with stats.timer("phase.prepared.restrict"):
                cached = view_cols.restrict(keep)
        self._restrictions[key] = cached
        return cached

    def cached_plan(
        self, query: JoinQuery, stats: Optional[ExecutionStats] = None
    ) -> Plan:
        """Figure-7 plan for ``query``, cached by shape signature.

        In-memory misses fall through to the planner with this
        artifact's persistent :attr:`plan_cache` (when configured), so a
        template fleet pays the decomposition search at most once per
        shape *across* processes, not just within one.
        """
        key = plan_signature(query)
        cached = self._plans.get(key)
        if cached is not None:
            if stats is not None:
                stats.incr("prepared.plan_cache_hits")
            return cached
        if stats is not None:
            stats.incr("prepared.plan_cache_misses")
        cached = plan(query, cache=self.plan_cache, stats=stats)
        self._plans[key] = cached
        return cached


def prepare(
    database: Database,
    stats: Optional[ExecutionStats] = None,
    plan_cache=None,
) -> PreparedDatabase:
    """Build the reusable columnar artifact for ``database`` — once.

    Interns values, rank-compresses endpoints and sorts the event-code
    stream exactly once (``kernel.sort_calls`` +1); every subsequent
    ``temporal_join(..., prepared=...)`` or :func:`run_batch` call over
    the artifact skips all three. ``plan_cache`` (a
    :class:`repro.core.plancache.PlanCache` or directory path) makes the
    artifact's plan cache persistent across processes.
    """
    start = time.perf_counter()
    columns = build_columns(database, stats=stats)
    return PreparedDatabase(
        database,
        columns,
        build_seconds=time.perf_counter() - start,
        plan_cache=plan_cache,
    )


def _record_reuse(
    prepared: PreparedDatabase,
    columns: KernelColumns,
    stats: Optional[ExecutionStats],
) -> None:
    if stats is None:
        return
    stats.incr("prepared.reuse")
    total = prepared.columns.n_rows
    if prepared.build_seconds and total:
        stats.add_time(
            "phase.prepared.saved",
            prepared.build_seconds * (columns.n_rows / total),
        )


def prepared_kernel_join(
    query: JoinQuery,
    prepared: PreparedDatabase,
    tau: Number = 0,
    stats: Optional[ExecutionStats] = None,
) -> JoinResultSet:
    """TIMEFIRST over prepared columns: no interning, no event sort.

    The caller (the dispatch layer) has already validated the artifact
    against the live database and checked that ``query`` does not need
    the r-hierarchical instance reduction.
    """
    query.validate(prepared.database)
    columns = prepared.columns_for(query, tau, stats=stats)
    _record_reuse(prepared, columns, stats)
    state = make_state(query, columns, stats=stats)
    result = kernel_sweep(query, columns, state, stats=stats)
    result = deintern_results(columns.domains, result)
    return result.expand_intervals(tau / 2 if tau else 0)


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------

class _Evaluation:
    """One distinct (hypergraph, algorithm) sweep shared by ≥1 queries."""

    __slots__ = ("query", "name", "indices", "kernel", "result")

    def __init__(self, query: JoinQuery, name: str) -> None:
        self.query = query          # canonical query (first seen)
        self.name = name            # resolved algorithm name
        self.indices: List[int] = []  # positions in the caller's list
        self.kernel = False
        self.result: Optional[JoinResultSet] = None


def run_batch(
    queries: Sequence[JoinQuery],
    prepared: PreparedDatabase,
    tau: Number = 0,
    algorithm: str = "auto",
    engine: str = "auto",
    stats: Optional[ExecutionStats] = None,
    workers: Optional[int] = None,
    parallel_mode: str = "process",
) -> List[JoinResultSet]:
    """Evaluate a fleet of queries against one prepared database.

    Returns one :class:`JoinResultSet` per input query, in order, each
    equal (up to row order) to ``temporal_join(q, prepared.database,
    tau=tau, algorithm=algorithm, engine=engine)``. The batch is where
    amortization compounds:

    * preparation (intern / rank / event sort) is inherited from the
      artifact — a τ=0 batch performs **zero** additional sorts;
    * queries sharing a hypergraph share one sweep: duplicates receive
      the same rows (``prepared.shared_results``), attribute-order
      variants a projection of them;
    * with ``workers >= 2`` all kernel-eligible sweeps in the batch run
      over one set of shard column subsets, shipped to the pool once.

    Queries the kernel cannot serve from the artifact — non-kernel
    algorithms, or r-hierarchical queries needing the per-query instance
    reduction — fall back to cold ``temporal_join`` on the relations
    they touch (``prepared.fallback_queries``).
    """
    from ..algorithms.registry import (
        _check_engine,
        _check_tau,
        _engine_decision,
        _ensure_loaded,
        _resolve_auto,
        get_algorithm,
        temporal_join,
    )

    _ensure_loaded()
    _check_tau(tau)
    _check_engine(engine)
    if workers is not None and workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers!r}")
    n_workers = workers if workers is not None else 1

    # ------------------------------------------------------------------
    # Resolve + dedup: one _Evaluation per distinct (hypergraph, algo).
    # ------------------------------------------------------------------
    evaluations: Dict[Tuple, _Evaluation] = {}
    order: List[_Evaluation] = []
    for index, query in enumerate(queries):
        query.validate(prepared.database)
        if algorithm == "auto":
            choice = prepared.cached_plan(query, stats=stats)
            name, _, _ = _resolve_auto(query, {}, choice=choice)
        else:
            name = algorithm
            get_algorithm(algorithm)  # raises on unknown names up front
        key = (hypergraph_signature(query), name)
        evaluation = evaluations.get(key)
        if evaluation is None:
            evaluation = _Evaluation(query, name)
            used_engine, reason = _engine_decision(name, engine, {})
            evaluation.kernel = used_engine == "kernel"
            if evaluation.kernel and needs_reduction(query):
                evaluation.kernel = False
                reason = (
                    "r-hierarchical instance reduction is per-query; "
                    "prepared columns cannot be shared, running cold"
                )
            if reason is not None and stats is not None:
                stats.note("kernel.fallback_reason", reason)
            evaluations[key] = evaluation
            order.append(evaluation)
        evaluation.indices.append(index)
    if stats is not None:
        stats.incr("prepared.batch_queries", len(queries))
        stats.incr("prepared.batch_evaluations", len(order))

    # ------------------------------------------------------------------
    # Execute each distinct evaluation once.
    # ------------------------------------------------------------------
    kernel_evals = [e for e in order if e.kernel]
    if n_workers > 1 and kernel_evals:
        _run_kernel_batch_parallel(
            kernel_evals, prepared, tau, n_workers, parallel_mode, stats
        )
    else:
        for evaluation in kernel_evals:
            evaluation.result = prepared_kernel_join(
                evaluation.query, prepared, tau=tau, stats=stats
            )
    for evaluation in order:
        if evaluation.kernel:
            continue
        sub_db = {
            name: prepared.database[name]
            for name in evaluation.query.edge_names
        }
        evaluation.result = temporal_join(
            evaluation.query,
            sub_db,
            tau=tau,
            algorithm=evaluation.name,
            engine=engine,
            stats=stats,
            workers=workers,
            parallel_mode=parallel_mode,
        )
        if stats is not None:
            stats.incr("prepared.fallback_queries", len(evaluation.indices))

    # ------------------------------------------------------------------
    # Distribute: shared rows, projected into each requested attr order.
    # ------------------------------------------------------------------
    results: List[Optional[JoinResultSet]] = [None] * len(queries)
    for evaluation in order:
        shared = evaluation.result
        for position, index in enumerate(evaluation.indices):
            query = queries[index]
            # Distribution operates on de-interned *result* rows, after
            # every sweep finished — not per-event object rows in a
            # kernel hot loop, which is what the rule polices.
            if tuple(query.attrs) == tuple(shared.attrs):
                results[index] = (
                    shared
                    if position == 0
                    else JoinResultSet(query.attrs, shared.rows)  # repro-lint: disable=kernel-no-object-rows
                )
            else:
                at = [shared.attrs.index(a) for a in query.attrs]
                results[index] = JoinResultSet(
                    query.attrs,
                    (
                        (tuple(values[p] for p in at), interval)
                        for values, interval in shared.rows  # repro-lint: disable=kernel-no-object-rows
                    ),
                )
            if position and stats is not None:
                stats.incr("prepared.shared_results")
    return results  # type: ignore[return-value]


def _run_kernel_batch_parallel(
    kernel_evals: List[_Evaluation],
    prepared: PreparedDatabase,
    tau: Number,
    workers: int,
    mode: str,
    stats: Optional[ExecutionStats],
) -> None:
    """Run every kernel evaluation of a batch over one shard fan-out.

    The τ-view is sharded once; each worker receives its column subset
    once and sweeps *all* batch queries over it (restricting locally per
    distinct relation subset). Per-query ownership filtering keeps the
    exactly-once merge rule of :mod:`repro.parallel` intact, so results
    equal the serial prepared path up to row order.
    """
    from ..parallel.executor import MODES, run_batch_tasks
    from ..parallel.partition import partition_timeline
    from ..parallel.worker import BatchShardTask
    from .columns import shard_row_ids

    if mode not in MODES:
        raise QueryError(f"unknown parallel mode {mode!r}; expected {MODES}")
    view = prepared.view(tau, stats=stats)
    _record_reuse(prepared, view, stats)
    partition = partition_timeline(prepared.database, workers)
    assignments = shard_row_ids(view, partition.cuts, tau)
    replicated = sum(len(rids) for rids in assignments) - view.n_rows
    run_queries = [evaluation.query for evaluation in kernel_evals]
    tasks = [
        BatchShardTask(
            shard=shard,
            queries=run_queries,
            tau=tau,
            cuts=partition.cuts,
            columns=view.subset(rids),
            collect_stats=stats is not None,
        )
        for shard, rids in enumerate(assignments)
    ]
    n_procs = min(workers, len(tasks))
    outcomes = run_batch_tasks(tasks, n_procs, mode)
    outcomes = sorted(outcomes, key=lambda outcome: outcome.shard)
    for position, evaluation in enumerate(kernel_evals):
        rows = [
            row
            for outcome in outcomes
            for row in outcome.rows_per_query[position]
        ]
        evaluation.result = JoinResultSet(evaluation.query.attrs, rows)
    if stats is not None:
        for outcome in outcomes:
            if outcome.stats is not None:
                stats.merge(outcome.stats)
        stats.incr("parallel.shards", len(outcomes))
        stats.incr("parallel.workers", n_procs)
        stats.incr("parallel.replicated", replicated)
        times = []
        for outcome in outcomes:
            stats.observe("parallel.shard_input", outcome.input_size)
            stats.add_time(
                f"phase.parallel.shard{outcome.shard:02d}", outcome.seconds
            )
            times.append(outcome.seconds)
        stats.add_time("phase.parallel.workers", sum(times))
        mean = sum(times) / len(times) if times else 0.0
        skew = round(100 * max(times) / mean) if mean > 0 else 100
        stats.peak("parallel.skew_pct_peak", skew)
