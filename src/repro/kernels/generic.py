"""Kernel fast path for the §3.3 GHD sweep state.

Subclasses :class:`repro.algorithms.generic_state.GenericGHDState` so the
restriction cascade, bag materialization and Yannakakis pass stay the
single proven implementation, and adds the two things profiling shows
dominate general sweeps on interned columns:

* a row-id sweep interface (``insert_row`` / ``expire_row``) that feeds
  the inherited machinery precomputed interned tuples and interval
  objects — no per-event attribute permutation or object hashing;
* a single-shared-attribute semijoin fast path: line- and chain-shaped
  adjacencies semijoin on one attribute almost always, where building
  ``tuple(v[p] for p in pos)`` keys per candidate row is pure overhead —
  scalar int keys probe the attribute index directly.

Both are pure constant-factor work per Theorem 9 step, so the
``O(N^(fhtw+1) + K)`` bound is untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..algorithms.generic_state import GenericGHDState, Values
from ..core.interval import Interval
from ..core.query import JoinQuery
from ..core.result import JoinResultSet
from ..obs import ExecutionStats
from .columns import KernelColumns


class KernelGenericState(GenericGHDState):
    """Row-id driven :class:`GenericGHDState` over interned columns."""

    def __init__(
        self,
        query: JoinQuery,
        columns: KernelColumns,
        stats: Optional[ExecutionStats] = None,
    ) -> None:
        super().__init__(query, stats=stats)
        self._row_relation = columns.row_relation
        self._row_values = columns.row_values
        self._row_interval = columns.intervals()
        # Per relation: (active dict, attr-index dict, edge attrs) —
        # one lookup per event instead of three.
        self._row_state: Dict[str, tuple] = {
            name: (self._active[name], self._attr_index[name], attrs)
            for name, attrs in self._edge_attrs.items()
        }
        # Shared-attribute positions for the scalar semijoin fast path.
        self._single_pos: Dict[Tuple[str, str], int] = {
            (name, attr): attrs.index(attr)
            for name, attrs in self._edge_attrs.items()
            for attr in attrs
        }

    # ------------------------------------------------------------------
    # Row-id sweep interface
    # ------------------------------------------------------------------
    def insert_row(self, rid: int) -> None:
        values = self._row_values[rid]
        active, index, attrs = self._row_state[self._row_relation[rid]]
        active[values] = self._row_interval[rid]
        for attr, value in zip(attrs, values):
            bucket = index[attr].get(value)
            if bucket is None:
                index[attr][value] = {values}
            else:
                bucket.add(values)

    def expire_row(self, rid: int, out: JoinResultSet) -> None:
        relation = self._row_relation[rid]
        values = self._row_values[rid]
        self.enumerate_results(relation, values, self._row_interval[rid], out)
        active, index, attrs = self._row_state[relation]
        del active[values]
        for attr, value in zip(attrs, values):
            bucket = index[attr][value]
            bucket.discard(values)
            if not bucket:
                del index[attr][value]

    # ------------------------------------------------------------------
    # Scalar-key semijoin (single shared attribute)
    # ------------------------------------------------------------------
    def _semijoin_active(
        self,
        target: str,
        source: str,
        shared: List[str],
        restricted: Dict[str, Dict[Values, Interval]],
    ) -> Dict[Values, Interval]:
        if len(shared) != 1:
            return super()._semijoin_active(target, source, shared, restricted)
        attr = shared[0]
        source_pos = self._single_pos[source, attr]
        keys = {v[source_pos] for v in restricted[source]}
        active = self._active[target]
        if len(keys) * 4 <= max(4, len(active)):
            bucket_index = self._attr_index[target][attr]
            out: Dict[Values, Interval] = {}
            get = bucket_index.get
            for key in keys:
                bucket = get(key)
                if bucket:
                    for v in bucket:
                        out[v] = active[v]
            return out
        target_pos = self._single_pos[target, attr]
        return {
            v: ivl for v, ivl in active.items() if v[target_pos] in keys
        }
