"""Columnar ingest/egress for the kernel engine.

This module is the *only* place in :mod:`repro.kernels` that touches
``(values, Interval)`` object rows (the ``kernel-no-object-rows`` lint
rule enforces it). It converts a database into a :class:`KernelColumns`
bundle once per ``temporal_join`` call — or once per *database* via
:func:`repro.kernels.prepared.prepare`:

* **Value interning** — every attribute value is mapped to a dense int
  per attribute domain, in deterministic first-appearance order
  (database iteration order, the same order that fixes event ``seq``
  ties). The inverse tables live in :attr:`KernelColumns.domains` and
  restore the original objects at result emission, so kernel output is
  indistinguishable from the object path.
* **Rank-space endpoints** — interval endpoints are rank-compressed
  into ``array('q')`` int arrays. Ranking is order-preserving, so
  intersection (max of los, min of his) and emptiness checks are exact
  in rank space; ``rank_times`` maps ranks back to the exact original
  endpoint values (``±inf`` participate as ordinary values).
* **Pre-sorted event codes** — the Algorithm 1 event list is flattened
  into one sorted list of ints, ``(rank * 2 + kind) * n_rows + row``,
  whose integer order equals the object path's ``(time, kind, seq)``
  order. Sorting happens once per ingest (``kernel.sort_calls``);
  derived columns — shard subsets (:meth:`KernelColumns.subset`) and
  relation restrictions (:meth:`KernelColumns.restrict`) — *filter* the
  parent's sorted stream under a monotone rank/row remap instead of
  re-sorting, so the sort count stays at one however many queries sweep
  the same prepared columns.

Emission intervals are **not** stored: :meth:`KernelColumns.intervals`
reconstructs them from ``rank_times`` on demand and the reconstruction
cache is excluded from pickling, so shard columns ship to spawn-based
worker processes without a single object row.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import InvariantError
from ..core.interval import Interval, Number
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..core.timeline import Timeline, timeline_from_sorted_events
from ..obs import ExecutionStats

Domains = Dict[str, List[object]]


class KernelColumns:
    """One database, flattened into interned parallel arrays.

    Row ids follow database iteration order (relation by relation), the
    exact order :func:`repro.algorithms.events.event_stream` assigns its
    ``seq`` tie-breaker — so the kernel sweep replays the object sweep's
    event order bit for bit.
    """

    __slots__ = (
        "relations",
        "row_relation",
        "row_values",
        "row_lo",
        "row_hi",
        "rank_times",
        "event_codes",
        "domains",
        "n_rows",
        "_interval_cache",
    )

    #: Pickled fields — everything except the lazy interval cache, which
    #: each process rebuilds on first use. Keeping object rows out of
    #: the payload is the spawn contract the pickle-inspection test pins.
    _STATE = (
        "relations",
        "row_relation",
        "row_values",
        "row_lo",
        "row_hi",
        "rank_times",
        "event_codes",
        "domains",
        "n_rows",
    )

    def __init__(
        self,
        relations: Tuple[str, ...],
        row_relation: List[str],
        row_values: List[Tuple[int, ...]],
        row_lo: array,
        row_hi: array,
        rank_times: List[Number],
        event_codes: List[int],
        domains: Domains,
    ) -> None:
        self.relations = relations
        self.row_relation = row_relation
        self.row_values = row_values
        self.row_lo = row_lo
        self.row_hi = row_hi
        self.rank_times = rank_times
        self.event_codes = event_codes
        self.domains = domains
        self.n_rows = len(row_values)
        self._interval_cache: Optional[List[Interval]] = None

    # Explicit state plumbing: the interval cache must never cross a
    # process boundary (its Interval objects are exactly the payload the
    # docstring promises is absent), so pickling is restricted to
    # ``_STATE`` and the cache is re-initialised empty on load.
    def __getstate__(self):
        return tuple(getattr(self, name) for name in self._STATE)

    def __setstate__(self, state) -> None:
        for name, value in zip(self._STATE, state):
            object.__setattr__(self, name, value)
        object.__setattr__(self, "_interval_cache", None)

    # ------------------------------------------------------------------
    def intervals(self) -> List[Interval]:
        """Per-row emission intervals, reconstructed from rank space.

        ``rank_times`` round-trips endpoints exactly (it stores the
        original values), so the reconstructed intervals are
        value-identical to the source rows'. The list is cached per
        process; the cache never travels in the pickle payload.
        """
        cached = self._interval_cache
        if cached is None:
            rank_times = self.rank_times
            cached = [
                Interval(rank_times[lo], rank_times[hi])
                for lo, hi in zip(self.row_lo, self.row_hi)
            ]
            self._interval_cache = cached
        return cached

    def subset(self, row_ids: Sequence[int]) -> "KernelColumns":
        """Columns restricted to ``row_ids``, re-ranked locally.

        Used to build shard payloads: each shard gets its own dense row
        ids, local endpoint ranks and pre-sorted event codes, while the
        de-intern ``domains`` tables are shared by reference (they are
        read-only after construction). ``row_ids`` must be strictly
        increasing — local row order then preserves the parent's event
        ``seq`` tie-break order, which lets the local event codes be
        *derived* from the parent's sorted stream (a filter under a
        monotone remap) instead of re-sorted.
        """
        return self._subset(row_ids, self.relations)

    def restrict(self, relations: Sequence[str]) -> "KernelColumns":
        """Columns restricted to the rows of the named relations.

        The multi-query path: one prepared database, many queries each
        touching a subset of its relations. Relation order follows the
        parent columns (ingest order), never the argument order, so row
        ids keep the parent's ``seq`` tie-break order.
        """
        keep = frozenset(relations)
        missing = keep - set(self.relations)
        if missing:
            raise InvariantError(
                f"cannot restrict columns to unknown relations {sorted(missing)}"
            )
        if keep == set(self.relations):
            return self
        row_relation = self.row_relation
        row_ids = [
            rid for rid in range(self.n_rows) if row_relation[rid] in keep
        ]
        kept = tuple(name for name in self.relations if name in keep)
        return self._subset(row_ids, kept)

    def _subset(
        self, row_ids: Sequence[int], relations: Tuple[str, ...]
    ) -> "KernelColumns":
        if any(b <= a for a, b in zip(row_ids, row_ids[1:])):
            raise InvariantError(
                "subset row_ids must be strictly increasing (parent seq order)"
            )
        row_values = [self.row_values[r] for r in row_ids]
        row_relation = [self.row_relation[r] for r in row_ids]
        lo_ranks = [self.row_lo[r] for r in row_ids]
        hi_ranks = [self.row_hi[r] for r in row_ids]
        used = sorted(set(lo_ranks) | set(hi_ranks))
        remap = {rank: local for local, rank in enumerate(used)}
        rank_times = [self.rank_times[rank] for rank in used]
        row_lo = array("q", (remap[r] for r in lo_ranks))
        row_hi = array("q", (remap[r] for r in hi_ranks))
        return KernelColumns(
            relations=relations,
            row_relation=row_relation,
            row_values=row_values,
            row_lo=row_lo,
            row_hi=row_hi,
            rank_times=rank_times,
            event_codes=self._derive_event_codes(row_ids, remap),
            domains=self.domains,
        )

    def _derive_event_codes(
        self, row_ids: Sequence[int], remap: Dict[int, int]
    ) -> List[int]:
        """Filter the parent's sorted event stream down to ``row_ids``.

        Both remaps are monotone — local ranks preserve parent rank
        order, local row ids preserve parent row-id order (``row_ids``
        ascending) — so the filtered stream is already sorted in the
        local ``(rank, kind, row)`` code order. No sort happens here;
        that is what keeps ``kernel.sort_calls`` at one per ingest.
        """
        k = len(row_ids)
        if k == 0:
            return []
        n = self.n_rows
        local_of = {rid: local for local, rid in enumerate(row_ids)}
        get = local_of.get
        codes: List[int] = []
        append = codes.append
        for code in self.event_codes:
            local = get(code % n)
            if local is not None:
                rank_kind = code // n  # parent rank * 2 + kind
                append(
                    ((remap[rank_kind >> 1] << 1) | (rank_kind & 1)) * k + local
                )
        return codes

    def timeline(self) -> Timeline:
        """Concurrency timeline straight from the sorted event arrays.

        The event codes are already ordered with INSERTs before EXPIREs
        at equal times — exactly the ``starts before ends`` order
        :func:`repro.core.timeline.concurrency_timeline` sorts into —
        so no re-sweep of the raw intervals is needed.
        """
        n = self.n_rows
        if n == 0:
            return timeline_from_sorted_events(())
        rank_times = self.rank_times
        return timeline_from_sorted_events(
            (rank_times[code // (2 * n)], 1 if (code // n) % 2 == 0 else -1)
            for code in self.event_codes
        )


def _sorted_event_codes(row_lo: Sequence[int], row_hi: Sequence[int]) -> List[int]:
    """Encode + sort the event stream as single ints.

    ``code = (rank * 2 + kind) * n + row`` with INSERT=0 < EXPIRE=1, so
    plain integer order is the object path's ``(time, kind, seq)`` order.
    """
    n = len(row_lo)
    codes = []
    append = codes.append
    for rid in range(n):
        append(row_lo[rid] * 2 * n + rid)
        append((row_hi[rid] * 2 + 1) * n + rid)
    codes.sort()
    return codes


def build_columns(
    database: Mapping[str, TemporalRelation],
    stats: Optional[ExecutionStats] = None,
) -> KernelColumns:
    """Intern, rank-compress and event-sort ``database`` — once.

    With ``stats`` attached, records ``kernel.rows``,
    ``kernel.interned_values`` (total distinct values across attribute
    domains), ``kernel.distinct_endpoints``, ``kernel.sort_calls``
    (always 1 per call — the single Algorithm 1 line-1 sort) and the
    ``phase.kernel.intern`` / ``phase.kernel.rank`` timers, all nested
    under the object path's ``phase.events`` for comparability.
    """
    if stats is None:
        return _build(database, None)
    with stats.timer("phase.events"):
        return _build(database, stats)


def _intern_rows(database, interners, domains, row_relation, row_values, row_intervals):
    for name in database:
        relation = database[name]
        rel_interners = [interners.setdefault(a, {}) for a in relation.attrs]
        rel_domains = [domains.setdefault(a, []) for a in relation.attrs]
        for values, interval in relation:
            interned = []
            for table, domain, value in zip(rel_interners, rel_domains, values):
                code = table.get(value)
                if code is None:
                    code = table[value] = len(domain)
                    domain.append(value)
                interned.append(code)
            row_values.append(tuple(interned))
            row_intervals.append(interval)
            row_relation.append(name)


def _rank_endpoints(row_intervals):
    endpoints = set()
    for interval in row_intervals:
        endpoints.add(interval.lo)
        endpoints.add(interval.hi)
    rank_times = sorted(endpoints)
    rank_of = {t: rank for rank, t in enumerate(rank_times)}
    row_lo = array("q", (rank_of[iv.lo] for iv in row_intervals))
    row_hi = array("q", (rank_of[iv.hi] for iv in row_intervals))
    return rank_times, row_lo, row_hi


def _build(
    database: Mapping[str, TemporalRelation],
    stats: Optional[ExecutionStats],
) -> KernelColumns:
    interners: Dict[str, Dict[object, int]] = {}
    domains: Domains = {}
    row_relation: List[str] = []
    row_values: List[Tuple[int, ...]] = []
    row_intervals: List[Interval] = []

    if stats is None:
        _intern_rows(
            database, interners, domains, row_relation, row_values, row_intervals
        )
        rank_times, row_lo, row_hi = _rank_endpoints(row_intervals)
        event_codes = _sorted_event_codes(row_lo, row_hi)
    else:
        with stats.timer("phase.kernel.intern"):
            _intern_rows(
                database, interners, domains, row_relation, row_values,
                row_intervals,
            )
        with stats.timer("phase.kernel.rank"):
            rank_times, row_lo, row_hi = _rank_endpoints(row_intervals)
            event_codes = _sorted_event_codes(row_lo, row_hi)
        stats.incr("kernel.rows", len(row_values))
        stats.incr(
            "kernel.interned_values", sum(len(d) for d in domains.values())
        )
        stats.incr("kernel.distinct_endpoints", len(rank_times))
        stats.incr("kernel.sort_calls")

    return KernelColumns(
        relations=tuple(database),
        row_relation=row_relation,
        row_values=row_values,
        row_lo=row_lo,
        row_hi=row_hi,
        rank_times=rank_times,
        event_codes=event_codes,
        domains=domains,
    )


def shrink_columns(
    columns: KernelColumns,
    tau: Number,
    stats: Optional[ExecutionStats] = None,
) -> KernelColumns:
    """Derive the τ/2-shrunk columns of ``columns`` — in rank space.

    Mirrors :func:`repro.core.durability.shrink_database` exactly —
    ``lo + τ/2`` / ``hi - τ/2`` with infinite endpoints as fixed points,
    rows whose shrunk interval vanishes dropped (in row order, so the
    survivors keep the event ``seq`` tie-break order of the equivalent
    shrunk database) — without materialising a single object row. The
    shrunk endpoints are new values, so this is the one derivation that
    must re-rank and re-sort (counted in ``kernel.sort_calls``); the
    prepared engine caches the result per τ.
    """
    if tau == 0:
        return columns
    half = tau / 2
    rank_times = columns.rank_times
    isinf = math.isinf
    keep: List[int] = []
    los: List[Number] = []
    his: List[Number] = []
    for rid in range(columns.n_rows):
        lo = rank_times[columns.row_lo[rid]]
        hi = rank_times[columns.row_hi[rid]]
        if not isinf(lo):
            lo = lo + half
        if not isinf(hi):
            hi = hi - half
        if lo > hi:
            continue
        keep.append(rid)
        los.append(lo)
        his.append(hi)
    new_times = sorted(set(los) | set(his))
    rank_of = {t: rank for rank, t in enumerate(new_times)}
    row_lo = array("q", (rank_of[t] for t in los))
    row_hi = array("q", (rank_of[t] for t in his))
    event_codes = _sorted_event_codes(row_lo, row_hi)
    if stats is not None:
        stats.incr("kernel.sort_calls")
    return KernelColumns(
        relations=columns.relations,
        row_relation=[columns.row_relation[r] for r in keep],
        row_values=[columns.row_values[r] for r in keep],
        row_lo=row_lo,
        row_hi=row_hi,
        rank_times=new_times,
        event_codes=event_codes,
        domains=columns.domains,
    )


def deintern_results(domains: Domains, results: JoinResultSet) -> JoinResultSet:
    """Map interned result rows back to the original attribute values.

    Values that compare equal share one interned slot (first-seen
    representative), mirroring the dict semantics of the object-path
    states, so normalized result equality is preserved exactly.
    """
    tables = [domains[a] for a in results.attrs]
    out = JoinResultSet(results.attrs)
    append = out.append
    for values, interval in results.rows:
        append(
            tuple(table[code] for table, code in zip(tables, values)),
            interval,
        )
    return out


def shard_row_ids(
    columns: KernelColumns,
    cuts: Sequence[Number],
    tau: Number = 0,
) -> List[List[int]]:
    """Assign every row to the shards its *original* interval overlaps.

    The columns hold τ/2-shrunk intervals (the kernel driver shrinks
    before interning); ownership in :mod:`repro.parallel` is evaluated
    on *expanded* result intervals, so assignment must expand each row
    interval back by τ/2 first — a result's every constituent then
    reaches the shard that owns the result's endpoint. Infinite
    endpoints are fixed points of the expansion (IEEE ``±inf ± x``).
    Endpoints come straight from ``rank_times`` — no object rows.
    """
    import bisect

    n_shards = len(cuts) + 1
    shards: List[List[int]] = [[] for _ in range(n_shards)]
    half = tau / 2 if tau else 0
    rank_times = columns.rank_times
    row_lo = columns.row_lo
    row_hi = columns.row_hi
    right = bisect.bisect_right
    for rid in range(columns.n_rows):
        first = right(cuts, rank_times[row_lo[rid]] - half)
        last = right(cuts, rank_times[row_hi[rid]] + half)
        for shard in range(first, last + 1):
            shards[shard].append(rid)
    return shards
