"""Randomized instance generators for testing and experimentation.

The library's own suite differential-tests every algorithm against a
brute-force oracle on instances from these generators; they are exported
so downstream users extending the toolkit (new sweep states, new
decompositions) can reuse the same safety net:

>>> import random
>>> from repro import JoinQuery, naive_join, temporal_join
>>> from repro.testing import random_instance
>>> rng = random.Random(0)
>>> query = JoinQuery.cycle(4)
>>> db = random_instance(query, rng)
>>> got = temporal_join(query, db, algorithm="hybrid")
>>> got.same_results(naive_join(query, db))
True
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from .core.interval import Interval
from .core.query import JoinQuery
from .core.relation import TemporalRelation


def random_temporal_relation(
    name: str,
    attrs: Sequence[str],
    n: int,
    domain: int,
    time_span: int,
    rng: random.Random,
    max_duration: Optional[int] = None,
) -> TemporalRelation:
    """A random temporal relation with ``min(n, domain^arity)`` distinct rows.

    Values are drawn uniformly from ``range(domain)`` per attribute;
    intervals start uniformly in ``[0, time_span)`` with durations up to
    ``max_duration`` (default ``time_span // 2``). Deterministic given
    the supplied ``rng``.
    """
    n = min(n, domain ** len(attrs))
    max_duration = max_duration or max(1, time_span // 2)
    rows: Dict = {}
    while len(rows) < n:
        values = tuple(rng.randrange(domain) for _ in attrs)
        if values in rows:
            continue
        lo = rng.randrange(time_span)
        rows[values] = Interval(lo, lo + rng.randrange(max_duration))
    return TemporalRelation(name, attrs, list(rows.items()))


def random_instance(
    query: JoinQuery,
    rng: random.Random,
    n: int = 12,
    domain: int = 4,
    time_span: int = 40,
    max_duration: Optional[int] = None,
) -> Dict[str, TemporalRelation]:
    """A random temporal instance of ``query`` (one relation per edge)."""
    return {
        name: random_temporal_relation(
            name, query.edge(name), n, domain, time_span, rng,
            max_duration=max_duration,
        )
        for name in query.edge_names
    }


def differential_check(
    query: JoinQuery,
    database: Dict[str, TemporalRelation],
    algorithms: Sequence[str] = ("timefirst", "baseline", "hybrid", "joinfirst"),
    tau: float = 0,
) -> None:
    """Check that every listed algorithm matches the brute-force oracle.

    Raises :class:`~repro.core.errors.InvariantError` naming the first
    diverging algorithm (an exception rather than ``assert`` so the check
    holds under ``python -O`` too). Algorithms that are structurally
    inapplicable (``PlanError``) are skipped.
    """
    from .algorithms.naive import naive_join
    from .algorithms.registry import temporal_join
    from .core.errors import InvariantError, PlanError

    want = naive_join(query, database, tau=tau).normalized()
    for algorithm in algorithms:
        try:
            got = temporal_join(query, database, tau=tau, algorithm=algorithm)
        except PlanError:
            continue
        if got.normalized() != want:
            raise InvariantError(
                f"{algorithm} diverges from the oracle on {query!r} (tau={tau})"
            )
