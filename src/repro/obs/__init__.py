"""Execution telemetry: counters, phase timers, and the Tracer protocol.

Opt-in observability for every evaluation strategy in
:mod:`repro.algorithms`. Pass an :class:`ExecutionStats` to
``temporal_join(..., stats=...)`` (or call
:func:`repro.algorithms.registry.explain_analyze`) and the chosen
algorithm fills it with the internal quantities that explain its running
time — sweep events, active-set peaks, bag-materialization sizes,
per-binary-join intermediate cardinalities. With ``stats=None`` (the
default) the instrumented code paths are skipped entirely.
"""

from .stats import ExecutionStats
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["ExecutionStats", "NULL_TRACER", "NullTracer", "Tracer"]
