"""The pluggable tracing protocol behind ``temporal_join(..., stats=...)``.

Every algorithm accepts ``stats``: any object satisfying :class:`Tracer`.
:class:`~repro.obs.stats.ExecutionStats` is the standard recording
implementation; :class:`NullTracer` (singleton :data:`NULL_TRACER`) is the
explicit no-op for callers who want to pass "something" unconditionally.

The disabled path is kept to ~zero cost by convention, not by the null
object: algorithms guard instrumentation behind ``if stats is not None``
(or duplicate a hot loop), so passing ``stats=None`` — the default —
executes the exact pre-telemetry code path. :data:`NULL_TRACER` exists
for composition points where threading ``Optional`` is noisier than a
no-op sink (e.g. user-written drivers).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable


@runtime_checkable
class Tracer(Protocol):
    """Recording interface used by the evaluation strategies."""

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the monotone counter ``name``."""
        ...

    def peak(self, name: str, value: int) -> None:
        """Report a high-water-mark sample for ``name``."""
        ...

    def observe(self, name: str, value: int) -> None:
        """Report one sample of the size distribution ``name``."""
        ...

    def timer(self, phase: str):
        """Context manager accumulating wall-clock time for ``phase``."""
        ...

    def note(self, name: str, text: str) -> None:
        """Record a string annotation (e.g. a fallback reason)."""
        ...


class NullTracer:
    """Tracer that records nothing (safe to share; it has no state)."""

    __slots__ = ()

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def peak(self, name: str, value: int) -> None:
        pass

    def observe(self, name: str, value: int) -> None:
        pass

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        yield

    def note(self, name: str, text: str) -> None:
        pass


NULL_TRACER = NullTracer()
