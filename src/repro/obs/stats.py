"""Execution-statistics container: counters, peaks, distributions, timers.

:class:`ExecutionStats` is the standard recording implementation of the
:class:`~repro.obs.tracer.Tracer` protocol. One instance accumulates the
telemetry of one join execution (or several, when deliberately reused —
all operations merge additively, so a shared instance aggregates).

Four recording primitives cover everything the algorithms report:

* :meth:`incr` — monotone event counters (sweep events, ENUMERATE calls);
* :meth:`peak` — high-water marks (active-set size), merged by ``max``;
* :meth:`observe` — size distributions (bag cardinalities, intermediate
  sizes, scan lengths), stored as ``name.count`` / ``name.total`` /
  ``name.max`` so no sample list is retained;
* :meth:`timer` — monotonic (``perf_counter``) phase timers, accumulated
  under ``phase.*`` keys in :attr:`timers`;
* :meth:`note` — string annotations (e.g. ``kernel.fallback_reason``)
  for facts that are not numbers, kept in :attr:`notes` (last write
  wins, like an attribute).

The counter glossary lives in ``DESIGN.md`` (section "Execution
telemetry"); tests assert exact values for the load-bearing ones.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class ExecutionStats:
    """Mutable telemetry bag for one join execution (a recording Tracer)."""

    __slots__ = ("counters", "timers", "notes")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.notes: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Recording primitives (the Tracer protocol)
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def peak(self, name: str, value: int) -> None:
        """Record a high-water mark: keep the max of all reported values."""
        counters = self.counters
        if value > counters.get(name, 0):
            counters[name] = value

    def observe(self, name: str, value: int) -> None:
        """Record one sample of a size distribution.

        Keeps ``name.count``, ``name.total`` and ``name.max`` — enough for
        mean/max reporting without retaining samples.
        """
        counters = self.counters
        counters[name + ".count"] = counters.get(name + ".count", 0) + 1
        counters[name + ".total"] = counters.get(name + ".total", 0) + value
        if value > counters.get(name + ".max", 0):
            counters[name + ".max"] = value

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        """Accumulate wall-clock (monotonic) time under ``timers[phase]``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(phase, time.perf_counter() - start)

    def add_time(self, phase: str, seconds: float) -> None:
        """Add a pre-measured duration to ``timers[phase]``."""
        self.timers[phase] = self.timers.get(phase, 0.0) + seconds

    def note(self, name: str, text: str) -> None:
        """Record a string annotation (last write wins)."""
        self.notes[name] = text

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def __getitem__(self, name: str) -> int:
        return self.counters[name]

    def __contains__(self, name: str) -> bool:
        return name in self.counters

    def __bool__(self) -> bool:
        return bool(self.counters) or bool(self.timers) or bool(self.notes)

    def mean(self, name: str) -> Optional[float]:
        """Mean of an :meth:`observe` distribution, or ``None`` if unseen."""
        count = self.counters.get(name + ".count", 0)
        if not count:
            return None
        return self.counters.get(name + ".total", 0) / count

    def as_dict(self) -> Dict[str, object]:
        """Flat ``{name: value}`` snapshot of counters, timers and notes."""
        out: Dict[str, object] = dict(self.counters)
        out.update(self.timers)
        out.update(self.notes)
        return out

    # ------------------------------------------------------------------
    # Combination and display
    # ------------------------------------------------------------------
    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Fold ``other`` into self (counters add, ``*_peak``/``.max`` max)."""
        for name, value in other.counters.items():
            if name.endswith((".max", "_peak")):
                self.peak(name, value)
            else:
                self.incr(name, value)
        for phase, seconds in other.timers.items():
            self.timers[phase] = self.timers.get(phase, 0.0) + seconds
        self.notes.update(other.notes)
        return self

    def render(self) -> str:
        """Aligned ``name  value`` listing: counters, timers, then notes."""
        lines = []
        width = max(
            (len(n) for n in (*self.counters, *self.timers, *self.notes)),
            default=0,
        )
        for name in sorted(self.counters):
            lines.append(f"{name:<{width}}  {self.counters[name]}")
        for phase in sorted(self.timers):
            lines.append(f"{phase:<{width}}  {self.timers[phase] * 1e3:.2f}ms")
        for name in sorted(self.notes):
            lines.append(f"{name:<{width}}  {self.notes[name]}")
        return "\n".join(lines) if lines else "(no telemetry recorded)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionStats(counters={len(self.counters)}, "
            f"timers={len(self.timers)}, notes={len(self.notes)})"
        )
