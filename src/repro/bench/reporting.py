"""ASCII rendering of benchmark results in the shape of the paper's figures.

Each figure in the paper is a set of series (one per algorithm) over an
x-axis (τ, N, or query name). :func:`render_table` prints those series as
a compact table; :func:`render_ratio_table` normalizes to BASELINE the way
Figure 10 does ("we report running time as a ratio to that of BASELINE").
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .harness import Measurement


def format_bytes(n: int) -> str:
    """Human-readable byte count."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover


def format_seconds(s: float) -> str:
    if s != s:  # NaN — algorithm not applicable
        return "n/a"
    if s < 1e-3:
        return f"{s * 1e6:.0f}µs"
    if s < 1:
        return f"{s * 1e3:.1f}ms"
    return f"{s:.2f}s"


def render_table(
    title: str,
    rows: Mapping[object, Sequence[Measurement]],
    metric: str = "seconds",
    x_label: str = "x",
) -> str:
    """Render measurements as ``x_label | alg1 | alg2 | ...``.

    ``rows`` maps each x value (τ, N, query name…) to the measurement list
    of all algorithms at that x.
    """
    algorithms: List[str] = []
    for ms in rows.values():
        for m in ms:
            if m.algorithm not in algorithms:
                algorithms.append(m.algorithm)
    header = [x_label] + algorithms
    lines = [title, "=" * len(title), " | ".join(f"{h:>15}" for h in header)]
    lines.append("-" * (18 * len(header)))
    for x, ms in rows.items():
        by_alg = {m.algorithm: m for m in ms}
        cells = [f"{str(x):>15}"]
        for alg in algorithms:
            m = by_alg.get(alg)
            if m is None or not m.ok:
                cells.append(f"{'n/a':>15}")
            elif metric == "seconds":
                cells.append(f"{format_seconds(m.seconds):>15}")
            elif metric == "memory":
                cells.append(f"{format_bytes(m.peak_bytes):>15}")
            elif metric == "throughput":
                cells.append(f"{m.throughput:>15.0f}")
            elif metric == "results":
                cells.append(f"{m.result_count:>15}")
            else:
                raise ValueError(f"unknown metric {metric!r}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def render_ratio_table(
    title: str,
    rows: Mapping[object, Sequence[Measurement]],
    baseline: str = "baseline",
    metric: str = "seconds",
    x_label: str = "query",
) -> str:
    """Figure 10 style: every cell as a ratio to BASELINE's value (< 1 wins)."""
    algorithms: List[str] = []
    for ms in rows.values():
        for m in ms:
            if m.algorithm not in algorithms:
                algorithms.append(m.algorithm)
    header = [x_label] + [a for a in algorithms if a != baseline]
    lines = [
        title,
        "=" * len(title),
        f"(each cell: {metric} ratio vs {baseline}; <1 is faster)",
        " | ".join(f"{h:>15}" for h in header),
        "-" * (18 * len(header)),
    ]
    for x, ms in rows.items():
        by_alg = {m.algorithm: m for m in ms}
        base = by_alg.get(baseline)
        cells = [f"{str(x):>15}"]
        for alg in header[1:]:
            m = by_alg.get(alg)
            if m is None or base is None or not m.ok or not base.ok:
                cells.append(f"{'n/a':>15}")
                continue
            if metric == "seconds":
                ratio = m.seconds / base.seconds if base.seconds else float("inf")
            elif metric == "memory":
                ratio = (
                    m.peak_bytes / base.peak_bytes if base.peak_bytes else float("inf")
                )
            else:
                raise ValueError(f"unknown metric {metric!r}")
            cells.append(f"{ratio:>15.2f}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def render_stats_table(
    title: str,
    rows: Mapping[object, Sequence[Measurement]],
    counters: Optional[Sequence[str]] = None,
    x_label: str = "x",
) -> str:
    """Execution-counter table: one block per x value, one line per algorithm.

    ``counters`` restricts the columns; by default the union of all
    counter names present in the measurements is shown (timers excluded —
    they are profiling aids, not workload descriptors). Measurements
    taken without ``collect_stats=True`` render as ``-``.
    """
    if counters is None:
        names: List[str] = []
        for ms in rows.values():
            for m in ms:
                if m.stats is None:
                    continue
                for name in m.stats.counters:
                    if name not in names:
                        names.append(name)
        counters = sorted(names)
    width = max([len(c) for c in counters] + [12])
    lines = [title, "=" * len(title)]
    for x, ms in rows.items():
        lines.append(f"{x_label} = {x}")
        header = ["algorithm".rjust(16)] + [c.rjust(width) for c in counters]
        lines.append(" | ".join(header))
        lines.append("-" * ((width + 3) * (len(counters) + 1)))
        for m in ms:
            cells = [m.algorithm.rjust(16)]
            for c in counters:
                if m.stats is None or c not in m.stats.counters:
                    cells.append("-".rjust(width))
                else:
                    cells.append(str(m.stats.counters[c]).rjust(width))
            lines.append(" | ".join(cells))
    return "\n".join(lines)


def render_scaling_table(
    title: str,
    rows: Mapping[str, Sequence[Measurement]],
) -> str:
    """Parallel-speedup table: one row per algorithm, one column per workers.

    ``rows`` maps an algorithm name to its
    :func:`~repro.bench.harness.measure_scaling` output. Each cell shows
    the wall time and the speedup over that algorithm's ``workers == 1``
    anchor (``×1.0`` by construction); cells whose results failed
    cross-validation render as ``MISMATCH``.
    """
    workers: List[int] = []
    for ms in rows.values():
        for m in ms:
            if m.workers not in workers:
                workers.append(m.workers)
    workers.sort()
    header = ["algorithm"] + [f"workers={w}" for w in workers]
    lines = [title, "=" * len(title), " | ".join(f"{h:>18}" for h in header)]
    lines.append("-" * (21 * len(header)))
    for name, ms in rows.items():
        by_workers = {m.workers: m for m in ms}
        anchor = by_workers.get(1)
        cells = [f"{name:>18}"]
        for w in workers:
            m = by_workers.get(w)
            if m is None:
                cells.append(f"{'n/a':>18}")
            elif not m.ok:
                cells.append(f"{'MISMATCH':>18}")
            else:
                cell = format_seconds(m.seconds)
                if anchor is not None and anchor.ok and m.seconds > 0:
                    cell += f" (×{anchor.seconds / m.seconds:.2f})"
                cells.append(f"{cell:>18}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def render_series(
    title: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    fmt: str = "{:.3g}",
) -> str:
    """Plain multi-series table for precomputed numbers (e.g. Figure 1)."""
    names = list(series)
    header = [x_label] + names
    lines = [title, "=" * len(title), " | ".join(f"{h:>12}" for h in header)]
    lines.append("-" * (15 * len(header)))
    for i, x in enumerate(xs):
        cells = [f"{str(x):>12}"]
        for name in names:
            cells.append(f"{fmt.format(series[name][i]):>12}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
