"""Measurement harness: wall-clock, peak memory, result validation.

The paper reports three quantities per (algorithm, workload, τ) cell:
running time (Figures 8–10), peak memory (Figures 8, 11), and — for
Figure 9 — throughput (results per second). :func:`measure` produces all
of them for one run; :func:`compare_algorithms` builds the full table a
figure needs, cross-validating that every algorithm returned identical
results (a benchmark that silently compares algorithms computing
different answers is worse than no benchmark).

Peak memory uses :mod:`tracemalloc`, which tracks Python allocations —
the right analogue of the paper's resident-set measurements for a pure
Python system. Tracing slows execution, so timing and memory are taken
in separate runs.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..algorithms.registry import (
    get_algorithm,
    strip_unsupported_kwargs,
    temporal_join,
)
from ..core.errors import InvariantError, ReproError
from ..core.interval import Number
from ..core.query import JoinQuery
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from ..obs import ExecutionStats


@dataclass
class Measurement:
    """One (algorithm, workload, τ) cell."""

    algorithm: str
    seconds: float
    peak_bytes: int
    result_count: int
    input_size: int
    tau: Number
    ok: bool = True
    note: str = ""
    stats: Optional[ExecutionStats] = None
    workers: int = 1

    @property
    def throughput(self) -> float:
        """Results per second (Figure 9's metric).

        An empty result is zero throughput regardless of how fast the run
        was — in particular a zero-result cell measured at ``seconds == 0``
        must not report ``inf`` results/sec.
        """
        if self.result_count <= 0:
            return 0.0
        return self.result_count / self.seconds if self.seconds > 0 else float("inf")


def measure(
    algorithm: str,
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    measure_memory: bool = True,
    repeat: int = 1,
    collect_stats: bool = False,
    **kwargs,
) -> Measurement:
    """Run one algorithm, returning time, peak memory, and result count.

    With ``collect_stats=True`` a *separate* instrumented run fills
    ``Measurement.stats`` with execution counters; the timed runs stay
    uninstrumented so telemetry never contaminates the reported
    wall-clock numbers.

    ``kwargs`` may be a *shared* dict aimed at several algorithms with
    differing signatures: the registry's kwarg-stripping drops anything
    this algorithm does not accept, while dispatch-level kwargs
    (``workers=``, ``parallel_mode=``) always pass through to
    :func:`~repro.algorithms.registry.temporal_join`.
    """
    if algorithm != "auto":
        kwargs = strip_unsupported_kwargs(get_algorithm(algorithm), kwargs)
    n = query.input_size(database)
    workers = int(kwargs.get("workers") or 1)

    def run(**extra) -> JoinResultSet:
        return temporal_join(
            query, database, tau=tau, algorithm=algorithm, **kwargs, **extra
        )

    best = float("inf")
    result: Optional[JoinResultSet] = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    if result is None:
        raise InvariantError(
            "measure() ran zero repetitions; repeat is clamped to >= 1, "
            "so a missing result means the timing loop is broken"
        )

    peak = 0
    if measure_memory:
        tracemalloc.start()
        try:
            run()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

    stats: Optional[ExecutionStats] = None
    if collect_stats:
        stats = ExecutionStats()
        run(stats=stats)

    return Measurement(
        algorithm=algorithm,
        seconds=best,
        peak_bytes=peak,
        result_count=len(result),
        input_size=n,
        tau=tau,
        stats=stats,
        workers=workers,
    )


def compare_algorithms(
    algorithms: Sequence[str],
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    measure_memory: bool = True,
    validate: bool = True,
    repeat: int = 1,
    collect_stats: bool = False,
    **kwargs,
) -> List[Measurement]:
    """Measure several algorithms on one workload, cross-validating output.

    Algorithms that raise :class:`ReproError` (e.g. HYBRID-INTERVAL on a
    query without a guarded partition) are reported with ``ok=False`` and
    a note instead of aborting the whole figure. ``collect_stats=True``
    attaches an execution-counter profile to each measurement (taken in
    a dedicated run, never the timed one). ``kwargs`` is one shared dict
    handed to every algorithm; :func:`measure` strips per-algorithm what
    each signature does not accept, so e.g. ``workers=4`` parallelizes
    every cell without crashing algorithms that never heard of it.
    """
    measurements: List[Measurement] = []
    reference: Optional[List] = None
    for name in algorithms:
        try:
            m = measure(
                name, query, database, tau=tau,
                measure_memory=measure_memory, repeat=repeat,
                collect_stats=collect_stats, **kwargs,
            )
        except ReproError as exc:
            measurements.append(
                Measurement(
                    algorithm=name, seconds=float("nan"), peak_bytes=0,
                    result_count=-1, input_size=query.input_size(database),
                    tau=tau, ok=False, note=str(exc),
                )
            )
            continue
        if validate:
            fn = get_algorithm(name)
            got = fn(query, database, tau=tau).normalized()
            if reference is None:
                reference = got
            elif got != reference:
                m.ok = False
                m.note = "RESULT MISMATCH vs first algorithm"
        measurements.append(m)
    return measurements


def measure_scaling(
    algorithm: str,
    query: JoinQuery,
    database: Mapping[str, TemporalRelation],
    tau: Number = 0,
    workers_list: Sequence[int] = (1, 2, 4, 8),
    repeat: int = 1,
    parallel_mode: str = "process",
    measure_memory: bool = False,
    collect_stats: bool = False,
    validate: bool = True,
) -> List[Measurement]:
    """One algorithm at several worker counts — the parallel-speedup curve.

    Returns one :class:`Measurement` per entry of ``workers_list`` (in
    order; ``workers == 1`` is the serial anchor every speedup is
    relative to). With ``validate=True`` each parallel cell is checked
    against the serial result and flagged ``ok=False`` on mismatch —
    a scaling table over wrong answers is worse than no table.
    """
    measurements: List[Measurement] = []
    reference: Optional[List] = None
    for w in workers_list:
        m = measure(
            algorithm, query, database, tau=tau,
            measure_memory=measure_memory, repeat=repeat,
            collect_stats=collect_stats,
            workers=w, parallel_mode=parallel_mode,
        )
        if validate:
            got = temporal_join(
                query, database, tau=tau, algorithm=algorithm,
                workers=w, parallel_mode=parallel_mode,
            ).normalized()
            if reference is None:
                reference = got
            elif got != reference:
                m.ok = False
                m.note = f"RESULT MISMATCH vs workers={measurements[0].workers}"
        measurements.append(m)
    return measurements


def scaling_exponent(sizes: Sequence[int], times: Sequence[float]) -> float:
    """Least-squares slope of log(time) vs log(N) — the measured exponent.

    Used by the ablation bench to compare empirical growth against the
    theoretical bounds of Figure 4.
    """
    import math

    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-9)) for t in times]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else float("nan")
