"""Benchmark harness: measurements, comparisons, figure-style reporting."""

from .harness import (
    Measurement,
    compare_algorithms,
    measure,
    measure_scaling,
    scaling_exponent,
)
from .reporting import (
    format_bytes,
    format_seconds,
    render_ratio_table,
    render_scaling_table,
    render_series,
    render_table,
)

__all__ = [
    "Measurement",
    "compare_algorithms",
    "format_bytes",
    "format_seconds",
    "measure",
    "measure_scaling",
    "render_ratio_table",
    "render_scaling_table",
    "render_series",
    "render_table",
    "scaling_exponent",
]
