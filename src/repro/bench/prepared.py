"""Prepared-database benchmark: per-query vs amortized cost, gated.

``make bench-prepared`` runs this module to produce
``BENCH_prepared.json`` — the committed record of what
:func:`repro.kernels.prepared.prepare` + :func:`~repro.kernels.prepared.run_batch`
buy over cold per-query calls on a standing-query fleet. The scenario is
ROADMAP's serving story: one ingest path, N standing queries. A fleet of
ten query templates over one shared line5 schema — duplicate templates
included, as real standing-query registries have — is evaluated two
ways:

* **cold** — ten independent ``temporal_join(engine="kernel")`` calls,
  each paying intern + rank + event-sort for the relations it touches;
* **amortized** — one :func:`prepare` of the full database, then one
  :func:`run_batch` over the ten templates: a single ingest, one sweep
  per distinct hypergraph, shared rows projected into duplicate
  templates.

Like ``bench.kernels`` this is a smoke benchmark: absolute seconds are
machine noise, the cold/amortized *ratio* on the same machine and
instance is what the regression gate compares. Every cell
cross-validates batch results against the cold results query by query.

Two modes::

    python -m repro.bench.prepared --out BENCH_prepared.json
        Full run (all sizes), writes the JSON document.

    python -m repro.bench.prepared --check --baseline BENCH_prepared.json
        Regression gate: re-measures the smoke size and fails (exit 1)
        if the amortized speedup dropped more than ``--tolerance``
        (default 15%) below the committed baseline's, or below 1.0x.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List, Optional, Sequence

from ..algorithms.registry import temporal_join
from ..core.query import JoinQuery
from ..kernels.prepared import prepare, run_batch
from ..obs import ExecutionStats
from ..workloads.synthetic import SyntheticConfig, generate
from .reporting import format_seconds

#: Workload sizes for the shared 5-relation line schema:
#: N ≈ 5 * (n_dangling + n_results). The explicit ``window=150`` (below
#: the generator's 300-tick stagger) keeps the dangling mass temporally
#: disjoint *between* relations, so sub-chain templates return only the
#: backbone instead of the paper's exploding intermediates — this bench
#: measures ingest amortization across a fleet, not sweep asymptotics
#: (``bench.kernels`` covers those), and exploding result sets would
#: swamp the prepare cost both arms are being compared on.
SIZES: Dict[str, SyntheticConfig] = {
    "3k": SyntheticConfig(n_dangling=560, n_results=40, window=150),
    "10k": SyntheticConfig(n_dangling=1960, n_results=40, window=150),
}

#: The size the ``--check`` gate re-measures.
CHECK_SIZES = ("3k",)

DEFAULT_TOLERANCE = 0.15

#: The benchmark forces TIMEFIRST (the kernel-path algorithm) for both
#: arms, exactly like ``bench.kernels`` — the planner would route line
#: chains to HYBRID-INTERVAL, which has no kernel path and would turn
#: this into an algorithm comparison instead of an amortization one.
ALGORITHM = "timefirst"


def _chain(first: int, last: int, reverse: bool = False) -> JoinQuery:
    """Sub-chain template R{first}..R{last} of the shared line5 schema."""
    edges = {f"R{k}": (f"x{k}", f"x{k + 1}") for k in range(first, last + 1)}
    query = JoinQuery(edges)
    if reverse:
        query = JoinQuery(edges, attr_order=tuple(reversed(query.attrs)))
    return query


def fleet_queries() -> List[JoinQuery]:
    """The 10-template standing-query fleet over the line5 schema.

    Four distinct hypergraphs with realistic duplication: the popular
    line3 template registered three times (once with a different output
    attribute order), a hot line2 template three times, and the wider
    line4 / full line5 templates twice each. ``run_batch`` sweeps each
    distinct hypergraph once and shares/projects rows into duplicates —
    which is precisely the multi-query amortization under test, so the
    composition is part of the committed workload definition.
    """
    return [
        _chain(1, 3),
        _chain(1, 3),
        _chain(1, 3, reverse=True),
        _chain(2, 3),
        _chain(2, 3),
        _chain(2, 3),
        _chain(1, 4),
        _chain(1, 4),
        _chain(1, 5),
        _chain(1, 5),
    ]


def _sub_database(query: JoinQuery, database: dict) -> dict:
    return {name: database[name] for name in query.edge_names}


def run_cell(size: str, tau: float = 0.0, repeat: int = 3) -> dict:
    """Measure one size cell: cold fleet vs prepared batch."""
    schema_query = JoinQuery.line(5)
    database = generate(schema_query, SIZES[size])
    queries = fleet_queries()
    n = schema_query.input_size(database)

    cold_results = None
    cold_s = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        cold_results = [
            temporal_join(
                query, _sub_database(query, database), tau=tau,
                algorithm=ALGORITHM, engine="kernel",
            )
            for query in queries
        ]
        cold_s = min(cold_s, time.perf_counter() - start)

    batch_results = None
    batch_s = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        artifact = prepare(database)
        batch_results = run_batch(
            queries, artifact, tau=tau, algorithm=ALGORITHM
        )
        batch_s = min(batch_s, time.perf_counter() - start)

    ok = all(
        batch.normalized() == cold.normalized()
        for batch, cold in zip(batch_results, cold_results)
    )

    # Counter profile from a separate instrumented run, so telemetry
    # never contaminates the timed numbers.
    stats = ExecutionStats()
    artifact = prepare(database, stats=stats)
    run_batch(queries, artifact, tau=tau, algorithm=ALGORITHM, stats=stats)

    return {
        "size": size,
        "input_tuples": n,
        "tau": tau,
        "queries": len(queries),
        "evaluations": stats.get("prepared.batch_evaluations"),
        "results_per_query": [len(r) for r in batch_results],
        "cold_seconds": cold_s,
        "batch_seconds": batch_s,
        "amortized_speedup": cold_s / batch_s if batch_s > 0 else float("inf"),
        "ok": ok,
        "prepared": {
            "sort_calls": stats.get("kernel.sort_calls"),
            "reuse": stats.get("prepared.reuse"),
            "shared_results": stats.get("prepared.shared_results"),
            "plan_cache_hits": stats.get("prepared.plan_cache_hits"),
            "restrict_cache_hits": stats.get("prepared.restrict_cache_hits"),
            "fallback_queries": stats.get("prepared.fallback_queries"),
        },
    }


def run_bench(
    sizes: Sequence[str] = ("3k", "10k"),
    tau: float = 0.0,
    repeat: int = 3,
) -> dict:
    """Measure every size cell and return the JSON document."""
    cells = [run_cell(size, tau=tau, repeat=repeat) for size in sizes]
    return {
        "benchmark": "prepared",
        "timestamp": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "generator": "workloads.synthetic",
            "schema": "line5",
            "fleet": "10 templates / 4 distinct hypergraphs (see "
                     "bench.prepared.fleet_queries)",
            "algorithm": ALGORITHM,
            "tau": tau,
            "repeat": repeat,
            "sizes": {s: SIZES[s].__dict__ for s in sizes},
        },
        "cells": cells,
        "rendered": render_cells(cells),
    }


def render_cells(cells: Sequence[dict]) -> str:
    """Compact ASCII table of the cell list."""
    header = (
        f"{'size':>5} {'tuples':>7} {'queries':>7} {'cold':>9} "
        f"{'batch':>9} {'speedup':>8} {'sorts':>5} {'ok':>3}"
    )
    lines = [
        "Cold fleet vs prepared batch (timefirst kernel)",
        header,
        "-" * len(header),
    ]
    for c in cells:
        lines.append(
            f"{c['size']:>5} {c['input_tuples']:>7} {c['queries']:>7} "
            f"{format_seconds(c['cold_seconds']):>9} "
            f"{format_seconds(c['batch_seconds']):>9} "
            f"{c['amortized_speedup']:>7.2f}x "
            f"{c['prepared']['sort_calls']:>5} "
            f"{'ok' if c['ok'] else 'BAD':>3}"
        )
    return "\n".join(lines)


def check_against_baseline(
    doc: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Gate: compare measured amortized speedups against the baseline.

    Returns the list of failure messages (empty = gate passes). The
    comparison is on the cold/batch *ratio*, which cancels machine
    speed; a cell fails when the batch is slower than the cold fleet
    outright, when its ratio regressed more than ``tolerance`` below
    the baseline ratio, when the batch re-sorted the event stream
    (``sort_calls != 1`` at τ=0 breaks the amortization contract), or
    when batch and cold results disagreed.
    """
    base = {c["size"]: c for c in baseline.get("cells", [])}
    failures: List[str] = []
    for cell in doc["cells"]:
        label = f"fleet/{cell['size']}"
        if not cell["ok"]:
            failures.append(f"{label}: batch and cold results differ")
            continue
        if cell["tau"] == 0 and cell["prepared"]["sort_calls"] != 1:
            failures.append(
                f"{label}: {cell['prepared']['sort_calls']} event sorts "
                "across the batch (amortization contract is exactly 1)"
            )
            continue
        if cell["amortized_speedup"] < 1.0:
            failures.append(
                f"{label}: batch slower than cold fleet "
                f"({cell['amortized_speedup']:.2f}x < 1.00x)"
            )
            continue
        ref = base.get(cell["size"])
        if ref is None:
            continue  # new cell; nothing to regress against
        floor = ref["amortized_speedup"] * (1.0 - tolerance)
        if cell["amortized_speedup"] < floor:
            failures.append(
                f"{label}: amortized speedup {cell['amortized_speedup']:.2f}x "
                f"regressed below {floor:.2f}x (baseline "
                f"{ref['amortized_speedup']:.2f}x - {tolerance:.0%} tolerance)"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.prepared",
        description="Cold-vs-prepared amortization benchmark (JSON + gate)",
    )
    parser.add_argument("--out", default=None,
                        help="write the measured JSON document here")
    parser.add_argument("--check", action="store_true",
                        help="regression-gate mode: compare vs --baseline")
    parser.add_argument("--baseline", default="BENCH_prepared.json",
                        help="committed baseline JSON (check mode)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative speedup regression "
                             "(default 0.15)")
    parser.add_argument("--sizes", nargs="+", default=None,
                        choices=sorted(SIZES),
                        help="sizes to measure (default: all; "
                             f"check mode: {' '.join(CHECK_SIZES)})")
    parser.add_argument("--tau", type=float, default=0.0)
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)

    sizes = args.sizes or (list(CHECK_SIZES) if args.check else ["3k", "10k"])

    baseline = None
    if args.check:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2

    doc = run_bench(sizes=sizes, tau=args.tau, repeat=args.repeat)
    print(doc["rendered"])

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.out}")

    if args.check:
        failures = check_against_baseline(doc, baseline, args.tolerance)
        if failures:
            print("\nprepared benchmark gate FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nprepared benchmark gate passed "
              f"(tolerance {args.tolerance:.0%} vs {args.baseline})")
        return 0

    return 0 if all(c["ok"] for c in doc["cells"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
