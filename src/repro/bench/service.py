"""Standing-query service benchmark: the Figure-9 workloads, served.

``make bench-service`` runs this module to produce ``BENCH_service.json``
— the committed record of :class:`repro.serve.TemporalJoinService`
streaming the paper's two Figure-9 workloads (the TPC-E star self-join
at τ = 170 and the LDBC-SNB line at τ = 11) through *one shared ingest
pass* into a small standing-query fleet.

Each cell registers three standing queries over two distinct templates —
the workload's primary query, a sub-template over a prefix of its
relations, and a duplicate of the primary (exercising the template dedup
path: real registries repeat popular templates) — then bulk-ingests the
stored database through the live broker. The cell records:

* **correctness** — every handle's snapshot must equal the offline
  :func:`~repro.algorithms.registry.temporal_join` of its query, and the
  whole fleet must have been fed by exactly one ingest pass
  (``serve.ingest_passes == 1``). This is the CI gate; timings are not.
* **load numbers** — offline per-query total vs the one served pass,
  ingest throughput (tuples/s), emission event-time lag, peak active-set
  size, buffer depths. Absolute seconds are machine noise; they are
  recorded for the human reading the JSON, not for the gate.

Two modes::

    python -m repro.bench.service --out BENCH_service.json
        Full run (all cells), writes the JSON document.

    python -m repro.bench.service --check --baseline BENCH_service.json
        Smoke gate: re-measures the smoke size of every case and fails
        (exit 1) on any correctness violation — snapshot/offline
        mismatch, a second ingest pass, or a dead dedup path.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.registry import temporal_join
from ..core.query import JoinQuery, self_join_database
from ..obs import ExecutionStats
from ..serve import TemporalJoinService
from ..workloads import ldbc, tpce
from .reporting import format_seconds

#: Input sizes (the workload's own N knob) per benchmark size label.
SIZES: Dict[str, Dict[str, int]] = {
    "smoke": {"tpce_star_tau170": 400, "ldbc_line_tau11": 300},
    "load": {"tpce_star_tau170": 1600, "ldbc_line_tau11": 1200},
}

#: The size the ``--check`` gate re-measures.
CHECK_SIZES = ("smoke",)


def tpce_case(n: int):
    """Q_tpce star (τ=170): holdings self-join, 3-way primary + 2-way sub."""
    config = tpce.TPCEConfig(
        n_customers=max(40, n // 6), n_securities=max(12, n // 40),
        hot_securities=max(3, n // 200), n_holdings=n, seed=170,
    )
    holdings = tpce.generate_holdings(config)
    database = tpce.star_database(holdings, 3)
    fleet = [
        ("star3", tpce.star_query(3), 170),
        ("star2", tpce.star_query(2), 170),
        ("star3-dup", tpce.star_query(3), 170),
    ]
    return database, fleet


def ldbc_case(n: int):
    """LDBC-SNB knows line (τ=11): 3-chain primary + 2-chain sub."""
    config = ldbc.LDBCConfig(n_persons=max(40, n // 5), n_knows=n // 2, seed=11)
    rel = ldbc.knows_relation(config)
    line3 = JoinQuery.line(3)
    database = self_join_database(line3, rel)
    line2 = JoinQuery({"R1": ("x1", "x2"), "R2": ("x2", "x3")})
    fleet = [
        ("line3", line3, 11),
        ("line2", line2, 11),
        ("line3-dup", line3, 11),
    ]
    return database, fleet


CASES = {
    "tpce_star_tau170": tpce_case,
    "ldbc_line_tau11": ldbc_case,
}


def _sub_database(query: JoinQuery, database: dict) -> dict:
    return {name: database[name] for name in query.edge_names}


def run_cell(case: str, size: str, repeat: int = 3) -> dict:
    """Measure one (case, size) cell: offline fleet vs one served pass."""
    database, fleet = CASES[case](SIZES[size][case])
    n = sum(len(rel) for rel in database.values())

    offline_results = None
    offline_s = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        offline_results = [
            temporal_join(query, _sub_database(query, database), tau=tau)
            for _, query, tau in fleet
        ]
        offline_s = min(offline_s, time.perf_counter() - start)

    handles = None
    service = None
    serve_s = float("inf")
    pushed = [0] * len(fleet)
    for _ in range(max(1, repeat)):
        service = TemporalJoinService()
        handles = [
            service.register(query, tau=tau, name=name)
            for name, query, tau in fleet
        ]
        # Push-mode subscribers (the serving deployment shape): emissions
        # go straight to the callback, so ingest is never back-pressured
        # by an absent consumer; the retained rows still feed snapshots.
        pushed = [0] * len(fleet)

        def make_counter(slot: int):
            def on_emission(_emission) -> None:
                pushed[slot] += 1
            return on_emission

        for slot, handle in enumerate(handles):
            handle.subscribe(make_counter(slot))
        start = time.perf_counter()
        service.ingest_database(database, workers=1)
        serve_s = min(serve_s, time.perf_counter() - start)

    snapshots = [handle.snapshot() for handle in handles]
    ok = all(
        snapshot.results.normalized() == offline.normalized()
        for snapshot, offline in zip(snapshots, offline_results)
    )
    telemetry: ExecutionStats = service.telemetry()
    appends = telemetry.get("serve.appends")

    return {
        "case": case,
        "size": size,
        "input_tuples": n,
        "fleet": [
            {"name": name, "tau": tau, "relations": sorted(query.edge_names)}
            for name, query, tau in fleet
        ],
        "results_per_query": [len(s) for s in snapshots],
        "pushed_per_query": pushed,
        "offline_seconds": offline_s,
        "serve_seconds": serve_s,
        "serve_over_offline": serve_s / offline_s if offline_s > 0 else None,
        "ingest_tuples_per_s": appends / serve_s if serve_s > 0 else None,
        "ok": ok,
        "serve": {
            "ingest_passes": telemetry.get("serve.ingest_passes"),
            "appends": appends,
            "fanout_inserts": telemetry.get("serve.fanout_inserts"),
            "results_emitted": telemetry.get("serve.results_emitted"),
            "results_delivered": telemetry.get("serve.results_delivered"),
            "emit_lag_max": telemetry.get("serve.emit_lag.max"),
            "active_peak": telemetry.get("serve.active_peak"),
            "buffer_depth_peak": telemetry.get("serve.buffer_depth_peak"),
            "template_dedup": telemetry.get("serve.template_dedup"),
            "plan_cache_hits": telemetry.get("serve.plan_cache_hits"),
            "shrink_dropped": telemetry.get("serve.shrink_dropped"),
        },
        "slo_report": service.slo_report(),
    }


def run_bench(sizes: Sequence[str] = ("smoke", "load"), repeat: int = 3) -> dict:
    """Measure every (case, size) cell and return the JSON document."""
    cells = [
        run_cell(case, size, repeat=repeat)
        for size in sizes
        for case in CASES
    ]
    return {
        "benchmark": "service",
        "timestamp": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "cases": {
                "tpce_star_tau170": "Q_tpce star self-join, tau=170 "
                                    "(Figure 9 left)",
                "ldbc_line_tau11": "LDBC-SNB knows 3-chain, tau=11 "
                                   "(Figure 9 right)",
            },
            "fleet": "3 standing queries / 2 distinct templates per case "
                     "(primary, sub-template, duplicate primary)",
            "repeat": repeat,
            "sizes": {s: SIZES[s] for s in sizes},
        },
        "cells": cells,
        "rendered": render_cells(cells),
    }


def render_cells(cells: Sequence[dict]) -> str:
    """Compact ASCII table of the cell list."""
    header = (
        f"{'case':>18} {'size':>6} {'tuples':>7} {'offline':>9} "
        f"{'served':>9} {'tup/s':>9} {'lag.max':>7} {'passes':>6} {'ok':>3}"
    )
    lines = [
        "Standing-query service: one shared ingest pass vs offline fleet",
        header,
        "-" * len(header),
    ]
    for c in cells:
        rate = c["ingest_tuples_per_s"]
        lines.append(
            f"{c['case']:>18} {c['size']:>6} {c['input_tuples']:>7} "
            f"{format_seconds(c['offline_seconds']):>9} "
            f"{format_seconds(c['serve_seconds']):>9} "
            f"{rate:>9,.0f} "
            f"{c['serve']['emit_lag_max']:>7g} "
            f"{c['serve']['ingest_passes']:>6} "
            f"{'ok' if c['ok'] else 'BAD':>3}"
        )
    return "\n".join(lines)


def check_cells(doc: dict) -> List[str]:
    """Gate: semantic invariants only (timings are machine noise).

    A cell fails when any handle's snapshot differed from the offline
    join, when the fleet consumed more than one ingest pass, or when the
    duplicate template failed to dedup into a shared evaluation.
    """
    failures: List[str] = []
    for cell in doc["cells"]:
        label = f"{cell['case']}/{cell['size']}"
        if not cell["ok"]:
            failures.append(f"{label}: served snapshots differ from offline "
                            "temporal_join")
        if cell["serve"]["ingest_passes"] != 1:
            failures.append(
                f"{label}: {cell['serve']['ingest_passes']} ingest passes "
                "(the fleet must share exactly 1)"
            )
        if not cell["serve"]["template_dedup"]:
            failures.append(
                f"{label}: duplicate template was not deduplicated into a "
                "shared evaluation"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.service",
        description="Standing-query service benchmark (JSON + gate)",
    )
    parser.add_argument("--out", default=None,
                        help="write the measured JSON document here")
    parser.add_argument("--check", action="store_true",
                        help="smoke-gate mode: semantic invariants must hold")
    parser.add_argument("--baseline", default="BENCH_service.json",
                        help="committed baseline JSON (check mode; read to "
                             "confirm the document exists and parses)")
    parser.add_argument("--sizes", nargs="+", default=None,
                        choices=sorted(SIZES),
                        help="sizes to measure (default: all; "
                             f"check mode: {' '.join(CHECK_SIZES)})")
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)

    sizes = args.sizes or (list(CHECK_SIZES) if args.check else ["smoke", "load"])

    if args.check:
        try:
            with open(args.baseline) as fh:
                json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2

    doc = run_bench(sizes=sizes, repeat=args.repeat)
    print(doc["rendered"])

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.out}")

    failures = check_cells(doc)
    if args.check:
        if failures:
            print("\nservice benchmark gate FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nservice benchmark gate passed (snapshots equal offline "
              "joins; one shared ingest pass)")
        return 0

    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
