"""Smoke benchmark: serial vs sharded timings, written as JSON.

``make bench-smoke`` (and the CI workflow) runs this module to produce
``BENCH_parallel.json`` — one small, fast, machine-readable data point
per commit, so the parallel engine's performance trajectory accumulates
alongside the code. It is a smoke test, not a rigorous benchmark: the
workload is deliberately tiny and the absolute numbers are only
comparable within one machine. The JSON carries everything needed to
read a trend: workload shape, per-cell wall times, and the speedup of
each worker count over the serial anchor.

Usage::

    python -m repro.bench.smoke --out BENCH_parallel.json
    python -m repro.bench.smoke --workers 1 2 4 --mode inline  # debugging
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import List, Optional, Sequence

from ..core.query import JoinQuery
from ..workloads.synthetic import SyntheticConfig, generate
from .harness import Measurement, measure_scaling
from .reporting import render_scaling_table

DEFAULT_ALGORITHMS = ("timefirst", "hybrid")
DEFAULT_WORKERS = (1, 2)


def run_smoke(
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    workers_list: Sequence[int] = DEFAULT_WORKERS,
    n_dangling: int = 400,
    n_results: int = 40,
    tau: float = 0.0,
    repeat: int = 3,
    parallel_mode: str = "process",
) -> dict:
    """Measure the smoke workload and return the JSON-ready document."""
    query = JoinQuery.line(3)
    config = SyntheticConfig(n_dangling=n_dangling, n_results=n_results)
    database = generate(query, config)

    cells: List[dict] = []
    tables = {}
    for algorithm in algorithms:
        ms = measure_scaling(
            algorithm, query, database, tau=tau,
            workers_list=workers_list, repeat=repeat,
            parallel_mode=parallel_mode, collect_stats=True,
        )
        tables[algorithm] = ms
        anchor: Optional[Measurement] = next(
            (m for m in ms if m.workers == 1), None
        )
        for m in ms:
            speedup = (
                anchor.seconds / m.seconds
                if anchor is not None and anchor.ok and m.ok and m.seconds > 0
                else None
            )
            cell = {
                "algorithm": m.algorithm,
                "workers": m.workers,
                "seconds": m.seconds,
                "results": m.result_count,
                "throughput": m.throughput,
                "ok": m.ok,
                "speedup_vs_serial": speedup,
            }
            if m.stats is not None and m.workers > 1:
                # Hardware-independent decomposition quality: the critical
                # path (slowest shard) bounds the achievable wall-clock on
                # a machine with >= workers idle cores, regardless of how
                # few cores *this* runner has.
                shard_times = [
                    v for k, v in m.stats.timers.items()
                    if k.startswith("phase.parallel.shard")
                ]
                cell.update(
                    {
                        "shards": m.stats.get("parallel.shards"),
                        "replicated_tuples": m.stats.get("parallel.replicated"),
                        "skew_pct": m.stats.get("parallel.skew_pct_peak"),
                        "max_shard_seconds": max(shard_times, default=None),
                        "critical_path_speedup": (
                            anchor.seconds / max(shard_times)
                            if anchor is not None and shard_times
                            and max(shard_times) > 0
                            else None
                        ),
                    }
                )
            cells.append(cell)

    return {
        "benchmark": "parallel-smoke",
        "timestamp": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "parallel_mode": parallel_mode,
        "workload": {
            "family": "line3",
            "generator": "workloads.synthetic",
            "n_dangling": n_dangling,
            "n_results": n_results,
            "tau": tau,
            "input_tuples": query.input_size(database),
            "repeat": repeat,
        },
        "cells": cells,
        "rendered": render_scaling_table(
            "Parallel smoke (line3 synthetic)", tables
        ),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.smoke",
        description="Serial-vs-sharded smoke benchmark (JSON output)",
    )
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="output JSON path (default BENCH_parallel.json)")
    parser.add_argument("--algorithms", nargs="+", default=list(DEFAULT_ALGORITHMS))
    parser.add_argument("--workers", nargs="+", type=int,
                        default=list(DEFAULT_WORKERS),
                        help="worker counts to measure (default: 1 2)")
    parser.add_argument("--dangling", type=int, default=400)
    parser.add_argument("--results", type=int, default=40)
    parser.add_argument("--tau", type=float, default=0.0)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--mode", default="process",
                        choices=["process", "inline"],
                        help="parallel execution mode (default: process)")
    args = parser.parse_args(argv)

    doc = run_smoke(
        algorithms=args.algorithms,
        workers_list=args.workers,
        n_dangling=args.dangling,
        n_results=args.results,
        tau=args.tau,
        repeat=args.repeat,
        parallel_mode=args.mode,
    )
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(doc["rendered"])
    print(f"\nwrote {args.out}")
    bad = [c for c in doc["cells"] if not c["ok"]]
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
