"""Kernel benchmark: object engine vs interned-columnar engine, gated.

``make bench-kernels`` runs this module to produce ``BENCH_kernels.json``
— the committed record of how much the kernel substrate
(:mod:`repro.kernels`) buys over the object path on the synthetic smoke
workloads, per family and input size. Like ``bench.smoke`` it is a smoke
benchmark, not a rigorous one: absolute seconds are machine-local noise,
but the *speedup ratio* between the two engines on the same machine and
instance is comparable across machines, which is what the regression
gate checks.

Two modes::

    python -m repro.bench.kernels --out BENCH_kernels.json
        Full run (all sizes), writes the JSON document.

    python -m repro.bench.kernels --check --baseline BENCH_kernels.json
        Regression gate: re-measures the smoke size and fails (exit 1)
        if the kernel engine's speedup over the object engine dropped
        more than ``--tolerance`` (default 15%) below the committed
        baseline's ratio, or below 1.0x outright.

Every cell cross-validates the two engines' normalized results; a
mismatch marks the cell ``ok: false`` and fails the run — a speedup
table over wrong answers is worse than no table.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import time
from typing import Dict, List, Optional, Sequence

from ..algorithms.registry import temporal_join
from ..core.query import JoinQuery
from ..obs import ExecutionStats
from ..workloads.synthetic import SyntheticConfig, generate
from .reporting import format_seconds

#: Workload sizes: label -> synthetic config. Row counts are per the
#: 3-relation families below: N = 3 * (n_dangling + n_results).
SIZES: Dict[str, SyntheticConfig] = {
    "1k": SyntheticConfig(n_dangling=310, n_results=25),
    "3k": SyntheticConfig(n_dangling=980, n_results=40),
    "10k": SyntheticConfig(n_dangling=3300, n_results=60),
}

#: Families exercising both kernel states: line3 drives the generic
#: GHD sweep state, star3 (hierarchical) drives the X_u counter
#: hierarchy of Theorem 9.
FAMILIES = {
    "line3": lambda: JoinQuery.line(3),
    "star3": lambda: JoinQuery.star(3),
}

#: The size the ``--check`` gate re-measures. Small enough for CI,
#: large enough that the ratio is not dominated by setup cost.
CHECK_SIZES = ("3k",)

DEFAULT_TOLERANCE = 0.15


def _time_engine(query, database, engine: str, tau: float, repeat: int):
    """Best-of-``repeat`` wall time for one engine; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        # Drain garbage left by earlier cells/engines so a collection
        # pause triggered by *their* allocations cannot land inside
        # this measurement (at repeat=1 there is no second chance).
        gc.collect()
        start = time.perf_counter()
        result = temporal_join(
            query, database, tau=tau, algorithm="timefirst", engine=engine
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def run_cell(family: str, size: str, tau: float = 0.0, repeat: int = 3) -> dict:
    """Measure one (family, size) cell: both engines on one instance."""
    query = FAMILIES[family]()
    database = generate(query, SIZES[size])
    n = query.input_size(database)

    object_s, object_result = _time_engine(query, database, "object", tau, repeat)
    kernel_s, kernel_result = _time_engine(query, database, "kernel", tau, repeat)
    ok = object_result.normalized() == kernel_result.normalized()

    # Counter profile from a separate instrumented run, so telemetry
    # never contaminates the timed numbers.
    stats = ExecutionStats()
    temporal_join(
        query, database, tau=tau, algorithm="timefirst", engine="kernel",
        stats=stats,
    )

    return {
        "family": family,
        "size": size,
        "input_tuples": n,
        "tau": tau,
        "results": len(kernel_result),
        "object_seconds": object_s,
        "kernel_seconds": kernel_s,
        "speedup": object_s / kernel_s if kernel_s > 0 else float("inf"),
        "ok": ok,
        "kernel": {
            "rows": stats.get("kernel.rows"),
            "interned_values": stats.get("kernel.interned_values"),
            "distinct_endpoints": stats.get("kernel.distinct_endpoints"),
            "sort_calls": stats.get("kernel.sort_calls"),
        },
    }


def run_bench(
    sizes: Sequence[str] = ("1k", "3k", "10k"),
    tau: float = 0.0,
    repeat: int = 3,
) -> dict:
    """Measure every (family, size) cell and return the JSON document."""
    cells: List[dict] = []
    for family in FAMILIES:
        for size in sizes:
            cells.append(run_cell(family, size, tau=tau, repeat=repeat))
    return {
        "benchmark": "kernels",
        "timestamp": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "generator": "workloads.synthetic",
            "algorithm": "timefirst",
            "tau": tau,
            "repeat": repeat,
            "sizes": {s: SIZES[s].__dict__ for s in sizes},
        },
        "cells": cells,
        "rendered": render_cells(cells),
    }


def render_cells(cells: Sequence[dict]) -> str:
    """Compact ASCII table of the cell list."""
    header = (
        f"{'family':>8} {'size':>5} {'tuples':>7} {'object':>9} "
        f"{'kernel':>9} {'speedup':>8} {'ok':>3}"
    )
    lines = ["Kernel vs object engine (timefirst)", header, "-" * len(header)]
    for c in cells:
        lines.append(
            f"{c['family']:>8} {c['size']:>5} {c['input_tuples']:>7} "
            f"{format_seconds(c['object_seconds']):>9} "
            f"{format_seconds(c['kernel_seconds']):>9} "
            f"{c['speedup']:>7.2f}x {'ok' if c['ok'] else 'BAD':>3}"
        )
    return "\n".join(lines)


def check_against_baseline(
    doc: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Gate: compare measured speedups against the committed baseline.

    Returns the list of failure messages (empty = gate passes). The
    comparison is on the object/kernel *ratio*, which cancels machine
    speed; a cell fails when the kernel is slower than the object path
    outright, when its ratio regressed more than ``tolerance`` below
    the baseline ratio, or when the engines disagreed on results.
    """
    base = {(c["family"], c["size"]): c for c in baseline.get("cells", [])}
    failures: List[str] = []
    for cell in doc["cells"]:
        key = (cell["family"], cell["size"])
        label = f"{cell['family']}/{cell['size']}"
        if not cell["ok"]:
            failures.append(f"{label}: engines returned different results")
            continue
        if cell["speedup"] < 1.0:
            failures.append(
                f"{label}: kernel slower than object "
                f"({cell['speedup']:.2f}x < 1.00x)"
            )
            continue
        ref = base.get(key)
        if ref is None:
            continue  # new cell; nothing to regress against
        floor = ref["speedup"] * (1.0 - tolerance)
        if cell["speedup"] < floor:
            failures.append(
                f"{label}: speedup {cell['speedup']:.2f}x regressed below "
                f"{floor:.2f}x (baseline {ref['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernels",
        description="Object-vs-kernel engine benchmark (JSON output + gate)",
    )
    parser.add_argument("--out", default=None,
                        help="write the measured JSON document here")
    parser.add_argument("--check", action="store_true",
                        help="regression-gate mode: compare vs --baseline")
    parser.add_argument("--baseline", default="BENCH_kernels.json",
                        help="committed baseline JSON (check mode)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative speedup regression "
                             "(default 0.15)")
    parser.add_argument("--sizes", nargs="+", default=None,
                        choices=sorted(SIZES),
                        help="sizes to measure (default: all; "
                             f"check mode: {' '.join(CHECK_SIZES)})")
    parser.add_argument("--tau", type=float, default=0.0)
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)

    sizes = args.sizes or (list(CHECK_SIZES) if args.check else ["1k", "3k", "10k"])

    baseline = None
    if args.check:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2

    doc = run_bench(sizes=sizes, tau=args.tau, repeat=args.repeat)
    print(doc["rendered"])

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.out}")

    if args.check:
        failures = check_against_baseline(doc, baseline, args.tolerance)
        if failures:
            print("\nkernel benchmark gate FAILED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nkernel benchmark gate passed "
              f"(tolerance {args.tolerance:.0%} vs {args.baseline})")
        return 0

    return 0 if all(c["ok"] for c in doc["cells"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
