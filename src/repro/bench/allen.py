"""Allen-sweep benchmark: lazy-sweep vs the classic baselines, gated.

``make bench-allen`` runs this module to produce ``BENCH_allen.json`` —
the committed record of what the endpoint-sorted lazy sweep
(:mod:`repro.algorithms.allen`) buys over the strategies it replaced.
Two cell families:

``overlaps``
    ``lazy_sweep_join`` vs ``forward_scan_join`` on the same random
    interval workload — both are plane-sweeps, so the ratio isolates
    the gapless active-set representation and lazy pair construction.
    This is the cell the default-strategy flip rests on.

``during`` (and other non-overlaps atoms)
    ``lazy_sweep_join``'s event sweep vs the naive O(n*m) predicate
    scan — the only classic strategy that can answer Allen atoms at
    all. Kept at a small size because the naive side is quadratic.

Like ``bench.kernels`` this is a smoke benchmark: absolute seconds are
machine-local noise, but the *speedup ratio* between two algorithms on
the same machine and instance is comparable across machines, which is
what the regression gate checks.

Two modes::

    python -m repro.bench.allen --out BENCH_allen.json
        Full run (all cells), writes the JSON document.

    python -m repro.bench.allen --check --baseline BENCH_allen.json
        Regression gate: re-measures the check cells and fails (exit 1)
        if a speedup dropped more than ``--tolerance`` (default 15%)
        below the committed baseline's ratio, or below 1.0x outright.

Every cell cross-validates the two implementations' sorted outputs; a
mismatch marks the cell ``ok: false`` and fails the run.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.allen import ATOMS, lazy_sweep_join, pair_interval
from ..algorithms.interval_join import forward_scan_join
from ..core.interval import Interval
from .reporting import format_seconds

#: Workload sizes: label -> items per side. The time span scales with N
#: (lengths stay ~uniform(0, 20)) so pair density per tuple is constant
#: across sizes instead of exploding quadratically.
SIZES: Dict[str, int] = {
    "1k": 1_000,
    "3k": 3_000,
    "10k": 10_000,
}

#: Cell families: predicate -> (baseline label, sizes measured). The
#: naive baseline is quadratic, so non-overlaps atoms stay small.
FAMILIES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "overlaps": ("forward-scan", ("1k", "3k", "10k")),
    "during": ("naive", ("1k",)),
    "meets": ("naive", ("1k",)),
}

#: Cells the ``--check`` gate re-measures: the 10k overlaps cell is the
#: one the default-strategy flip (and the issue's 1.3x floor) rests on;
#: one naive-baseline cell keeps the event sweep honest.
CHECK_CELLS: Tuple[Tuple[str, str], ...] = (
    ("overlaps", "10k"),
    ("during", "1k"),
)

DEFAULT_TOLERANCE = 0.15
DEFAULT_REPEAT = 5


def make_workload(size: str, seed: int, grid: bool = False) -> Tuple[list, list]:
    """Two sides of random intervals: starts uniform over a span that
    scales with N, lengths uniform(0, 20).

    ``grid=True`` snaps endpoints to integers so equality-shaped atoms
    (``meets``, ``starts``, ...) actually fire; float endpoints almost
    never coincide.
    """
    n = SIZES[size]
    rng = random.Random(seed)
    span = float(n)
    sides = []
    for prefix in ("l", "r"):
        items = []
        for i in range(n):
            if grid:
                lo = float(rng.randrange(n))
                hi = lo + rng.randrange(21)
            else:
                lo = rng.uniform(0.0, span)
                hi = lo + rng.uniform(0.0, 20.0)
            items.append((f"{prefix}{i}", Interval(lo, hi)))
        sides.append(items)
    return sides[0], sides[1]


def naive_predicate_join(left, right, predicate: str) -> list:
    """O(n*m) oracle: test the atom on every pair."""
    holds = ATOMS[predicate].holds
    out = []
    for lpay, livl in left:
        llo = livl.lo
        lhi = livl.hi
        for rpay, rivl in right:
            if holds(llo, lhi, rivl.lo, rivl.hi):
                out.append(
                    (lpay, rpay,
                     Interval(*pair_interval(llo, lhi, rivl.lo, rivl.hi)))
                )
    return out


def _time(fn, repeat: int) -> Tuple[float, list]:
    """Best-of-``repeat`` wall time and the (last) result."""
    best = float("inf")
    result: list = []
    for _ in range(repeat):
        # Drain garbage left by earlier cells so a collection pause
        # triggered by their allocations cannot land inside this
        # measurement.
        gc.collect()
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_cell(predicate: str, size: str, repeat: int = DEFAULT_REPEAT) -> dict:
    """Measure one (predicate, size) cell, cross-validating outputs."""
    baseline_name, _ = FAMILIES[predicate]
    left, right = make_workload(
        size, seed=SIZES[size], grid=(baseline_name == "naive")
    )
    if baseline_name == "forward-scan":
        base_seconds, base_out = _time(
            lambda: forward_scan_join(left, right), repeat
        )
    else:
        base_seconds, base_out = _time(
            lambda: naive_predicate_join(left, right, predicate), repeat
        )
    sweep_seconds, sweep_out = _time(
        lambda: lazy_sweep_join(left, right, predicate=predicate), repeat
    )
    ok = sorted(base_out) == sorted(sweep_out)
    return {
        "family": predicate,
        "size": size,
        "baseline": baseline_name,
        "input_tuples": len(left) + len(right),
        "pairs": len(sweep_out),
        "baseline_seconds": base_seconds,
        "sweep_seconds": sweep_seconds,
        "speedup": base_seconds / sweep_seconds if sweep_seconds else 0.0,
        "ok": ok,
    }


def run_bench(
    cells_wanted: Optional[Sequence[Tuple[str, str]]] = None,
    repeat: int = DEFAULT_REPEAT,
) -> dict:
    """Measure the requested cells (default: all) and return the doc."""
    if cells_wanted is None:
        cells_wanted = [
            (predicate, size)
            for predicate, (_, sizes) in FAMILIES.items()
            for size in sizes
        ]
    cells: List[dict] = [
        run_cell(predicate, size, repeat=repeat)
        for predicate, size in cells_wanted
    ]
    return {
        "benchmark": "allen",
        "timestamp": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "generator": "bench.allen.make_workload",
            "repeat": repeat,
            "sizes": dict(SIZES),
        },
        "cells": cells,
        "rendered": render_cells(cells),
    }


def render_cells(cells: Sequence[dict]) -> str:
    """Compact ASCII table of the cell list."""
    header = (
        f"{'predicate':>9} {'size':>5} {'tuples':>7} {'pairs':>8} "
        f"{'baseline':>12} {'sweep':>9} {'speedup':>8} {'ok':>3}"
    )
    lines = ["Lazy sweep vs classic baselines", header, "-" * len(header)]
    for c in cells:
        base = f"{c['baseline'][:3]} {format_seconds(c['baseline_seconds'])}"
        lines.append(
            f"{c['family']:>9} {c['size']:>5} {c['input_tuples']:>7} "
            f"{c['pairs']:>8} {base:>12} "
            f"{format_seconds(c['sweep_seconds']):>9} "
            f"{c['speedup']:>7.2f}x {'ok' if c['ok'] else 'BAD':>3}"
        )
    return "\n".join(lines)


def check_against_baseline(
    doc: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Gate: compare measured speedups against the committed baseline.

    Returns the list of failure messages (empty = gate passes). The
    comparison is on the ratio, which cancels machine speed; a cell
    fails when the sweep is slower than its baseline outright, when
    its ratio regressed more than ``tolerance`` below the committed
    ratio, or when the implementations disagreed on results.
    """
    base = {(c["family"], c["size"]): c for c in baseline.get("cells", [])}
    failures: List[str] = []
    for cell in doc["cells"]:
        key = (cell["family"], cell["size"])
        label = f"{cell['family']}/{cell['size']}"
        if not cell["ok"]:
            failures.append(f"{label}: implementations returned different results")
            continue
        if cell["speedup"] < 1.0:
            failures.append(
                f"{label}: sweep slower than {cell['baseline']} "
                f"({cell['speedup']:.2f}x < 1.00x)"
            )
            continue
        ref = base.get(key)
        if ref is None:
            continue  # new cell; nothing to regress against
        floor = ref["speedup"] * (1.0 - tolerance)
        if cell["speedup"] < floor:
            failures.append(
                f"{label}: speedup {cell['speedup']:.2f}x regressed below "
                f"{floor:.2f}x (baseline {ref['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.allen",
        description="Lazy-sweep vs classic baselines (JSON output + gate)",
    )
    parser.add_argument("--out", default=None,
                        help="write the measured JSON document here")
    parser.add_argument("--check", action="store_true",
                        help="regression-gate mode: compare vs --baseline")
    parser.add_argument("--baseline", default="BENCH_allen.json",
                        help="committed baseline JSON (check mode)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative speedup regression "
                             "(default 0.15)")
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT,
                        help="timing repeats per cell, best-of (default 3)")
    args = parser.parse_args(argv)

    baseline = None
    if args.check:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2

    cells_wanted = list(CHECK_CELLS) if args.check else None
    doc = run_bench(cells_wanted=cells_wanted, repeat=args.repeat)
    print(doc["rendered"])

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.out}")

    if args.check:
        failures = check_against_baseline(doc, baseline, args.tolerance)
        if failures:
            print("\nallen benchmark gate FAILED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nallen benchmark gate passed "
              f"(tolerance {args.tolerance:.0%} vs {args.baseline})")
        return 0

    return 0 if all(c["ok"] for c in doc["cells"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
