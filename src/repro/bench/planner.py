"""Planner benchmark: exact decomposition search vs warm plan cache.

``make bench-planner`` runs this module to produce ``BENCH_planner.json``
— the committed record of what the persistent plan cache
(:mod:`repro.core.plancache`) buys over re-running the exact
minimum-width search on every process start. The fleet is the Table 1
query set (the paper's named families); each arm plans the whole fleet:

* **cold** — every per-process cache is cleared first (the search memo
  and the fractional-cover LP memo), then ``plan()`` runs with no
  persistent cache: every query pays the full branch-and-bound plus its
  LP lower-bound calls;
* **warm** — the same caches are cleared, but ``plan()`` reads a
  pre-populated :class:`~repro.core.plancache.PlanCache` re-loaded from
  disk each repeat (simulating a fresh process): every query rebuilds
  its cached winning GHDs and performs **zero** search nodes.

Absolute seconds are machine noise; the cold/warm *ratio* on the same
machine is what the regression gate compares. The gate additionally
pins the cache contract itself: the warm arm must answer every query
from the cache (``planner.cache_hits == fleet size``, zero search
nodes) and the amortization must stay at or above the 2x floor the
cache exists to provide. Plans from both arms are cross-checked
(widths, exponent, algorithm) query by query.

Two modes::

    python -m repro.bench.planner --out BENCH_planner.json
        Full run, writes the JSON document.

    python -m repro.bench.planner --check --baseline BENCH_planner.json
        Regression gate: re-measures and fails (exit 1) if the warm
        amortization dropped more than ``--tolerance`` (default 15%)
        below the committed baseline's, or below the 2.0x floor.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.plancache import PlanCache
from ..core.planner import plan
from ..core.query import JoinQuery
from ..nontemporal.cover import _fractional_edge_cover_cached
from ..nontemporal.search import clear_search_memo
from ..obs import ExecutionStats
from .reporting import format_seconds

#: The Table 1 fleet: every named family the paper's guideline table
#: covers, plus the larger cycles where the search actually works. All
#: shapes are distinct — the amortization measured here is pure
#: cache-vs-search, not intra-fleet sharing.
FLEET: Tuple[Tuple[str, Callable[[], JoinQuery]], ...] = (
    ("line2", lambda: JoinQuery.line(2)),
    ("line3", lambda: JoinQuery.line(3)),
    ("line4", lambda: JoinQuery.line(4)),
    ("star3", lambda: JoinQuery.star(3)),
    ("star4", lambda: JoinQuery.star(4)),
    ("triangle", JoinQuery.triangle),
    ("cycle4", lambda: JoinQuery.cycle(4)),
    ("cycle5", lambda: JoinQuery.cycle(5)),
    ("cycle6", lambda: JoinQuery.cycle(6)),
    ("bowtie", JoinQuery.bowtie),
    ("hier", JoinQuery.hier),
)

#: The amortization floor the gate enforces regardless of baseline.
MIN_AMORTIZATION = 2.0

DEFAULT_TOLERANCE = 0.15


def _cold_process() -> None:
    """Drop every per-process memo, simulating a fresh interpreter."""
    clear_search_memo()
    _fractional_edge_cover_cached.cache_clear()


def _plan_fleet(cache: Optional[PlanCache], stats=None) -> List:
    return [
        plan(make(), cache=cache, stats=stats) for _, make in FLEET
    ]


def run_cell(repeat: int = 3) -> dict:
    """Measure the fleet cold (full search) vs warm (persistent cache)."""
    with tempfile.TemporaryDirectory(prefix="repro-plan-bench-") as root:
        cache_dir = os.path.join(root, "plans")

        # Populate the persistent cache once (not timed) and keep the
        # plans as the cross-check reference.
        _cold_process()
        seed_cache = PlanCache(cache_dir)
        reference = _plan_fleet(seed_cache)

        cold_s = float("inf")
        cold_plans = None
        for _ in range(max(1, repeat)):
            _cold_process()
            start = time.perf_counter()
            cold_plans = _plan_fleet(None)
            cold_s = min(cold_s, time.perf_counter() - start)

        warm_s = float("inf")
        warm_plans = None
        for _ in range(max(1, repeat)):
            _cold_process()
            start = time.perf_counter()
            warm_plans = _plan_fleet(PlanCache(cache_dir))
            warm_s = min(warm_s, time.perf_counter() - start)

        ok = all(
            (w.fhtw, w.hhtw, w.exponent, w.algorithm)
            == (c.fhtw, c.hhtw, c.exponent, c.algorithm)
            == (r.fhtw, r.hhtw, r.exponent, r.algorithm)
            for w, c, r in zip(warm_plans, cold_plans, reference)
        )

        # Counter profile from separate instrumented runs, so telemetry
        # never contaminates the timed numbers.
        _cold_process()
        cold_stats = ExecutionStats()
        _plan_fleet(None, stats=cold_stats)
        _cold_process()
        warm_stats = ExecutionStats()
        _plan_fleet(PlanCache(cache_dir), stats=warm_stats)

    return {
        "fleet": [name for name, _ in FLEET],
        "queries": len(FLEET),
        "widths": {
            name: {"fhtw": p.fhtw, "hhtw": p.hhtw, "exponent": p.exponent}
            for (name, _), p in zip(FLEET, reference)
        },
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "amortized_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "ok": ok,
        "cold": {
            "search_nodes": cold_stats.get("planner.search_nodes"),
            "lb_prunes": cold_stats.get("planner.lb_prunes"),
        },
        "warm": {
            "search_nodes": warm_stats.get("planner.search_nodes"),
            "cache_hits": warm_stats.get("planner.cache_hits"),
            "cache_misses": warm_stats.get("planner.cache_misses"),
        },
    }


def run_bench(repeat: int = 3) -> dict:
    """Measure the fleet cell and return the JSON document."""
    cell = run_cell(repeat=repeat)
    return {
        "benchmark": "planner",
        "timestamp": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "fleet": "Table 1 families (see bench.planner.FLEET)",
            "repeat": repeat,
        },
        "cells": [cell],
        "rendered": render_cell(cell),
    }


def render_cell(cell: dict) -> str:
    """Compact ASCII summary of the single fleet cell."""
    header = (
        f"{'queries':>7} {'cold':>9} {'warm':>9} {'speedup':>8} "
        f"{'nodes':>7} {'hits':>5} {'ok':>3}"
    )
    return "\n".join(
        [
            "Cold exact search vs warm persistent plan cache (Table 1 fleet)",
            header,
            "-" * len(header),
            f"{cell['queries']:>7} "
            f"{format_seconds(cell['cold_seconds']):>9} "
            f"{format_seconds(cell['warm_seconds']):>9} "
            f"{cell['amortized_speedup']:>7.2f}x "
            f"{cell['cold']['search_nodes']:>7} "
            f"{cell['warm']['cache_hits']:>5} "
            f"{'ok' if cell['ok'] else 'BAD':>3}",
        ]
    )


def check_against_baseline(
    doc: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Gate: the warm cache must keep paying for itself.

    Returns failure messages (empty = pass). A cell fails when warm and
    cold plans disagree, when the warm arm did any search work or missed
    the cache at all (the zero-search contract), when the amortization
    fell below the 2x floor, or when it regressed more than
    ``tolerance`` below the committed baseline's ratio.
    """
    base = {tuple(c["fleet"]): c for c in baseline.get("cells", [])}
    failures: List[str] = []
    for cell in doc["cells"]:
        label = f"planner/{cell['queries']}q"
        if not cell["ok"]:
            failures.append(f"{label}: warm and cold plans disagree")
            continue
        if cell["warm"]["search_nodes"] != 0:
            failures.append(
                f"{label}: warm arm expanded "
                f"{cell['warm']['search_nodes']} search nodes "
                "(cache contract is exactly 0)"
            )
            continue
        if cell["warm"]["cache_hits"] != cell["queries"]:
            failures.append(
                f"{label}: {cell['warm']['cache_hits']} cache hits for "
                f"{cell['queries']} queries (every query must hit)"
            )
            continue
        if cell["amortized_speedup"] < MIN_AMORTIZATION:
            failures.append(
                f"{label}: warm amortization {cell['amortized_speedup']:.2f}x "
                f"below the {MIN_AMORTIZATION:.1f}x floor"
            )
            continue
        ref = base.get(tuple(cell["fleet"]))
        if ref is None:
            continue  # new fleet composition; nothing to regress against
        floor = ref["amortized_speedup"] * (1.0 - tolerance)
        if cell["amortized_speedup"] < floor:
            failures.append(
                f"{label}: amortization {cell['amortized_speedup']:.2f}x "
                f"regressed below {floor:.2f}x (baseline "
                f"{ref['amortized_speedup']:.2f}x - {tolerance:.0%} tolerance)"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.planner",
        description="Exact-search vs plan-cache benchmark (JSON + gate)",
    )
    parser.add_argument("--out", default=None,
                        help="write the measured JSON document here")
    parser.add_argument("--check", action="store_true",
                        help="regression-gate mode: compare vs --baseline")
    parser.add_argument("--baseline", default="BENCH_planner.json",
                        help="committed baseline JSON (check mode)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative amortization regression "
                             "(default 0.15)")
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)

    baseline = None
    if args.check:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2

    doc = run_bench(repeat=args.repeat)
    print(doc["rendered"])

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.out}")

    if args.check:
        failures = check_against_baseline(doc, baseline, args.tolerance)
        if failures:
            print("\nplanner benchmark gate FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nplanner benchmark gate passed "
              f"(tolerance {args.tolerance:.0%} vs {args.baseline})")
        return 0

    return 0 if all(c["ok"] for c in doc["cells"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
