"""Binary hash joins and semijoins over temporal relations.

These primitives treat the valid interval as a payload: the binary join
intersects the two intervals and (by default) drops pairs whose
intersection is empty, which makes it a *binary temporal join* building
block as well. Passing ``temporal=False`` keeps all value-matching pairs
with interval ``∩`` replaced by the pair's intersection-or-``always`` —
used where the paper's algorithms explicitly ignore temporal predicates
(the JOINFIRST strategy filters only at the end via its own path).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.interval import Interval
from ..core.relation import TemporalRelation


def shared_attrs(left: TemporalRelation, right: TemporalRelation) -> List[str]:
    """Join attributes: attributes present in both schemas, left order."""
    right_set = set(right.attrs)
    return [a for a in left.attrs if a in right_set]


def hash_join(
    left: TemporalRelation,
    right: TemporalRelation,
    name: Optional[str] = None,
    temporal: bool = True,
) -> TemporalRelation:
    """Natural join of two relations with interval intersection.

    The output schema is ``left.attrs`` followed by the right-only
    attributes. With ``temporal=True`` (default) pairs with disjoint
    intervals are dropped and outputs carry the intersection; with
    ``temporal=False`` every value match survives and outputs carry the
    intersection when non-empty, else the left interval (the temporal
    information is declared meaningless by the caller).

    When the relations share no attributes this is a Cartesian product,
    exactly as a natural join should behave.
    """
    on = shared_attrs(left, right)
    right_extra = [a for a in right.attrs if a not in set(left.attrs)]
    right_extra_pos = right.positions(right_extra)
    out_attrs = tuple(left.attrs) + tuple(right_extra)

    groups = right.group_by(on)
    left_pos = left.positions(on)
    rows: List[Tuple[Tuple[object, ...], Interval]] = []
    for lvalues, livl in left:
        key = tuple(lvalues[p] for p in left_pos)
        for rvalues, rivl in groups.get(key, ()):
            joint = livl.intersect(rivl)
            if joint is None:
                if temporal:
                    continue
                joint = livl
            rows.append(
                (lvalues + tuple(rvalues[p] for p in right_extra_pos), joint)
            )
    out = TemporalRelation(
        name or f"({left.name} ⋈ {right.name})", out_attrs, check_distinct=False
    )
    out._rows = rows
    return out


def semijoin(
    left: TemporalRelation,
    right: TemporalRelation,
    name: Optional[str] = None,
) -> TemporalRelation:
    """``left ⋉ right``: keep left rows with a value match in right.

    Intervals are *not* intersected — the Yannakakis reducer uses value
    semijoins only; temporal filtering happens during enumeration. With no
    shared attributes the semijoin keeps everything iff ``right`` is
    non-empty (the Cartesian-product convention).
    """
    on = shared_attrs(left, right)
    if not on:
        kept = list(left.rows) if len(right) else []
        out = TemporalRelation(name or left.name, left.attrs, check_distinct=False)
        out._rows = kept
        return out
    keys = {tuple(v[p] for p in right.positions(on)) for v, _ in right}
    left_pos = left.positions(on)
    out = TemporalRelation(name or left.name, left.attrs, check_distinct=False)
    out._rows = [
        (v, iv) for v, iv in left if tuple(v[p] for p in left_pos) in keys
    ]
    return out


def estimate_join_size(
    left: TemporalRelation, right: TemporalRelation
) -> float:
    """System-R style cardinality estimate for the join-order search.

    ``|L ⋈ R| ≈ |L| · |R| / max(d_L(on), d_R(on))`` where ``d`` counts
    distinct join-key values; a Cartesian product estimates ``|L| · |R|``.
    """
    on = shared_attrs(left, right)
    if not on:
        return float(len(left)) * float(len(right))
    d = max(left.key_cardinality(on), right.key_cardinality(on), 1)
    return float(len(left)) * float(len(right)) / d


def lookup_index(
    relation: TemporalRelation,
) -> Dict[Tuple[object, ...], Interval]:
    """Exact-match interval lookup (tuples are distinct, so this is a map)."""
    return {values: interval for values, interval in relation}
