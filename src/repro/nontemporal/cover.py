"""Fractional edge covers, ρ(Q), and the AGM bound.

The width of a GHD node (Definition 8) is the optimal fractional edge
covering number ρ of the node's derived hypergraph, i.e. the value of the
LP (3) in the paper:

    min Σ_e x_e   s.t.   x_e ≥ 0,  Σ_{e ∋ v} x_e ≥ 1 for every vertex v.

We solve this exactly with :func:`scipy.optimize.linprog` (HiGHS). The AGM
bound ``Π_e |R_e|^{x_e}`` on the join output size is provided for the
bench harness and for cost estimates.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..core.errors import QueryError
from ..core.hypergraph import Hypergraph


import functools


@functools.lru_cache(maxsize=4096)
def _fractional_edge_cover_cached(hg: Hypergraph) -> Tuple[float, Tuple[Tuple[str, float], ...]]:
    value, weights = _fractional_edge_cover_impl(hg)
    return value, tuple(sorted(weights.items()))


def fractional_edge_cover(
    hg: Hypergraph,
) -> Tuple[float, Dict[str, float]]:
    """Optimal fractional edge cover (cached by hypergraph structure)."""
    value, weights = _fractional_edge_cover_cached(hg)
    return value, dict(weights)


def _fractional_edge_cover_impl(
    hg: Hypergraph,
) -> Tuple[float, Dict[str, float]]:
    """Optimal fractional edge cover of a hypergraph.

    Returns ``(rho, weights)``. Raises :class:`QueryError` if some vertex
    is uncoverable (cannot happen for hypergraphs built from relations,
    where every attribute belongs to its edge, but guards subhypergraph
    bugs).
    """
    names = hg.edge_names
    attrs = hg.attrs
    n_edges = len(names)
    # Constraints: -A x <= -1  (i.e. A x >= 1), A[v][e] = 1 if v in e.
    a_ub = np.zeros((len(attrs), n_edges))
    for j, name in enumerate(names):
        for attr in hg.edge(name):
            a_ub[attrs.index(attr), j] = 1.0
    if not np.all(a_ub.sum(axis=1) >= 1):
        uncovered = [attrs[i] for i in range(len(attrs)) if a_ub[i].sum() < 1]
        raise QueryError(f"attributes {uncovered} belong to no edge")
    result = linprog(
        c=np.ones(n_edges),
        A_ub=-a_ub,
        b_ub=-np.ones(len(attrs)),
        bounds=[(0, None)] * n_edges,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible here
        raise QueryError(f"edge cover LP failed: {result.message}")
    weights = {name: float(result.x[j]) for j, name in enumerate(names)}
    return float(result.fun), weights


def rho(hg: Hypergraph) -> float:
    """The paper's ρ(Q): optimal fractional edge cover number."""
    value, _ = fractional_edge_cover(hg)
    # Round away LP solver noise: widths of constant-size queries are
    # small rationals (1, 1.5, 2, ...).
    return round(value, 6)


def integral_edge_cover(hg: Hypergraph) -> Tuple[int, List[str]]:
    """Smallest integral edge cover, by exhaustive search (constant m).

    Used by tests as a sanity upper bound on ρ and by the baseline cost
    model.
    """
    names = hg.edge_names
    attrs = set(hg.attrs)
    best: Tuple[int, List[str]] = (len(names) + 1, [])
    m = len(names)
    for mask in range(1, 1 << m):
        chosen = [names[i] for i in range(m) if mask >> i & 1]
        if len(chosen) >= best[0]:
            continue
        covered = set()
        for name in chosen:
            covered.update(hg.edge(name))
        if covered >= attrs:
            best = (len(chosen), chosen)
    if not best[1]:
        raise QueryError("hypergraph admits no edge cover")
    return best


def agm_bound(
    hg: Hypergraph, sizes: Mapping[str, int]
) -> float:
    """AGM output-size bound ``Π_e |R_e|^{x_e}`` for the optimal cover."""
    _, weights = fractional_edge_cover(hg)
    bound = 1.0
    for name, w in weights.items():
        size = max(1, sizes[name])
        bound *= float(size) ** w
    return bound
