"""Non-temporal join substrate: Yannakakis, GenericJoin, covers, GHDs."""

from .cover import agm_bound, fractional_edge_cover, integral_edge_cover, rho
from .generic_join import choose_attribute_order, generic_join, generic_join_with_order
from .ghd import (
    GHD,
    GuardedPartition,
    enumerate_partition_ghds,
    fhtw,
    fhtw_ghd,
    find_guarded_partition,
    ghd_from_partition,
    guarded_ghd,
    is_guarded,
    hhtw,
    hhtw_ghd,
    trivial_ghd,
)
from .hash_join import estimate_join_size, hash_join, lookup_index, semijoin, shared_attrs
from .yannakakis import yannakakis

__all__ = [
    "GHD",
    "GuardedPartition",
    "agm_bound",
    "choose_attribute_order",
    "enumerate_partition_ghds",
    "estimate_join_size",
    "fhtw",
    "fhtw_ghd",
    "find_guarded_partition",
    "fractional_edge_cover",
    "generic_join",
    "generic_join_with_order",
    "ghd_from_partition",
    "guarded_ghd",
    "is_guarded",
    "hash_join",
    "hhtw",
    "hhtw_ghd",
    "integral_edge_cover",
    "lookup_index",
    "rho",
    "semijoin",
    "shared_attrs",
    "trivial_ghd",
    "yannakakis",
]
