"""The Yannakakis algorithm for acyclic joins, with interval carrying.

``YANNAKAKIS(Q, R)`` computes an acyclic join in ``O(N + K)`` [86]: a
full semijoin reducer over a join tree (bottom-up then top-down) followed
by output-sensitive enumeration down the tree.

The temporal algorithms call this with *active* tuples (all valid at one
instant), so intervals are intersected during assembly and the
intersection is never empty there; used stand-alone on arbitrary temporal
relations, rows whose running intersection empties are pruned eagerly —
that makes the stand-alone version a correct (if not output-sensitive)
temporal acyclic join, which the test-suite exploits as a second oracle.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import QueryError
from ..core.hypergraph import Hypergraph, join_tree_children
from ..core.interval import Interval
from ..core.relation import TemporalRelation
from ..core.result import JoinResultSet
from .hash_join import semijoin

Values = Tuple[object, ...]


def yannakakis(
    hg: Hypergraph,
    database: Mapping[str, TemporalRelation],
    attr_order: Optional[Sequence[str]] = None,
    intersect_intervals: bool = True,
) -> JoinResultSet:
    """Acyclic join via full reducer + enumeration.

    Parameters
    ----------
    hg:
        An α-acyclic hypergraph (raises :class:`QueryError` otherwise).
    database:
        Relation bound to each hyperedge.
    attr_order:
        Output attribute layout; defaults to ``hg.attrs``.
    intersect_intervals:
        When true, result intervals are the intersection of all
        constituent tuples' intervals and combinations with empty
        intersections are pruned; when false, results carry
        ``Interval.always()``.
    """
    parent = hg.gyo_join_tree()
    if parent is None:
        raise QueryError(f"yannakakis requires an acyclic query, got {hg!r}")
    out_attrs = tuple(attr_order) if attr_order is not None else hg.attrs
    children = join_tree_children(parent)
    roots = children.get("", [])

    # --------------------------------------------------------------
    # Full reducer
    # --------------------------------------------------------------
    reduced: Dict[str, TemporalRelation] = {
        name: database[name] for name in hg.edge_names
    }
    post = _postorder(children, roots)
    for name in post:  # bottom-up: parent ⋉ child
        par = parent[name]
        if par is not None:
            reduced[par] = semijoin(reduced[par], reduced[name])
    for name in reversed(post):  # top-down: child ⋉ parent
        par = parent[name]
        if par is not None:
            reduced[name] = semijoin(reduced[name], reduced[par])

    if any(len(rel) == 0 for rel in reduced.values()):
        return JoinResultSet(out_attrs)

    # --------------------------------------------------------------
    # Enumeration: BFS down the tree, hash-joining child relations into
    # growing partial assignments. After the full reducer every partial
    # assignment extends to at least one full result, so the work is
    # O(K) modulo the interval pruning discussed in the module docstring.
    # --------------------------------------------------------------
    order = _preorder(children, roots)
    bound_attrs: List[str] = []
    bound_pos: Dict[str, int] = {}
    partials: List[Tuple[Values, Interval]] = [((), Interval.always())]
    for name in order:
        rel = reduced[name]
        on = [a for a in rel.attrs if a in bound_pos]
        extra = [a for a in rel.attrs if a not in bound_pos]
        extra_pos = rel.positions(extra)
        groups = rel.group_by(on)
        probe_pos = [bound_pos[a] for a in on]
        new_partials: List[Tuple[Values, Interval]] = []
        for values, interval in partials:
            key = tuple(values[p] for p in probe_pos)
            for rvalues, rivl in groups.get(key, ()):
                if intersect_intervals:
                    joint = interval.intersect(rivl)
                    if joint is None:
                        continue
                else:
                    joint = interval
                new_partials.append(
                    (values + tuple(rvalues[p] for p in extra_pos), joint)
                )
        partials = new_partials
        for a in extra:
            bound_pos[a] = len(bound_attrs)
            bound_attrs.append(a)
        if not partials:
            return JoinResultSet(out_attrs)

    # Re-layout into the requested attribute order.
    perm = [bound_pos[a] for a in out_attrs]
    result = JoinResultSet(out_attrs)
    for values, interval in partials:
        result.append(tuple(values[p] for p in perm), interval)
    return result


def _postorder(children: Mapping[str, List[str]], roots: List[str]) -> List[str]:
    out: List[str] = []

    def walk(node: str) -> None:
        for c in children.get(node, []):
            walk(c)
        out.append(node)

    for r in roots:
        walk(r)
    return out


def _preorder(children: Mapping[str, List[str]], roots: List[str]) -> List[str]:
    out: List[str] = []
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        out.append(node)
        for c in reversed(children.get(node, [])):
            stack.append(c)
    return out
