"""Exact minimum-width GHD search: branch-and-bound over edge partitions.

The enumeration in :mod:`repro.nontemporal.ghd` visits every set
partition of the edge set — Bell-number growth that hangs beyond ~8
edges. This module finds the same rank-minimal partition GHD by
branch-and-bound in the frasmt solver style: a greedy agglomerative
construction (the partition analogue of a greedy elimination order)
seeds the upper bound, and fractional-cover LP lower bounds prune the
assignment tree until the bound meets the best leaf — or a ``budget``
node / ``time_budget`` knob expires, in which case the best GHD found
so far is returned with ``optimal=False``.

Soundness of the pruning rests on monotonicity: for a *partial* group
with attribute union ``U``, the final bag can only grow, and both

* ``ρ`` of the query's restriction to ``U`` (a fractional cover of the
  larger restriction induces one of the smaller — drop the extra
  attributes' constraints), and
* the bag arity ``|U|``

are monotone in ``U``. Component-wise lower bounds therefore bound the
full :func:`~repro.nontemporal.ghd._ghd_rank` tuple lexicographically,
so a subtree is cut only when *every* completion ranks strictly worse
than the incumbent. Because the tree enumerates restricted-growth
strings in the same order as ``_set_partitions`` and the incumbent is
replaced only on strict rank improvement, a completed search returns
the *identical* GHD the exhaustive enumeration would pick — the
Figure-6/Table-1 shape pins survive the engine swap, and the optimality
oracle tests cross-check widths against enumeration on small queries.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import List, Optional, Set, Tuple

from ..core.errors import QueryError
from ..core.hypergraph import Hypergraph
from .cover import rho
from .ghd import GHD, _ghd_rank, ghd_from_partition

#: Supported ``search=`` modes for the width functions and the planner.
SEARCH_MODES = ("exact", "greedy", "enumerate")

#: In-memory memo entries kept per process (distinct (query, mode) keys).
MEMO_SIZE = 512


@dataclass
class SearchResult:
    """Outcome of one minimum-width decomposition search.

    ``nodes`` counts branch-and-bound states expanded (partition leaves
    examined, for the enumeration mode); a memo hit reports 0 — no new
    work happened. ``optimal`` is False only when a budget expired
    before the search space was exhausted, in which case ``width`` is an
    upper bound achieved by ``ghd`` and ``reason`` says which knob ran
    out.
    """

    width: float
    ghd: GHD
    optimal: bool
    nodes: int
    lb_prunes: int
    mode: str
    reason: Optional[str] = None


# ----------------------------------------------------------------------
# Greedy upper bound
# ----------------------------------------------------------------------
def greedy_ghd(hg: Hypergraph, hierarchical: bool = False) -> GHD:
    """A valid (optionally hierarchical) partition GHD, greedily.

    Starts from the trivial one-bag-per-edge partition and repeatedly
    merges the pair of groups sharing the most attributes (ties: the
    smaller merged bag, then declaration order) until the candidate is a
    GHD — and hierarchical, when requested. The single-group partition
    is always both, so at most ``m - 1`` merges terminate the loop. The
    result seeds the branch-and-bound upper bound; it carries no
    optimality claim of its own.
    """
    groups: List[List[str]] = [[name] for name in hg.edge_names]
    attrs: List[Set[str]] = [set(hg.edge(name)) for name in hg.edge_names]
    while True:
        ghd = ghd_from_partition(hg, groups)
        if ghd is not None and (not hierarchical or ghd.is_hierarchical()):
            return ghd
        best_pair: Optional[Tuple[int, int]] = None
        best_key: Optional[Tuple[int, int]] = None
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                shared = len(attrs[i] & attrs[j])
                key = (-shared, len(attrs[i] | attrs[j]))
                if best_key is None or key < best_key:
                    best_key = key
                    best_pair = (i, j)
        if best_pair is None:  # pragma: no cover - single group is valid
            raise QueryError(f"greedy merge found no pair for {hg!r}")
        i, j = best_pair
        groups[i] = groups[i] + groups[j]
        attrs[i] = attrs[i] | attrs[j]
        del groups[j], attrs[j]


# ----------------------------------------------------------------------
# Exact branch-and-bound
# ----------------------------------------------------------------------
def _restriction_rho(hg: Hypergraph, bag_attrs: Set[str]) -> float:
    """ρ of every query edge restricted to ``bag_attrs`` (Definition 8).

    This is exactly the final bag width when ``bag_attrs`` is a leaf
    bag, and a lower bound on it for any partial group (monotonicity).
    Results are memoized per derived hypergraph through :func:`rho`'s
    own cache.
    """
    derived = {}
    for name in hg.edge_names:
        restricted = tuple(a for a in hg.edge(name) if a in bag_attrs)
        if restricted:
            derived[name] = restricted
    return rho(Hypergraph(derived))


class _Budget:
    """Node/time budget shared across one branch-and-bound run."""

    __slots__ = ("nodes", "deadline", "used", "reason")

    def __init__(
        self, nodes: Optional[int], time_budget: Optional[float]
    ) -> None:
        self.nodes = nodes
        self.deadline = (
            None if time_budget is None else time.perf_counter() + time_budget
        )
        self.used = 0
        self.reason: Optional[str] = None

    def spend(self) -> bool:
        """Account one search node; True while the search may continue."""
        self.used += 1
        if self.nodes is not None and self.used >= self.nodes:
            self.reason = f"node budget ({self.nodes}) exhausted"
            return False
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self.reason = "time budget exhausted"
            return False
        return True


def exact_ghd_search(
    hg: Hypergraph,
    hierarchical: bool = False,
    budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> SearchResult:
    """Minimum-rank partition GHD by branch-and-bound.

    Explores edge-to-group assignments in restricted-growth order (the
    same order ``_set_partitions`` enumerates), pruning a partial
    assignment when its component-wise lower-bound tuple — max group
    ``ρ`` restriction, max bag arity, total assigned arity, bag count —
    already ranks strictly worse than the incumbent. The greedy GHD
    seeds the bound; the incumbent itself is only ever replaced by a
    leaf of the tree, so a completed run reproduces the enumeration's
    winner exactly (including its tie-breaks).
    """
    seed = greedy_ghd(hg, hierarchical=hierarchical)
    seed_rank = _ghd_rank(seed)
    edge_names = list(hg.edge_names)
    m = len(edge_names)
    edge_attrs = [set(hg.edge(name)) for name in edge_names]

    best: Optional[GHD] = None
    best_rank = seed_rank
    bud = _Budget(budget, time_budget)
    prunes = 0
    exhausted = False

    # DFS stacks: current groups as (edge list, attr union, rho bound).
    groups: List[List[str]] = []
    unions: List[Set[str]] = []
    rhos: List[float] = []

    def dfs(i: int) -> None:
        nonlocal best, best_rank, prunes, exhausted
        if exhausted:
            return
        if i == m:
            ghd = ghd_from_partition(hg, [list(g) for g in groups])
            if ghd is None:
                return
            if hierarchical and not ghd.is_hierarchical():
                return
            rank = _ghd_rank(ghd)
            if rank < best_rank or (best is None and rank <= best_rank):
                best = ghd
                best_rank = rank
            return
        remaining = m - i - 1
        for g in range(len(groups) + 1):
            if exhausted:
                return
            if not bud.spend():
                exhausted = True
                return
            if g == len(groups):
                groups.append([edge_names[i]])
                unions.append(set(edge_attrs[i]))
                rhos.append(_restriction_rho(hg, unions[-1]))
            else:
                groups[g].append(edge_names[i])
                prev_union = unions[g]
                prev_rho = rhos[g]
                merged = prev_union | edge_attrs[i]
                unions[g] = merged
                rhos[g] = (
                    prev_rho
                    if merged == prev_union
                    else _restriction_rho(hg, merged)
                )
            lb = (
                max(rhos),
                max(
                    max(len(u) for u in unions),
                    max((len(edge_attrs[j]) for j in range(i + 1, m)), default=0),
                ),
                sum(len(u) for u in unions),
                -(len(groups) + remaining),
            )
            if lb > best_rank:
                prunes += 1
            else:
                dfs(i + 1)
            if g == len(groups) - 1 and len(groups[g]) == 1:
                groups.pop()
                unions.pop()
                rhos.pop()
            else:
                groups[g].pop()
                unions[g] = prev_union
                rhos[g] = prev_rho

    dfs(0)

    if best is None:
        # Budget died before any leaf was reached: fall back to the seed.
        best = seed
        best_rank = seed_rank
    return SearchResult(
        width=best_rank[0],
        ghd=best,
        optimal=not exhausted,
        nodes=bud.used,
        lb_prunes=prunes,
        mode="exact",
        reason=bud.reason,
    )


# ----------------------------------------------------------------------
# Mode dispatch and memoization
# ----------------------------------------------------------------------
_MEMO: "OrderedDict[Tuple[Hypergraph, bool, str], SearchResult]" = OrderedDict()


def clear_search_memo() -> None:
    """Drop the in-process memo (cold-start measurement / tests)."""
    _MEMO.clear()


def _memo_store(key, result: SearchResult) -> None:
    _MEMO[key] = result
    while len(_MEMO) > MEMO_SIZE:
        _MEMO.popitem(last=False)


def min_width_ghd(
    hg: Hypergraph,
    hierarchical: bool = False,
    search: str = "exact",
    budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> SearchResult:
    """Minimum-width (optionally hierarchical) partition GHD of ``hg``.

    ``search`` selects the engine: ``"exact"`` (branch-and-bound,
    default), ``"greedy"`` (upper bound only, ``optimal=False``) or
    ``"enumerate"`` (the legacy exhaustive scan, guarded against
    Bell-number blowup). Completed results are memoized per process and
    replayed with ``nodes=0`` — the persistent cross-process cache lives
    in :mod:`repro.core.plancache`, not here. Budget-truncated exact
    results are *not* memoized, so a later unbudgeted call still proves
    optimality.
    """
    if search not in SEARCH_MODES:
        raise QueryError(
            f"unknown search mode {search!r}; expected one of {SEARCH_MODES}"
        )
    key = (hg, hierarchical, search)
    cached = _MEMO.get(key)
    if cached is not None:
        return replace(cached, nodes=0, lb_prunes=0)
    if search == "exact":
        result = exact_ghd_search(
            hg, hierarchical=hierarchical, budget=budget, time_budget=time_budget
        )
    elif search == "greedy":
        ghd = greedy_ghd(hg, hierarchical=hierarchical)
        result = SearchResult(
            width=ghd.width(),
            ghd=ghd,
            optimal=False,
            nodes=0,
            lb_prunes=0,
            mode="greedy",
            reason="greedy construction carries no optimality proof",
        )
    else:
        result = _enumerate_search(hg, hierarchical)
    if result.optimal or search == "greedy":
        _memo_store(key, result)
    return result


def _enumerate_search(hg: Hypergraph, hierarchical: bool) -> SearchResult:
    """The legacy exhaustive scan, wrapped in a :class:`SearchResult`."""
    from .ghd import enumerate_partition_ghds

    best: Optional[Tuple[Tuple[float, int, int, int], GHD]] = None
    nodes = 0
    for ghd in enumerate_partition_ghds(hg):
        nodes += 1
        if hierarchical and not ghd.is_hierarchical():
            continue
        rank = _ghd_rank(ghd)
        if best is None or rank < best[0]:
            best = (rank, ghd)
    if best is None:  # pragma: no cover - the single-bag partition qualifies
        raise QueryError(f"no partition GHD found for {hg!r}")
    return SearchResult(
        width=best[0][0],
        ghd=best[1],
        optimal=True,
        nodes=nodes,
        lb_prunes=0,
        mode="enumerate",
    )
