"""Generalized hypertree decompositions, fhtw and hhtw search.

Definition 7 (GHD), Definition 8 (fractional hypertree width fhtw),
Definition 11 (hierarchical hypertree width hhtw) and Definition 13
(guarded GHDs) of the paper live here.

Exact fhtw is NP-hard in general, but the paper's data complexity setting
treats queries as constant-size, and every decomposition the paper uses
(Table 1, Figure 6) has bags that are unions of hyperedges. We therefore
search over *partitions of the edge set*: each group becomes a bag
labelled with the union of its edges' attributes, and the candidate is a
GHD iff the bag hypergraph is α-acyclic (its GYO join tree then satisfies
coverage and the running-intersection property). This recovers the
paper's widths for all studied queries; tests pin the Figure 6 values.

``hhtw`` restricts the same search to candidates whose *bag hypergraph is
hierarchical*, enabling the §3.2 sweep on the derived instance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.classification import is_hierarchical
from ..core.errors import PlanError, QueryError
from ..core.hypergraph import Hypergraph, verify_join_tree
from .cover import rho

#: Hard ceiling on the edge count :func:`enumerate_partition_ghds` will
#: exhaustively scan. Bell(8) = 4140 partitions is still interactive;
#: Bell(12) ≈ 4.2 million each needing a GYO pass is a hang. Larger
#: queries must use the branch-and-bound engine
#: (:func:`repro.nontemporal.search.exact_ghd_search`), which the width
#: functions select by default.
MAX_ENUMERATION_EDGES = 8


@dataclass
class GHD:
    """A generalized hypertree decomposition of a join query.

    Attributes
    ----------
    query:
        The decomposed hypergraph.
    bags:
        Mapping bag name → attribute tuple (the labelling λ).
    parent:
        Join-tree parent map over bag names (roots map to ``None``).
    groups:
        Mapping bag name → list of edge names whose *home* is this bag.
        Every edge is covered by its home bag; edges may additionally be
        contained in other bags (Algorithm 5 exploits that through its
        ``e − λ_u = ∅`` test, not through ``groups``).
    """

    query: Hypergraph
    bags: Dict[str, Tuple[str, ...]]
    parent: Dict[str, Optional[str]]
    groups: Dict[str, List[str]]

    # ------------------------------------------------------------------
    def bag_hypergraph(self) -> Hypergraph:
        """The bags viewed as a hypergraph (the derived query of HYBRID)."""
        return Hypergraph(self.bags)

    def derived_edges(self, bag: str) -> Dict[str, Tuple[str, ...]]:
        """The paper's ``E_u``: every query edge restricted to the bag.

        Returns edge name → non-empty restriction ``e ∩ λ_u``.
        """
        lam = set(self.bags[bag])
        out: Dict[str, Tuple[str, ...]] = {}
        for name in self.query.edge_names:
            restricted = tuple(a for a in self.query.edge(name) if a in lam)
            if restricted:
                out[name] = restricted
        return out

    def bag_width(self, bag: str) -> float:
        """ρ of the bag's derived hypergraph (Definition 8)."""
        return rho(Hypergraph(self.derived_edges(bag)))

    def width(self) -> float:
        """Maximum bag width."""
        return max(self.bag_width(b) for b in self.bags)

    def is_valid(self) -> bool:
        """Coverage + running intersection (Definition 7)."""
        # Coverage: each edge inside some bag.
        for name in self.query.edge_names:
            eattrs = set(self.query.edge(name))
            if not any(eattrs <= set(lam) for lam in self.bags.values()):
                return False
        # Connectivity via the join-tree checker on the bag hypergraph.
        return verify_join_tree(self.bag_hypergraph(), self.parent)

    def is_hierarchical(self) -> bool:
        """True iff the bag hypergraph is a hierarchical query."""
        return is_hierarchical(self.bag_hypergraph())

    def is_trivial(self) -> bool:
        """True iff the GHD is the identity (one bag per edge)."""
        return len(self.bags) == len(self.query.edge_names) and all(
            len(g) == 1 for g in self.groups.values()
        )

    def pretty(self) -> str:
        """Render as the paper's ``(x1x2x3) - (x3x4)`` notation."""
        parts = []
        for name in self.bags:
            attrs = "".join(self.bags[name])
            par = self.parent.get(name)
            link = "" if par is None else f" ← {par}"
            parts.append(f"{name}({attrs}){link}")
        return " | ".join(parts)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def ghd_from_partition(
    hg: Hypergraph, partition: Sequence[Sequence[str]]
) -> Optional[GHD]:
    """Build a GHD whose bags are unions of the edge groups in ``partition``.

    Returns ``None`` when the bag hypergraph is cyclic (no join tree, so
    the candidate is not a GHD under this construction).
    """
    bags: Dict[str, Tuple[str, ...]] = {}
    groups: Dict[str, List[str]] = {}
    for idx, group in enumerate(partition):
        attrs: List[str] = []
        seen = set()
        for edge_name in group:
            for a in hg.edge(edge_name):
                if a not in seen:
                    seen.add(a)
                    attrs.append(a)
        bag_name = f"B{idx}"
        bags[bag_name] = tuple(attrs)
        groups[bag_name] = list(group)
    bag_hg = Hypergraph(bags)
    parent = bag_hg.gyo_join_tree()
    if parent is None:
        return None
    return GHD(hg, bags, parent, groups)


def trivial_ghd(hg: Hypergraph) -> GHD:
    """One bag per edge — valid iff the query is acyclic."""
    ghd = ghd_from_partition(hg, [[name] for name in hg.edge_names])
    if ghd is None:
        raise PlanError(f"query {hg!r} is cyclic; the trivial GHD does not exist")
    return ghd


def _set_partitions(items: List[str]) -> Iterable[List[List[str]]]:
    """All partitions of ``items`` (restricted growth strings).

    Refuses more than :data:`MAX_ENUMERATION_EDGES` items — the partition
    count is the Bell number of ``len(items)``, which passes 4 million at
    12 items; callers needing larger queries use the branch-and-bound
    search instead of exhaustion.
    """
    n = len(items)
    if n > MAX_ENUMERATION_EDGES:
        raise QueryError(
            f"refusing to enumerate the {n}-edge partition lattice "
            f"(Bell-number blowup past {MAX_ENUMERATION_EDGES} edges); "
            "use search='exact' (branch-and-bound) instead"
        )
    if n == 0:
        yield []
        return
    codes = [0] * n

    def gen(i: int, max_code: int):
        if i == n:
            blocks: Dict[int, List[str]] = {}
            for idx, c in enumerate(codes):
                blocks.setdefault(c, []).append(items[idx])
            yield [blocks[c] for c in sorted(blocks)]
            return
        for c in range(max_code + 2):
            codes[i] = c
            yield from gen(i + 1, max(max_code, c))

    yield from gen(1, 0)


def enumerate_partition_ghds(hg: Hypergraph) -> Iterable[GHD]:
    """All partition-derived GHDs of a (constant-size) query.

    Raises :class:`QueryError` *eagerly* (not on first iteration) when
    the query exceeds :data:`MAX_ENUMERATION_EDGES` edges.
    """
    if len(hg.edge_names) > MAX_ENUMERATION_EDGES:
        raise QueryError(
            f"refusing to enumerate partition GHDs of a "
            f"{len(hg.edge_names)}-edge query (Bell-number blowup past "
            f"{MAX_ENUMERATION_EDGES} edges); use search='exact' "
            "(branch-and-bound) instead"
        )

    def _iter() -> Iterable[GHD]:
        for partition in _set_partitions(list(hg.edge_names)):
            ghd = ghd_from_partition(hg, partition)
            if ghd is not None:
                yield ghd

    return _iter()


def _ghd_rank(ghd: GHD) -> Tuple[float, int, int, int]:
    """Ranking key for tie-breaking among equal-width GHDs.

    Smaller width first; then smaller maximum bag arity (cheaper bag
    materialization), then smaller total arity (no redundant bags), then
    more bags — yielding the balanced decompositions Table 1 lists (e.g.
    (x1x2x3)-(x3x4x1) for Q_C4 rather than a 4-attribute bag, and a
    single bag for the triangle rather than one with a redundant copy).
    """
    arities = [len(lam) for lam in ghd.bags.values()]
    return (ghd.width(), max(arities), sum(arities), -len(arities))


def fhtw_ghd(hg: Hypergraph, search: str = "exact") -> Tuple[float, GHD]:
    """Minimum-width partition GHD — the fhtw decomposition.

    Ties prefer fewer bags (cheaper sweeps) then the trivial GHD; the
    branch-and-bound default reproduces the exhaustive enumeration's
    winner exactly (see :mod:`repro.nontemporal.search`). Completed
    results are memoized per hypergraph structure; treat the returned
    GHD as read-only.
    """
    from .search import min_width_ghd

    result = min_width_ghd(hg, hierarchical=False, search=search)
    return result.width, result.ghd


def hhtw_ghd(hg: Hypergraph, search: str = "exact") -> Tuple[float, GHD]:
    """Minimum-width *hierarchical* partition GHD (Definition 11).

    A single-bag decomposition is trivially hierarchical, so this always
    exists; its width is then ρ(Q).
    """
    from .search import min_width_ghd

    result = min_width_ghd(hg, hierarchical=True, search=search)
    return result.width, result.ghd


def fhtw(hg: Hypergraph, search: str = "exact") -> float:
    """Fractional hypertree width (over partition GHDs)."""
    return fhtw_ghd(hg, search=search)[0]


def hhtw(hg: Hypergraph, search: str = "exact") -> float:
    """Hierarchical hypertree width (over partition GHDs)."""
    return hhtw_ghd(hg, search=search)[0]


# ----------------------------------------------------------------------
# Guarded partitions (Definition 13 / Algorithm 6)
# ----------------------------------------------------------------------
@dataclass
class GuardedPartition:
    """An attribute partition ``(I, J)`` driving HybridGuarded.

    ``J`` is the attribute set shared by all bags (the "core"); ``I`` the
    rest. ``residual_product`` is true when the residual query ``Q_I``
    splits into pairwise attribute-disjoint edge groups — the situation
    where the interval-join shortcut of §4.2 applies (with exactly two
    groups).
    """

    I: Tuple[str, ...]
    J: Tuple[str, ...]
    core_edges: Tuple[str, ...]  # edges fully inside J
    residual_edges: Tuple[str, ...]  # edges intersecting I
    residual_product: bool

    @property
    def residual_group_count(self) -> int:
        return len(self.residual_edges) if self.residual_product else 1


def is_guarded(ghd: GHD) -> bool:
    """Definition 13, literally: is this GHD guarded?

    A GHD is guarded when its nodes are in one-to-one correspondence with
    ``{e ∪ J : e ∈ E_I}`` for ``J = ∩_u λ_u`` and ``I = V − J`` (``E_I``
    the edges meeting ``I``). Used by tests to tie
    :func:`find_guarded_partition` back to the paper's definition: the
    GHD induced by a found partition is guarded in this exact sense.
    """
    hg = ghd.query
    lam_sets = [frozenset(lam) for lam in ghd.bags.values()]
    j_set = frozenset.intersection(*lam_sets) if lam_sets else frozenset()
    i_set = frozenset(hg.attrs) - j_set
    expected = {
        frozenset(hg.edge(name)) | j_set
        for name in hg.edge_names
        if set(hg.edge(name)) & i_set
    }
    return set(lam_sets) == expected and len(lam_sets) == len(expected)


def guarded_ghd(hg: Hypergraph) -> Optional[GHD]:
    """The GHD induced by the guarded partition, when one exists.

    Nodes are ``e ∪ J`` for every residual edge ``e``, arranged in a star
    (any tree over nodes sharing ``J`` satisfies running intersection
    when every ``I``-attribute is private to one edge, which
    :func:`find_guarded_partition` guarantees).
    """
    gp = find_guarded_partition(hg)
    if gp is None:
        return None
    j = tuple(gp.J)
    bags: Dict[str, Tuple[str, ...]] = {}
    groups: Dict[str, List[str]] = {}
    parent: Dict[str, Optional[str]] = {}
    first: Optional[str] = None
    for idx, name in enumerate(gp.residual_edges):
        bag = f"B{idx}"
        extra = tuple(a for a in hg.edge(name) if a not in set(j))
        bags[bag] = j + extra
        groups[bag] = [name]
        parent[bag] = None if first is None else first
        if first is None:
            first = bag
    # Core edges (⊆ J) live in every bag; home them at the first bag.
    if first is not None and gp.core_edges:
        groups[first] = groups[first] + list(gp.core_edges)
    ghd = GHD(hg, bags, parent, groups)
    if not ghd.is_valid():  # pragma: no cover - guarded partitions are valid
        raise PlanError(f"guarded construction produced an invalid GHD for {hg!r}")
    return ghd


def find_guarded_partition(hg: Hypergraph) -> Optional[GuardedPartition]:
    """Find the paper's guarded partition, if one exists.

    We take ``I`` = attributes private to a single edge and ``J`` = the
    rest, then require that the induced residual edges are pairwise
    disjoint on ``I`` (each residual edge touches its own private
    attributes only). This matches Table 1's (I, J) columns for the line
    joins and generalizes to stars; queries without private attributes
    (cycles) have no guarded partition.
    """
    private = [a for a in hg.attrs if len(hg.edges_of(a)) == 1]
    if not private:
        return None
    i_set = set(private)
    j_attrs = tuple(a for a in hg.attrs if a not in i_set)
    if not j_attrs:
        # Everything private: the query is a Cartesian product of edges;
        # HybridGuarded degenerates to TIMEFIRST. Not guarded per Def. 13.
        return None
    core = tuple(
        name
        for name in hg.edge_names
        if not (set(hg.edge(name)) & i_set)
    )
    residual = tuple(
        name for name in hg.edge_names if set(hg.edge(name)) & i_set
    )
    if not residual:
        return None
    # Residual restrictions pairwise disjoint on I?
    restrictions = [set(hg.edge(name)) & i_set for name in residual]
    product = True
    for x, y in itertools.combinations(restrictions, 2):
        if x & y:
            product = False
            break
    return GuardedPartition(
        I=tuple(sorted(i_set, key=hg.attrs.index)),
        J=j_attrs,
        core_edges=core,
        residual_edges=residual,
        residual_product=product,
    )
