"""GenericJoin: a worst-case optimal multi-way join (NPRR / Leapfrog style).

``GENERICJOIN(Q, R)`` runs in ``O(N^ρ)`` for any join query (Ngo et al.
[65, 66]); the paper uses it to materialize GHD bags (Algorithms 4–6) and
as the subgraph-matching engine behind JOINFIRST.

The implementation binds attributes one at a time along a global order.
At each level, the candidate values are the intersection of the next-value
sets offered by every relation whose schema intersects the bound prefix at
that attribute; the intersection iterates the *smallest* candidate set and
probes the others — the step that yields worst-case optimality.

Relations are accessed through :class:`~repro.datastructures.trie.RelationTrie`
instances built per (relation, attribute-order) pair.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import InvariantError
from ..core.hypergraph import Hypergraph
from ..core.relation import TemporalRelation
from ..datastructures.trie import RelationTrie

Values = Tuple[object, ...]


def choose_attribute_order(hg: Hypergraph) -> List[str]:
    """A connected attribute order: greedily extend by edge adjacency.

    Any order is correct; orders that keep consecutive attributes inside
    common edges prune earlier. We start from the attribute with the
    highest edge degree and grow the order by adjacency.
    """
    attrs = list(hg.attrs)
    if not attrs:
        return []
    degree = {a: len(hg.edges_of(a)) for a in attrs}
    order = [max(attrs, key=lambda a: (degree[a], a))]
    chosen = {order[0]}
    while len(order) < len(attrs):
        frontier: List[str] = []
        for a in attrs:
            if a in chosen:
                continue
            # adjacent to a chosen attribute through some edge?
            for name in hg.edges_of(a):
                if chosen & set(hg.edge(name)):
                    frontier.append(a)
                    break
        pool = frontier or [a for a in attrs if a not in chosen]
        nxt = max(pool, key=lambda a: (degree[a], a))
        order.append(nxt)
        chosen.add(nxt)
    return order


class _EdgePlan:
    """Precomputed per-edge state for one global attribute order."""

    __slots__ = ("name", "attrs_in_order", "level_of", "trie")

    def __init__(
        self,
        name: str,
        edge_attrs: Sequence[str],
        order: Sequence[str],
        relation: TemporalRelation,
    ) -> None:
        self.name = name
        order_pos = {a: i for i, a in enumerate(order)}
        self.attrs_in_order: List[str] = sorted(edge_attrs, key=lambda a: order_pos[a])
        # level_of[k] = global level at which this edge binds its k-th attr
        self.level_of: List[int] = [order_pos[a] for a in self.attrs_in_order]
        rel_pos = relation.positions(self.attrs_in_order)
        self.trie = RelationTrie(
            self.attrs_in_order,
            (
                (tuple(values[p] for p in rel_pos), interval)
                for values, interval in relation
            ),
        )


def generic_join(
    hg: Hypergraph,
    database: Mapping[str, TemporalRelation],
    order: Optional[Sequence[str]] = None,
) -> List[Values]:
    """All non-temporal join result tuples, in ``order`` attribute layout.

    ``database`` binds each hyperedge name to a relation whose attribute
    set equals the edge's. Returns value tuples aligned with the attribute
    order actually used (returned order == ``order`` or the automatically
    chosen one — call :func:`choose_attribute_order` yourself if you need
    to know it; or use :func:`generic_join_with_order`).
    """
    results, _ = generic_join_with_order(hg, database, order)
    return results


def generic_join_with_order(
    hg: Hypergraph,
    database: Mapping[str, TemporalRelation],
    order: Optional[Sequence[str]] = None,
) -> Tuple[List[Values], List[str]]:
    """Like :func:`generic_join` but also returns the attribute order used."""
    attr_order = list(order) if order is not None else choose_attribute_order(hg)
    plans = [
        _EdgePlan(name, hg.edge(name), attr_order, database[name])
        for name in hg.edge_names
    ]
    # Fast exit on any empty relation.
    if any(len(p.trie) == 0 for p in plans):
        return [], attr_order

    # For every level, which edges constrain the attribute at that level,
    # and how deep their own prefix is at that point.
    n_levels = len(attr_order)
    constraining: List[List[Tuple[_EdgePlan, int]]] = [[] for _ in range(n_levels)]
    for plan in plans:
        for k, level in enumerate(plan.level_of):
            constraining[level].append((plan, k))

    results: List[Values] = []
    binding: List[object] = [None] * n_levels

    def extend(level: int) -> None:
        if level == n_levels:
            results.append(tuple(binding))
            return
        cons = constraining[level]
        if not cons:  # attribute in no edge: impossible by construction
            return
        # Build each constraining edge's prefix from the current binding.
        prefixes: List[Tuple[_EdgePlan, Values]] = []
        for plan, k in cons:
            prefix = tuple(binding[plan.level_of[i]] for i in range(k))
            prefixes.append((plan, prefix))
        # Smallest candidate set drives the intersection.
        best_idx = 0
        best_count = None
        for i, (plan, prefix) in enumerate(prefixes):
            count = plan.trie.candidate_count(prefix)
            if count == 0:
                return
            if best_count is None or count < best_count:
                best_count = count
                best_idx = i
        driver_plan, driver_prefix = prefixes[best_idx]
        candidates = driver_plan.trie.candidate_values(driver_prefix)
        if candidates is None:
            raise InvariantError(
                "trie returned no candidate node for a prefix whose "
                "candidate_count was positive; trie state is inconsistent"
            )
        others = [prefixes[i] for i in range(len(prefixes)) if i != best_idx]
        for value in candidates:
            ok = True
            for plan, prefix in others:
                node = plan.trie.children(prefix)
                if node is None or value not in node:
                    ok = False
                    break
            if ok:
                binding[level] = value
                extend(level + 1)
        binding[level] = None

    extend(0)
    return results, attr_order


def count_generic_join(
    hg: Hypergraph, database: Mapping[str, TemporalRelation]
) -> int:
    """Result count without materialization (used by cost probes)."""
    return len(generic_join(hg, database))
