"""A bisect-backed sorted container standing in for a balanced BST.

The paper's §3.2 structure keeps "the set of distinct values over
attributes ``V_{p(u)}`` ... in a binary-search tree as indexes", and §4.2
sorts distinct join-key values the same way. In Python a sorted array with
:mod:`bisect` gives the same O(log n) search; insertion is O(n) worst case
but with the small, churning sets these indexes hold it is faster than any
pure-Python tree. The interface below is the subset the algorithms use.
"""

from __future__ import annotations

import bisect
from typing import Generic, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class SortedList(Generic[T]):
    """A sorted multiset over a totally ordered element type."""

    __slots__ = ("_data",)

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._data: List[T] = sorted(items)

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[T]:
        return iter(self._data)

    def __getitem__(self, idx: int) -> T:
        return self._data[idx]

    def __contains__(self, item: T) -> bool:
        idx = bisect.bisect_left(self._data, item)
        return idx < len(self._data) and self._data[idx] == item

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SortedList({self._data!r})"

    # ------------------------------------------------------------------
    def add(self, item: T) -> None:
        """Insert ``item`` keeping order; duplicates allowed."""
        bisect.insort(self._data, item)

    def remove(self, item: T) -> None:
        """Remove one occurrence of ``item``; KeyError if absent."""
        idx = bisect.bisect_left(self._data, item)
        if idx >= len(self._data) or self._data[idx] != item:
            raise KeyError(f"{item!r} not in SortedList")
        self._data.pop(idx)

    def discard(self, item: T) -> bool:
        """Remove one occurrence if present; returns whether it was."""
        idx = bisect.bisect_left(self._data, item)
        if idx < len(self._data) and self._data[idx] == item:
            self._data.pop(idx)
            return True
        return False

    # ------------------------------------------------------------------
    # Order queries
    # ------------------------------------------------------------------
    def index_left(self, item: T) -> int:
        """Number of elements strictly below ``item``."""
        return bisect.bisect_left(self._data, item)

    def index_right(self, item: T) -> int:
        """Number of elements ≤ ``item``."""
        return bisect.bisect_right(self._data, item)

    def first_geq(self, item: T) -> Optional[T]:
        """Smallest element ≥ ``item`` (None if no such element)."""
        idx = bisect.bisect_left(self._data, item)
        return self._data[idx] if idx < len(self._data) else None

    def last_leq(self, item: T) -> Optional[T]:
        """Largest element ≤ ``item`` (None if no such element)."""
        idx = bisect.bisect_right(self._data, item)
        return self._data[idx - 1] if idx > 0 else None

    def irange(self, lo: T, hi: T) -> Iterator[T]:
        """Iterate elements in ``[lo, hi]`` inclusive."""
        start = bisect.bisect_left(self._data, lo)
        stop = bisect.bisect_right(self._data, hi)
        for i in range(start, stop):
            yield self._data[i]

    def count_range(self, lo: T, hi: T) -> int:
        """Number of elements in ``[lo, hi]`` inclusive."""
        return bisect.bisect_right(self._data, hi) - bisect.bisect_left(self._data, lo)

    def min(self) -> T:
        if not self._data:
            raise IndexError("min of empty SortedList")
        return self._data[0]

    def max(self) -> T:
        if not self._data:
            raise IndexError("max of empty SortedList")
        return self._data[-1]
