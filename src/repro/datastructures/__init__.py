"""Data-structure substrate: heaps, sorted indexes, interval trees, tries."""

from .heap import AddressableHeap
from .interval_tree import DynamicIntervalIndex, StaticIntervalTree
from .sorted_list import SortedList
from .trie import RelationTrie

__all__ = [
    "AddressableHeap",
    "DynamicIntervalIndex",
    "StaticIntervalTree",
    "SortedList",
    "RelationTrie",
]
