"""Hash tries over relations, the access structure behind GenericJoin.

Worst-case-optimal join algorithms probe relations attribute by attribute
along a global order: "which values of attribute ``x`` extend this prefix?"
A :class:`RelationTrie` answers that in O(1) expected time per level by
nesting dictionaries keyed on the relation's attributes in the chosen
order. Leaves optionally carry payloads (here: valid intervals) so the
temporal HYBRID algorithm can recover intervals of fully-bound tuples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Values = Tuple[object, ...]


class RelationTrie:
    """A nested-dict trie over a relation's tuples for one attribute order.

    Parameters
    ----------
    attrs:
        The relation's attributes in trie-level order (a permutation of the
        relation schema, chosen as the restriction of the global attribute
        order to the relation).
    rows:
        ``(values, payload)`` pairs where ``values`` is aligned with
        ``attrs``. Payloads of duplicate value tuples are collected in a
        list (projections may map several tuples to one trie path).
    """

    __slots__ = ("attrs", "_root", "_count")

    def __init__(
        self,
        attrs: Sequence[str],
        rows: Iterable[Tuple[Values, object]] = (),
    ) -> None:
        self.attrs: Tuple[str, ...] = tuple(attrs)
        self._root: Dict[object, object] = {}
        self._count = 0
        for values, payload in rows:
            self.insert(values, payload)

    def __len__(self) -> int:
        return self._count

    def insert(self, values: Values, payload: object = None) -> None:
        """Insert one tuple (aligned with ``attrs``) with a payload."""
        if len(values) != len(self.attrs):
            raise ValueError(
                f"tuple {values} has arity {len(values)}, trie expects "
                f"{len(self.attrs)}"
            )
        node = self._root
        for v in values[:-1]:
            node = node.setdefault(v, {})  # type: ignore[assignment]
        leaf = node.setdefault(values[-1], [])
        leaf.append(payload)  # type: ignore[union-attr]
        self._count += 1

    # ------------------------------------------------------------------
    # Probes used by GenericJoin
    # ------------------------------------------------------------------
    def children(self, prefix: Values) -> Optional[Dict[object, object]]:
        """Child map after following ``prefix``; None if the prefix dies."""
        node: object = self._root
        for v in prefix:
            if not isinstance(node, dict):
                return None
            node = node.get(v)
            if node is None:
                return None
        return node if isinstance(node, dict) else None

    def candidate_values(self, prefix: Values) -> Optional[List[object]]:
        """Values of the next attribute extending ``prefix`` (None = dead)."""
        node = self.children(prefix)
        if node is None:
            return None
        return list(node.keys())

    def candidate_count(self, prefix: Values) -> int:
        """Number of next-level values under ``prefix`` (0 if dead)."""
        node = self.children(prefix)
        return len(node) if node else 0

    def has_prefix(self, prefix: Values) -> bool:
        """True iff some tuple extends ``prefix``."""
        node: object = self._root
        for v in prefix:
            if isinstance(node, dict):
                node = node.get(v)
            else:
                return False
            if node is None:
                return False
        return True

    def payloads(self, values: Values) -> List[object]:
        """Payloads stored at a fully-bound tuple (empty list if absent)."""
        node: object = self._root
        for v in values:
            if not isinstance(node, (dict,)):
                return []
            node = node.get(v)  # type: ignore[union-attr]
            if node is None:
                return []
        return node if isinstance(node, list) else []
