"""An addressable binary min-heap with decrease-key and delete.

Section 3.2 of the paper stores the tuples of each group of ``X_u`` in a
min-heap keyed by the right endpoint ``t+`` of their valid intervals, and
the sweep needs to delete arbitrary tuples when their intervals expire.
Python's :mod:`heapq` cannot delete by handle, so this module provides a
classic array-backed binary heap with a position index.

Entries are ``(key, item)`` pairs; ``item`` must be hashable and unique
within the heap (re-inserting an existing item raises).
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, List, Optional, Tuple, TypeVar

K = TypeVar("K")
T = TypeVar("T", bound=Hashable)


class AddressableHeap(Generic[K, T]):
    """Binary min-heap addressable by item."""

    __slots__ = ("_data", "_pos")

    def __init__(self) -> None:
        self._data: List[Tuple[K, T]] = []
        self._pos: Dict[T, int] = {}

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __contains__(self, item: T) -> bool:
        return item in self._pos

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def push(self, key: K, item: T) -> None:
        """Insert ``item`` with priority ``key``; O(log n)."""
        if item in self._pos:
            raise KeyError(f"item {item!r} already in heap")
        self._data.append((key, item))
        self._pos[item] = len(self._data) - 1
        self._sift_up(len(self._data) - 1)

    def peek(self) -> Tuple[K, T]:
        """Smallest ``(key, item)`` without removing it; O(1)."""
        if not self._data:
            raise IndexError("peek from empty heap")
        return self._data[0]

    def pop(self) -> Tuple[K, T]:
        """Remove and return the smallest ``(key, item)``; O(log n)."""
        if not self._data:
            raise IndexError("pop from empty heap")
        top = self._data[0]
        self._remove_at(0)
        return top

    def remove(self, item: T) -> K:
        """Delete ``item`` by handle, returning its key; O(log n)."""
        idx = self._pos.get(item)
        if idx is None:
            raise KeyError(f"item {item!r} not in heap")
        key = self._data[idx][0]
        self._remove_at(idx)
        return key

    def update_key(self, item: T, key: K) -> None:
        """Change ``item``'s priority (increase or decrease); O(log n)."""
        idx = self._pos.get(item)
        if idx is None:
            raise KeyError(f"item {item!r} not in heap")
        old = self._data[idx][0]
        self._data[idx] = (key, item)
        if key < old:  # type: ignore[operator]
            self._sift_up(idx)
        else:
            self._sift_down(idx)

    def key_of(self, item: T) -> K:
        """Current priority of ``item``; O(1)."""
        idx = self._pos.get(item)
        if idx is None:
            raise KeyError(f"item {item!r} not in heap")
        return self._data[idx][0]

    def min_key(self) -> Optional[K]:
        """Smallest key, or ``None`` when empty; O(1)."""
        return self._data[0][0] if self._data else None

    def items(self) -> List[Tuple[K, T]]:
        """All entries in heap (not sorted) order."""
        return list(self._data)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _remove_at(self, idx: int) -> None:
        last = len(self._data) - 1
        item = self._data[idx][1]
        if idx != last:
            self._data[idx] = self._data[last]
            self._pos[self._data[idx][1]] = idx
        self._data.pop()
        del self._pos[item]
        if idx < len(self._data):
            self._sift_down(idx)
            self._sift_up(idx)

    def _sift_up(self, idx: int) -> None:
        data = self._data
        entry = data[idx]
        while idx > 0:
            parent = (idx - 1) >> 1
            if data[parent][0] <= entry[0]:  # type: ignore[operator]
                break
            data[idx] = data[parent]
            self._pos[data[idx][1]] = idx
            idx = parent
        data[idx] = entry
        self._pos[entry[1]] = idx

    def _sift_down(self, idx: int) -> None:
        data = self._data
        n = len(data)
        entry = data[idx]
        while True:
            child = 2 * idx + 1
            if child >= n:
                break
            right = child + 1
            if right < n and data[right][0] < data[child][0]:  # type: ignore[operator]
                child = right
            if entry[0] <= data[child][0]:  # type: ignore[operator]
                break
            data[idx] = data[child]
            self._pos[data[idx][1]] = idx
            idx = child
        data[idx] = entry
        self._pos[entry[1]] = idx

    def check_invariant(self) -> bool:
        """Heap-order + index consistency check (for tests)."""
        for i in range(1, len(self._data)):
            parent = (i - 1) >> 1
            if self._data[parent][0] > self._data[i][0]:  # type: ignore[operator]
                return False
        for item, idx in self._pos.items():
            if self._data[idx][1] != item:
                return False
        return len(self._pos) == len(self._data)
