"""Interval trees: stabbing and overlap queries over interval collections.

Section 4.2 stores each group of ``R_1``/``R_3`` tuples "in an interval
tree by their validity intervals" so the HYBRID-INTERVAL algorithm can
find, for a probe interval, exactly the stored intervals overlapping it in
``O(log n + k)``.

Two structures are provided:

* :class:`StaticIntervalTree` — a classic centered interval tree built once
  over a list of ``(interval, payload)`` items; supports stabbing queries
  and overlap queries. Used when a group is built en bloc.
* :class:`DynamicIntervalIndex` — an insert/delete-capable index based on a
  sorted list of (lo, hi) with an augmented max-hi skip structure realized
  as buckets; simpler than a rebalancing tree, with O(√n) updates and
  O(√n + k) queries — plenty for the group sizes the algorithms see, and
  far faster in practice than a pointer-based pure-Python AVL tree.
"""

from __future__ import annotations

import math
from typing import Generic, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from ..core.interval import Interval, Number, endpoint_eq

P = TypeVar("P")
Item = Tuple[Interval, P]


class StaticIntervalTree(Generic[P]):
    """Centered interval tree over a fixed collection of items.

    Build: O(n log n). Overlap query: O(log n + k). The tree recursively
    picks the median endpoint as a center; intervals containing the center
    stay at the node (sorted by lo ascending and hi descending), the rest
    split into left/right subtrees.
    """

    __slots__ = ("_center", "_by_lo", "_by_hi", "_left", "_right", "_size")

    def __init__(self, items: Sequence[Item]) -> None:
        self._size = len(items)
        if not items:
            self._center = None
            self._by_lo: List[Item] = []
            self._by_hi: List[Item] = []
            self._left: Optional[StaticIntervalTree[P]] = None
            self._right: Optional[StaticIntervalTree[P]] = None
            return
        endpoints: List[Number] = []
        for iv, _ in items:
            endpoints.append(iv.lo)
            endpoints.append(iv.hi)
        endpoints.sort()
        center = endpoints[len(endpoints) // 2]
        here: List[Item] = []
        left: List[Item] = []
        right: List[Item] = []
        for item in items:
            iv = item[0]
            if iv.hi < center:
                left.append(item)
            elif iv.lo > center:
                right.append(item)
            else:
                here.append(item)
        self._center = center
        self._by_lo = sorted(here, key=lambda it: it[0].lo)
        self._by_hi = sorted(here, key=lambda it: -it[0].hi)
        self._left = StaticIntervalTree(left) if left else None
        self._right = StaticIntervalTree(right) if right else None

    def __len__(self) -> int:
        return self._size

    def stab(self, t: Number) -> List[Item]:
        """All items whose interval contains instant ``t``."""
        out: List[Item] = []
        self._stab(t, out)
        return out

    def _stab(self, t: Number, out: List[Item]) -> None:
        if self._center is None:
            return
        if t < self._center:
            for item in self._by_lo:
                if item[0].lo > t:
                    break
                out.append(item)
            if self._left is not None:
                self._left._stab(t, out)
        elif t > self._center:
            for item in self._by_hi:
                if item[0].hi < t:
                    break
                out.append(item)
            if self._right is not None:
                self._right._stab(t, out)
        else:
            out.extend(self._by_lo)

    def overlapping(self, probe: Interval) -> List[Item]:
        """All items whose interval intersects ``probe``."""
        out: List[Item] = []
        self._overlap(probe, out)
        return out

    def _overlap(self, probe: Interval, out: List[Item]) -> None:
        if self._center is None:
            return
        if probe.hi < self._center:
            # Node intervals all contain center > probe.hi; they overlap
            # probe iff their lo <= probe.hi.
            for item in self._by_lo:
                if item[0].lo > probe.hi:
                    break
                out.append(item)
            if self._left is not None:
                self._left._overlap(probe, out)
        elif probe.lo > self._center:
            for item in self._by_hi:
                if item[0].hi < probe.lo:
                    break
                out.append(item)
            if self._right is not None:
                self._right._overlap(probe, out)
        else:
            # Probe spans the center: every node interval overlaps.
            out.extend(self._by_lo)
            if self._left is not None:
                self._left._overlap(probe, out)
            if self._right is not None:
                self._right._overlap(probe, out)


class DynamicIntervalIndex(Generic[P]):
    """Insert/delete interval index with bucketed sorted storage.

    Items are kept in buckets sorted by ``lo``; each bucket tracks the max
    ``hi`` it contains, so an overlap query skips whole buckets that end
    before the probe starts and stops at the first bucket that starts after
    the probe ends. Bucket size is rebalanced to ~2·√n on demand.
    """

    __slots__ = ("_buckets", "_maxhi", "_size", "_pending_rebuild")

    def __init__(self, items: Iterable[Item] = ()) -> None:
        self._buckets: List[List[Item]] = []
        self._maxhi: List[Number] = []
        self._size = 0
        self._pending_rebuild = False
        initial = sorted(items, key=lambda it: (it[0].lo, it[0].hi))
        if initial:
            self._bulk_load(initial)

    def _bulk_load(self, items: List[Item]) -> None:
        self._size = len(items)
        per = max(8, int(2 * math.sqrt(self._size)))
        self._buckets = [items[i : i + per] for i in range(0, len(items), per)]
        self._maxhi = [max(it[0].hi for it in b) for b in self._buckets]

    def __len__(self) -> int:
        return self._size

    def _locate_bucket(self, lo: Number) -> int:
        """Index of the bucket an interval starting at ``lo`` belongs to."""
        left, right = 0, len(self._buckets)
        while left < right:
            mid = (left + right) // 2
            if self._buckets[mid][0][0].lo <= lo:
                left = mid + 1
            else:
                right = mid
        return max(0, left - 1)

    def insert(self, interval: Interval, payload: P) -> None:
        """Insert an item; amortized O(√n)."""
        item = (interval, payload)
        if not self._buckets:
            self._buckets = [[item]]
            self._maxhi = [interval.hi]
            self._size = 1
            return
        bi = self._locate_bucket(interval.lo)
        bucket = self._buckets[bi]
        # Insertion position inside the bucket (sorted by lo, then hi).
        key = (interval.lo, interval.hi)
        pos = 0
        for pos, existing in enumerate(bucket):  # small bucket: linear is fine
            if (existing[0].lo, existing[0].hi) >= key:
                break
        else:
            pos = len(bucket)
        bucket.insert(pos, item)
        if interval.hi > self._maxhi[bi]:
            self._maxhi[bi] = interval.hi
        self._size += 1
        limit = max(16, int(4 * math.sqrt(self._size)))
        if len(bucket) > limit:
            self._split_bucket(bi)

    def _split_bucket(self, bi: int) -> None:
        bucket = self._buckets[bi]
        mid = len(bucket) // 2
        left, right = bucket[:mid], bucket[mid:]
        self._buckets[bi : bi + 1] = [left, right]
        self._maxhi[bi : bi + 1] = [
            max(it[0].hi for it in left),
            max(it[0].hi for it in right),
        ]

    def remove(self, interval: Interval, payload: P) -> None:
        """Delete an exact (interval, payload) item; KeyError if absent."""
        if self._buckets:
            bi = self._locate_bucket(interval.lo)
            # The item could sit in this bucket or (rarely, after deletions
            # emptied prefixes) a neighbour; scan outward.
            for idx in self._scan_order(bi):
                bucket = self._buckets[idx]
                if bucket and bucket[0][0].lo > interval.lo:
                    break
                try:
                    bucket.remove((interval, payload))
                except ValueError:
                    continue
                self._size -= 1
                if not bucket:
                    del self._buckets[idx]
                    del self._maxhi[idx]
                elif endpoint_eq(self._maxhi[idx], interval.hi):
                    # The cached bucket max is a verbatim copy of some
                    # stored endpoint, so identity (not tolerance) is the
                    # right test for "did the max just leave?".
                    self._maxhi[idx] = max(it[0].hi for it in bucket)
                return
        raise KeyError(f"({interval!r}, {payload!r}) not in index")

    def _scan_order(self, bi: int) -> Iterator[int]:
        yield bi
        for idx in range(bi + 1, len(self._buckets)):
            yield idx

    def overlapping(self, probe: Interval) -> List[Item]:
        """All stored items whose interval intersects ``probe``."""
        out: List[Item] = []
        for bi, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            if bucket[0][0].lo > probe.hi:
                break
            if self._maxhi[bi] < probe.lo:
                continue
            for interval, payload in bucket:
                if interval.lo > probe.hi:
                    break
                if interval.hi >= probe.lo:
                    out.append((interval, payload))
        return out

    def stab(self, t: Number) -> List[Item]:
        """All stored items containing instant ``t``."""
        return self.overlapping(Interval(t, t))

    def items(self) -> List[Item]:
        """All items, sorted by (lo, hi)."""
        out: List[Item] = []
        for bucket in self._buckets:
            out.extend(bucket)
        return out
