"""The ``repro-lint`` rule engine: files, suppressions, baseline, runner.

The engine is rule-agnostic: a :class:`Rule` owns an id, a severity, a
human description, a fix hint, a *scope* predicate over logical paths and
a ``check(SourceFile)`` method producing :class:`Finding` objects. The
domain rules live in :mod:`repro.analysis.rules`; the engine only knows
how to parse files, route them through rules, apply inline suppressions
and subtract the committed baseline.

Logical vs. filesystem paths
----------------------------
Every :class:`SourceFile` carries a *logical* path (forward slashes,
relative style) used by scope predicates and baseline matching. Tests
lint in-memory snippets under invented logical paths such as
``src/repro/algorithms/fixture.py`` so path-scoped rules fire without a
real tree on disk.

Suppressions
------------
``# repro-lint: disable=<rule>[,<rule>...]`` on a line silences those
rules (or ``all``) for findings *on that physical line*; when the line
is the first line of a multi-line statement (or a decorator line of a
``def``/``class``), the directive covers the statement's whole
``lineno..end_lineno`` span. ``# repro-lint: disable-file=<rule>[,...]``
anywhere in the file silences them for the whole file. Suppressions are
meant for findings
whose justification reads best next to the code; repo-wide grandfathered
findings belong in the JSON baseline, which keeps a justification string
per entry.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Default baseline filename, looked up in the current directory by the CLI.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_MARKER = "# repro-lint:"

SEVERITIES = ("error", "warning")


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One lint finding, addressable by ``(rule, path, line)``."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    hint: str = ""

    @property
    def fingerprint(self) -> Tuple[str, str, int]:
        return (self.rule, normalize_path(self.path), self.line)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": normalize_path(self.path),
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Finding":
        return Finding(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
            hint=str(data.get("hint", "")),
        )


def suppressed_in(data: Dict[str, object], rule_id: str, line: int) -> bool:
    """:meth:`SourceFile.is_suppressed` over cached suppression tables."""
    file_disables = data.get("file", [])
    if rule_id in file_disables or "all" in file_disables:
        return True
    disabled = data.get("lines", {}).get(str(line), ())  # type: ignore[union-attr]
    return rule_id in disabled or "all" in disabled


def normalize_path(path: str) -> str:
    """Forward slashes, no leading ``./`` — the baseline/scope spelling."""
    out = path.replace(os.sep, "/").replace("\\", "/")
    while out.startswith("./"):
        out = out[2:]
    return out


def path_segments(logical: str) -> Tuple[str, ...]:
    """Split a logical path into segments for scope predicates."""
    return tuple(s for s in normalize_path(logical).split("/") if s)


# ----------------------------------------------------------------------
# Source files
# ----------------------------------------------------------------------
class SourceFile:
    """A parsed module plus everything rules need: AST, lines, parents.

    ``fs_path`` is the real on-disk location (``None`` for in-memory
    snippets); ``logical`` is the path rules and the baseline see. Parent
    links are attached to every AST node as ``_repro_parent`` so rules
    can look outward (e.g. "is this call a ``with`` item?").
    """

    def __init__(
        self,
        source: str,
        logical: str,
        fs_path: Optional[str] = None,
    ) -> None:
        self.source = source
        self.logical = normalize_path(logical)
        self.fs_path = fs_path
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.logical)
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child._repro_parent = parent  # type: ignore[attr-defined]
        self._line_disables: Dict[int, Set[str]] = {}
        self._file_disables: Set[str] = set()
        self._parse_suppressions()

    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            pos = text.find(_MARKER)
            if pos < 0:
                continue
            directive = text[pos + len(_MARKER):].strip()
            if directive.startswith("disable-file="):
                names = directive[len("disable-file="):]
                self._file_disables.update(
                    n.strip() for n in names.split(",") if n.strip()
                )
            elif directive.startswith("disable="):
                names = directive[len("disable="):]
                self._line_disables.setdefault(lineno, set()).update(
                    n.strip() for n in names.split(",") if n.strip()
                )
        self._extend_spans()

    def _extend_spans(self) -> None:
        """Grow first-line/decorator-line directives to statement spans."""
        if not self._line_disables:
            return
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            if end <= node.lineno:
                continue
            directive_lines = {node.lineno}
            for deco in getattr(node, "decorator_list", None) or []:
                directive_lines.add(deco.lineno)
            rules: Set[str] = set()
            for dline in directive_lines:
                rules |= self._line_disables.get(dline, set())
            if not rules:
                continue
            for line in range(node.lineno, end + 1):
                self._line_disables.setdefault(line, set()).update(rules)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_disables or "all" in self._file_disables:
            return True
        disabled = self._line_disables.get(line, ())
        return rule_id in disabled or "all" in disabled

    def suppression_data(self) -> Dict[str, object]:
        """JSON-serializable suppression tables (for the analysis cache)."""
        return {
            "file": sorted(self._file_disables),
            "lines": {str(k): sorted(v) for k, v in self._line_disables.items()},
        }

    # ------------------------------------------------------------------
    def segments(self) -> Tuple[str, ...]:
        return path_segments(self.logical)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` for ``rule``."""
        return Finding(
            rule=rule.id,
            path=self.logical,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=rule.severity,
            hint=rule.hint if hint is None else hint,
        )


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class Rule:
    """Base class for lint rules (subclasses live in ``rules.py``).

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies` restricts a rule to part of the tree by logical path.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""

    def applies(self, logical: str) -> bool:
        return True

    def check(self, sf: SourceFile) -> List[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule over the whole-project model rather than one file.

    Project rules never see an AST directly: they consume the
    :class:`~repro.analysis.project.ProjectModel` built from per-file
    summaries, which is what lets the incremental cache replay them on a
    warm run without re-parsing anything. Their findings carry normal
    paths/lines, so inline suppressions and the baseline apply the same
    way as for node rules. ``applies`` is consulted per *finding* path
    (the model always spans every scanned file).
    """

    def check(self, sf: SourceFile) -> List[Finding]:
        return []

    def check_project(self, project) -> List[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, with the reason it is tolerated."""

    rule: str
    path: str
    line: int
    justification: str = ""

    @property
    def fingerprint(self) -> Tuple[str, str, int]:
        return (self.rule, normalize_path(self.path), self.line)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": normalize_path(self.path),
            "line": self.line,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: List[BaselineEntry] = field(default_factory=list)

    @staticmethod
    def load(path: str) -> "Baseline":
        with open(path, "r") as handle:
            data = json.load(handle)
        entries = [
            BaselineEntry(
                rule=e["rule"],
                path=e["path"],
                line=int(e["line"]),
                justification=e.get("justification", ""),
            )
            for e in data.get("entries", [])
        ]
        return Baseline(entries)

    def save(self, path: str) -> None:
        data = {
            "version": 1,
            "comment": (
                "Grandfathered repro-lint findings. Remove entries as the "
                "underlying findings are fixed; add entries only with a "
                "justification."
            ),
            "entries": [e.to_dict() for e in self.entries],
        }
        with open(path, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=False)
            handle.write("\n")

    def fingerprints(self) -> Set[Tuple[str, str, int]]:
        return {e.fingerprint for e in self.entries}

    @staticmethod
    def from_findings(
        findings: Iterable[Finding],
        justification: str = "grandfathered by --write-baseline",
    ) -> "Baseline":
        return Baseline(
            [
                BaselineEntry(
                    rule=f.rule,
                    path=normalize_path(f.path),
                    line=f.line,
                    justification=justification,
                )
                for f in findings
            ]
        )


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding]  # actionable: neither suppressed nor baselined
    baselined: List[Finding]
    suppressed: int
    stale_baseline: List[BaselineEntry]
    files_scanned: int
    files_reparsed: int = 0  # cache misses (parsed + analyzed this run)
    files_cached: int = 0  # cache hits (replayed from .repro-lint-cache/)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_scanned": self.files_scanned,
            "files_reparsed": self.files_reparsed,
            "files_cached": self.files_cached,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": self.suppressed,
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "exit_code": self.exit_code,
        }


def _iter_python_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        yield path
        return
    for root, dirs, files in os.walk(path):
        dirs[:] = sorted(
            d
            for d in dirs
            if d != "__pycache__" and not d.startswith(".") and not d.endswith(".egg-info")
        )
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def _syntax_error_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="syntax-error",
        path=normalize_path(path),
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"file does not parse: {exc.msg}",
        severity="error",
        hint="repro-lint needs a parseable module",
    )


def _lint_one(sf: SourceFile, rules: Sequence[Rule]) -> Tuple[List[Finding], int]:
    """Findings for one file plus the number suppressed inline."""
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies(sf.logical):
            continue
        for finding in rule.check(sf):
            if sf.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_source(
    source: str,
    logical: str,
    rules: Sequence[Rule],
) -> List[Finding]:
    """Lint one in-memory snippet under a logical path (test entry point)."""
    try:
        sf = SourceFile(source, logical)
    except SyntaxError as exc:
        return [_syntax_error_finding(logical, exc)]
    findings, _ = _lint_one(sf, rules)
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def _split_rules(rules: Sequence[Rule]) -> Tuple[List[Rule], List["ProjectRule"]]:
    node_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return node_rules, project_rules


def _raw_node_findings(sf: SourceFile, node_rules: Sequence[Rule]) -> List[Finding]:
    """Per-file node-rule findings *before* suppression (the cached form)."""
    findings: List[Finding] = []
    for rule in node_rules:
        if rule.applies(sf.logical):
            findings.extend(rule.check(sf))
    return findings


def _apply_suppressions(
    raw: Iterable[Finding],
    tables: Dict[str, Dict[str, object]],
) -> Tuple[List[Finding], int]:
    findings: List[Finding] = []
    suppressed = 0
    for f in raw:
        table = tables.get(normalize_path(f.path))
        if table is not None and suppressed_in(table, f.rule, f.line):
            suppressed += 1
        else:
            findings.append(f)
    return findings, suppressed


def _fold_baseline(
    findings: List[Finding],
    baseline: Optional[Baseline],
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    known = baseline.fingerprints() if baseline is not None else set()
    actionable = [f for f in findings if f.fingerprint not in known]
    grandfathered = [f for f in findings if f.fingerprint in known]
    seen = {f.fingerprint for f in findings}
    stale = (
        [e for e in baseline.entries if e.fingerprint not in seen]
        if baseline is not None
        else []
    )
    return actionable, grandfathered, stale


def run_lint(
    paths: Sequence[str],
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
    cache=None,
    design_path: Optional[str] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and fold in the baseline.

    With a :class:`~repro.analysis.cache.AnalysisCache`, unchanged files
    replay their node findings, summary and suppression tables from the
    cache instead of being re-parsed; project rules always run, but only
    over summaries, so a fully-warm run parses nothing. ``design_path``
    names the design document the glossary rule cross-checks (skipped
    when missing).
    """
    from .cache import rules_salt
    from .project import FileSummary, ProjectModel, summarize_file

    node_rules, project_rules = _split_rules(rules)
    salt = rules_salt([r.id for r in node_rules])
    raw: List[Finding] = []
    tables: Dict[str, Dict[str, object]] = {}
    summaries: Dict[str, FileSummary] = {}
    files_scanned = files_reparsed = files_cached = 0

    for path in paths:
        for fs_path in _iter_python_files(path):
            files_scanned += 1
            logical = normalize_path(fs_path)
            with open(fs_path, "r") as handle:
                source = handle.read()
            digest = cache.digest(source, salt) if cache is not None else None
            entry = cache.lookup(logical, digest) if cache is not None else None
            if entry is not None:
                files_cached += 1
                raw.extend(Finding.from_dict(d) for d in entry["findings"])
                summaries[logical] = FileSummary.from_dict(entry["summary"])
                tables[logical] = entry["suppress"]
                continue
            files_reparsed += 1
            try:
                sf = SourceFile(source, logical=fs_path, fs_path=fs_path)
            except SyntaxError as exc:
                raw.append(_syntax_error_finding(fs_path, exc))
                continue
            file_raw = _raw_node_findings(sf, node_rules)
            summaries[logical] = summarize_file(sf)
            tables[logical] = sf.suppression_data()
            raw.extend(file_raw)
            if cache is not None:
                cache.store(
                    logical,
                    digest,
                    [f.to_dict() for f in file_raw],
                    summaries[logical].to_dict(),
                    tables[logical],
                )

    if project_rules:
        design_text = None
        if design_path is not None and os.path.exists(design_path):
            with open(design_path, "r") as handle:
                design_text = handle.read()
        project = ProjectModel(
            summaries,
            design_text=design_text,
            design_path=normalize_path(design_path or "DESIGN.md"),
        )
        for rule in project_rules:
            raw.extend(rule.check_project(project))

    if cache is not None:
        cache.save()

    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    findings, suppressed = _apply_suppressions(raw, tables)
    actionable, grandfathered, stale = _fold_baseline(findings, baseline)
    return LintReport(
        findings=actionable,
        baselined=grandfathered,
        suppressed=suppressed,
        stale_baseline=stale,
        files_scanned=files_scanned,
        files_reparsed=files_reparsed,
        files_cached=files_cached,
    )


def lint_project(
    sources: Dict[str, str],
    rules: Sequence[Rule],
    design_text: Optional[str] = None,
    design_path: str = "DESIGN.md",
) -> List[Finding]:
    """Lint an in-memory multi-file project (flow-rule test entry point).

    ``sources`` maps logical paths to module source; node and project
    rules both run, inline suppressions apply, no baseline is involved.
    """
    from .project import FileSummary, ProjectModel, summarize_file

    node_rules, project_rules = _split_rules(rules)
    raw: List[Finding] = []
    tables: Dict[str, Dict[str, object]] = {}
    summaries: Dict[str, FileSummary] = {}
    for logical, source in sorted(sources.items()):
        try:
            sf = SourceFile(source, logical)
        except SyntaxError as exc:
            raw.append(_syntax_error_finding(logical, exc))
            continue
        raw.extend(_raw_node_findings(sf, node_rules))
        summaries[sf.logical] = summarize_file(sf)
        tables[sf.logical] = sf.suppression_data()
    project = ProjectModel(
        summaries, design_text=design_text, design_path=design_path
    )
    for rule in project_rules:
        raw.extend(rule.check_project(project))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    findings, _ = _apply_suppressions(raw, tables)
    return findings
