"""The ``repro-lint`` rule engine: files, suppressions, baseline, runner.

The engine is rule-agnostic: a :class:`Rule` owns an id, a severity, a
human description, a fix hint, a *scope* predicate over logical paths and
a ``check(SourceFile)`` method producing :class:`Finding` objects. The
domain rules live in :mod:`repro.analysis.rules`; the engine only knows
how to parse files, route them through rules, apply inline suppressions
and subtract the committed baseline.

Logical vs. filesystem paths
----------------------------
Every :class:`SourceFile` carries a *logical* path (forward slashes,
relative style) used by scope predicates and baseline matching. Tests
lint in-memory snippets under invented logical paths such as
``src/repro/algorithms/fixture.py`` so path-scoped rules fire without a
real tree on disk.

Suppressions
------------
``# repro-lint: disable=<rule>[,<rule>...]`` on a line silences those
rules (or ``all``) for findings *on that physical line*;
``# repro-lint: disable-file=<rule>[,...]`` anywhere in the file
silences them for the whole file. Suppressions are meant for findings
whose justification reads best next to the code; repo-wide grandfathered
findings belong in the JSON baseline, which keeps a justification string
per entry.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Default baseline filename, looked up in the current directory by the CLI.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_MARKER = "# repro-lint:"

SEVERITIES = ("error", "warning")


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One lint finding, addressable by ``(rule, path, line)``."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    hint: str = ""

    @property
    def fingerprint(self) -> Tuple[str, str, int]:
        return (self.rule, normalize_path(self.path), self.line)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": normalize_path(self.path),
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }


def normalize_path(path: str) -> str:
    """Forward slashes, no leading ``./`` — the baseline/scope spelling."""
    out = path.replace(os.sep, "/").replace("\\", "/")
    while out.startswith("./"):
        out = out[2:]
    return out


def path_segments(logical: str) -> Tuple[str, ...]:
    """Split a logical path into segments for scope predicates."""
    return tuple(s for s in normalize_path(logical).split("/") if s)


# ----------------------------------------------------------------------
# Source files
# ----------------------------------------------------------------------
class SourceFile:
    """A parsed module plus everything rules need: AST, lines, parents.

    ``fs_path`` is the real on-disk location (``None`` for in-memory
    snippets); ``logical`` is the path rules and the baseline see. Parent
    links are attached to every AST node as ``_repro_parent`` so rules
    can look outward (e.g. "is this call a ``with`` item?").
    """

    def __init__(
        self,
        source: str,
        logical: str,
        fs_path: Optional[str] = None,
    ) -> None:
        self.source = source
        self.logical = normalize_path(logical)
        self.fs_path = fs_path
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.logical)
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child._repro_parent = parent  # type: ignore[attr-defined]
        self._line_disables: Dict[int, Set[str]] = {}
        self._file_disables: Set[str] = set()
        self._parse_suppressions()

    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            pos = text.find(_MARKER)
            if pos < 0:
                continue
            directive = text[pos + len(_MARKER):].strip()
            if directive.startswith("disable-file="):
                names = directive[len("disable-file="):]
                self._file_disables.update(
                    n.strip() for n in names.split(",") if n.strip()
                )
            elif directive.startswith("disable="):
                names = directive[len("disable="):]
                self._line_disables.setdefault(lineno, set()).update(
                    n.strip() for n in names.split(",") if n.strip()
                )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_disables or "all" in self._file_disables:
            return True
        disabled = self._line_disables.get(line, ())
        return rule_id in disabled or "all" in disabled

    # ------------------------------------------------------------------
    def segments(self) -> Tuple[str, ...]:
        return path_segments(self.logical)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` for ``rule``."""
        return Finding(
            rule=rule.id,
            path=self.logical,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=rule.severity,
            hint=rule.hint if hint is None else hint,
        )


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class Rule:
    """Base class for lint rules (subclasses live in ``rules.py``).

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies` restricts a rule to part of the tree by logical path.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""

    def applies(self, logical: str) -> bool:
        return True

    def check(self, sf: SourceFile) -> List[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, with the reason it is tolerated."""

    rule: str
    path: str
    line: int
    justification: str = ""

    @property
    def fingerprint(self) -> Tuple[str, str, int]:
        return (self.rule, normalize_path(self.path), self.line)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": normalize_path(self.path),
            "line": self.line,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: List[BaselineEntry] = field(default_factory=list)

    @staticmethod
    def load(path: str) -> "Baseline":
        with open(path, "r") as handle:
            data = json.load(handle)
        entries = [
            BaselineEntry(
                rule=e["rule"],
                path=e["path"],
                line=int(e["line"]),
                justification=e.get("justification", ""),
            )
            for e in data.get("entries", [])
        ]
        return Baseline(entries)

    def save(self, path: str) -> None:
        data = {
            "version": 1,
            "comment": (
                "Grandfathered repro-lint findings. Remove entries as the "
                "underlying findings are fixed; add entries only with a "
                "justification."
            ),
            "entries": [e.to_dict() for e in self.entries],
        }
        with open(path, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=False)
            handle.write("\n")

    def fingerprints(self) -> Set[Tuple[str, str, int]]:
        return {e.fingerprint for e in self.entries}

    @staticmethod
    def from_findings(
        findings: Iterable[Finding],
        justification: str = "grandfathered by --write-baseline",
    ) -> "Baseline":
        return Baseline(
            [
                BaselineEntry(
                    rule=f.rule,
                    path=normalize_path(f.path),
                    line=f.line,
                    justification=justification,
                )
                for f in findings
            ]
        )


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding]  # actionable: neither suppressed nor baselined
    baselined: List[Finding]
    suppressed: int
    stale_baseline: List[BaselineEntry]
    files_scanned: int

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": self.suppressed,
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "exit_code": self.exit_code,
        }


def _iter_python_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        yield path
        return
    for root, dirs, files in os.walk(path):
        dirs[:] = sorted(
            d
            for d in dirs
            if d != "__pycache__" and not d.startswith(".") and not d.endswith(".egg-info")
        )
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def _syntax_error_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="syntax-error",
        path=normalize_path(path),
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"file does not parse: {exc.msg}",
        severity="error",
        hint="repro-lint needs a parseable module",
    )


def _lint_one(sf: SourceFile, rules: Sequence[Rule]) -> Tuple[List[Finding], int]:
    """Findings for one file plus the number suppressed inline."""
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies(sf.logical):
            continue
        for finding in rule.check(sf):
            if sf.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_source(
    source: str,
    logical: str,
    rules: Sequence[Rule],
) -> List[Finding]:
    """Lint one in-memory snippet under a logical path (test entry point)."""
    try:
        sf = SourceFile(source, logical)
    except SyntaxError as exc:
        return [_syntax_error_finding(logical, exc)]
    findings, _ = _lint_one(sf, rules)
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def run_lint(
    paths: Sequence[str],
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and fold in the baseline."""
    findings: List[Finding] = []
    suppressed = 0
    files_scanned = 0
    for path in paths:
        for fs_path in _iter_python_files(path):
            files_scanned += 1
            try:
                with open(fs_path, "r") as handle:
                    source = handle.read()
                sf = SourceFile(source, logical=fs_path, fs_path=fs_path)
            except SyntaxError as exc:
                findings.append(_syntax_error_finding(fs_path, exc))
                continue
            file_findings, file_suppressed = _lint_one(sf, rules)
            findings.extend(file_findings)
            suppressed += file_suppressed

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    known = baseline.fingerprints() if baseline is not None else set()
    actionable = [f for f in findings if f.fingerprint not in known]
    grandfathered = [f for f in findings if f.fingerprint in known]
    seen = {f.fingerprint for f in findings}
    stale = (
        [e for e in baseline.entries if e.fingerprint not in seen]
        if baseline is not None
        else []
    )
    return LintReport(
        findings=actionable,
        baselined=grandfathered,
        suppressed=suppressed,
        stale_baseline=stale,
        files_scanned=files_scanned,
    )
