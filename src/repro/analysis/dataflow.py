"""Worklist dataflow solving over :mod:`repro.analysis.cfg` graphs.

:func:`solve_forward` runs any :class:`Analysis` (a forward abstract
interpretation) to a fixpoint with the classic worklist algorithm, then
exposes per-statement *entry* states so rules can ask "what is known at
this exact line on every path reaching it?".

Two concrete lattices ship here:

* :class:`ReachingDefinitions` — for each variable, the set of
  assignment statements that may have produced its current value. The
  ownership rule uses it to chase a shard-result variable back to every
  expression that could flow into a merge sink.
* :class:`OptionalNoneLattice` — a three-point abstraction
  (``NONE < MAYBE > NONNONE``) of one variable's ``None``-ness, with
  branch refinement on ``x is None`` / ``x is not None`` / truthiness
  tests. The stats-threading rule uses it to flag only calls reachable
  while ``stats`` may hold a live telemetry object.

States must be immutable-ish values with structural ``==``; ``join``
must be commutative/associative/idempotent, or the worklist never
converges (the loop-with-join test pins convergence).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from .cfg import CFG, EdgeLabel


class Analysis:
    """A forward dataflow problem over one CFG."""

    def initial(self):
        """State at the function entry."""
        raise NotImplementedError

    def join(self, a, b):
        """Least upper bound of two states (path merge)."""
        raise NotImplementedError

    def transfer(self, stmt: ast.AST, state):
        """State after executing ``stmt`` in ``state``."""
        raise NotImplementedError

    def refine(self, label: EdgeLabel, state):
        """State after traversing an edge with ``label`` (default: no-op)."""
        return state


class Solution:
    """Fixpoint of one analysis: block entry states + per-stmt states."""

    def __init__(self, block_in: Dict[int, object], analysis: Analysis, cfg: CFG):
        self.block_in = block_in
        self._analysis = analysis
        self._cfg = cfg
        self._stmt_in: Dict[int, object] = {}
        for bid, block in cfg.blocks.items():
            state = block_in.get(bid)
            if state is None:
                continue  # unreachable block
            for stmt in block.stmts:
                self._stmt_in[id(stmt)] = state
                state = analysis.transfer(stmt, state)

    def before(self, stmt: ast.AST):
        """The state on entry to ``stmt``, or ``None`` if unreachable."""
        return self._stmt_in.get(id(stmt))


def solve_forward(cfg: CFG, analysis: Analysis, max_iterations: int = 10000) -> Solution:
    """Iterate to a fixpoint; raises ``RuntimeError`` on non-convergence.

    The bound is a safety valve for a broken lattice (a ``join`` that
    is not monotone); any real function converges in a handful of
    passes because block count bounds the lattice chain length.
    """
    block_in: Dict[int, object] = {cfg.entry: analysis.initial()}
    worklist: List[int] = [cfg.entry]
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                "dataflow worklist did not converge "
                f"(>{max_iterations} iterations): non-monotone lattice?"
            )
        bid = worklist.pop(0)
        state = block_in[bid]
        for stmt in cfg.blocks[bid].stmts:
            state = analysis.transfer(stmt, state)
        for dst, label in cfg.blocks[bid].succs:
            out = analysis.refine(label, state)
            prev = block_in.get(dst)
            merged = out if prev is None else analysis.join(prev, out)
            if merged != prev:
                block_in[dst] = merged
                if dst not in worklist:
                    worklist.append(dst)
    return Solution(block_in, analysis, cfg)


# ----------------------------------------------------------------------
# Assignment extraction (shared by lattices)
# ----------------------------------------------------------------------
def bound_names(stmt: ast.AST) -> List[Tuple[str, Optional[ast.AST]]]:
    """``(name, value_expr_or_None)`` pairs a statement (re)binds.

    Tuple unpacking loses the per-name expression (value ``None``), as
    do ``for`` targets, ``with ... as`` names, imports and ``def``s —
    the reaching-definitions lattice still records the binding site.
    """
    out: List[Tuple[str, Optional[ast.AST]]] = []

    def targets(node: ast.AST, value: Optional[ast.AST]) -> None:
        if isinstance(node, ast.Name):
            out.append((node.id, value))
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                targets(elt, None)
        elif isinstance(node, ast.Starred):
            targets(node.value, None)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets(target, stmt.value)
    elif isinstance(stmt, ast.AnnAssign):
        targets(stmt.target, stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        targets(stmt.target, None)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets(stmt.target, None)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets(item.optional_vars, None)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.append((stmt.name, None))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            out.append(((alias.asname or alias.name).split(".")[0], None))
    elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
        out.append((stmt.name, None))
    return out


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------
class ReachingDefinitions(Analysis):
    """Variable → frozenset of defining statements (by identity).

    A state maps each seen variable name to the set of ``id(stmt)`` of
    the assignments that may reach; :attr:`sites` maps those ids back to
    ``(stmt, value_expr)`` so clients can inspect the defining RHS.
    """

    def __init__(self, params: Iterable[str] = ()) -> None:
        self.params = tuple(params)
        self.sites: Dict[int, Tuple[ast.AST, Optional[ast.AST]]] = {}

    PARAM = -1  # sentinel site: defined by a function parameter

    def initial(self):
        return {name: frozenset([self.PARAM]) for name in self.params}

    def join(self, a, b):
        if a == b:
            return a
        merged = dict(a)
        for name, sites in b.items():
            merged[name] = merged.get(name, frozenset()) | sites
        return merged

    def transfer(self, stmt: ast.AST, state):
        bindings = bound_names(stmt)
        if not bindings:
            return state
        new = dict(state)
        for name, value in bindings:
            self.sites[id(stmt)] = (stmt, value)
            new[name] = frozenset([id(stmt)])
        return new

    def definitions(self, state, name: str) -> List[Tuple[ast.AST, Optional[ast.AST]]]:
        """The ``(stmt, value)`` pairs that may define ``name`` here."""
        out = []
        for site in sorted(state.get(name, frozenset())):
            if site == self.PARAM:
                out.append((None, None))
            else:
                out.append(self.sites[site])
        return out


# ----------------------------------------------------------------------
# Optional-None abstraction of a single variable
# ----------------------------------------------------------------------
NONE = "none"
NONNONE = "nonnone"
MAYBE = "maybe"


class OptionalNoneLattice(Analysis):
    """Tracks whether one variable (by name) may currently be ``None``.

    Assignment handling covers the idioms this codebase uses:
    ``x = None`` → NONE; ``x = Ctor(...)`` / literal → NONNONE;
    ``x = a if c else b`` → join of both arms; anything else → MAYBE.
    Branch refinement narrows on ``x is None`` / ``x is not None`` and
    on bare-``x`` truthiness tests (truthy ⇒ non-None; falsy tells us
    nothing: empty containers are falsy non-Nones).
    """

    def __init__(self, var: str, entry: str = MAYBE) -> None:
        self.var = var
        self.entry = entry

    def initial(self):
        return self.entry

    def join(self, a, b):
        return a if a == b else MAYBE

    # -- assignments ---------------------------------------------------
    def _value_state(self, value: Optional[ast.AST]) -> str:
        if value is None:
            return MAYBE
        if isinstance(value, ast.Constant):
            return NONE if value.value is None else NONNONE
        if isinstance(value, ast.IfExp):
            a = self._value_state(value.body)
            b = self._value_state(value.orelse)
            return a if a == b else MAYBE
        if isinstance(value, (ast.Call, ast.List, ast.Dict, ast.Set,
                              ast.Tuple, ast.ListComp, ast.DictComp,
                              ast.SetComp, ast.JoinedStr)):
            return NONNONE
        if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
            # `x = y or Ctor()`: non-None iff the last operand is.
            return self._value_state(value.values[-1])
        if isinstance(value, ast.Name) and value.id == self.var:
            return MAYBE  # handled by refinement, not assignment
        return MAYBE

    def transfer(self, stmt: ast.AST, state):
        for name, value in bound_names(stmt):
            if name == self.var:
                state = self._value_state(value)
        return state

    # -- branch refinement --------------------------------------------
    def _refine_test(self, test: ast.AST, state: str, branch: bool) -> str:
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And) and branch:
            for operand in test.values:
                state = self._refine_test(operand, state, True)
            return state
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or) and not branch:
            for operand in test.values:
                state = self._refine_test(operand, state, False)
            return state
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._refine_test(test.operand, state, not branch)
        if isinstance(test, ast.Name) and test.id == self.var:
            return NONNONE if branch else state  # falsy ≠ None in general
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, right = test.left, test.comparators[0]
            is_var = (isinstance(left, ast.Name) and left.id == self.var) or (
                isinstance(right, ast.Name) and right.id == self.var
            )
            other = right if isinstance(left, ast.Name) and left.id == self.var else left
            if is_var and isinstance(other, ast.Constant) and other.value is None:
                if isinstance(test.ops[0], ast.Is):
                    return NONE if branch else NONNONE
                if isinstance(test.ops[0], ast.IsNot):
                    return NONNONE if branch else NONE
        return state

    def refine(self, label: EdgeLabel, state):
        if label is None or label[0] == "loop-body":
            return state
        kind, test = label
        if isinstance(test, (ast.For, ast.AsyncFor)):
            return state  # loop exhaustion says nothing about the var
        return self._refine_test(test, state, kind == "true")
