"""CLI for ``repro-lint``: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — no actionable findings; 1 — at least one finding that is
neither suppressed inline nor covered by the baseline; 2 — usage error.

The baseline defaults to ``.repro-lint-baseline.json`` in the current
directory when present (the committed repo baseline); ``--no-baseline``
ignores it, ``--write-baseline`` regenerates it from the current
findings (grandfathering everything — edit the justifications!).

Incremental analysis is on by default: per-file results live under
``.repro-lint-cache/`` keyed by content hash, so a warm run over an
unchanged tree re-parses nothing (``--no-cache`` forces a full pass).
Reports go to stdout, or to ``--output FILE`` (any relative path is the
working directory — nothing is ever written into the source tree).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .cache import AnalysisCache, DEFAULT_CACHE_DIR
from .engine import (
    Baseline,
    DEFAULT_BASELINE_NAME,
    run_lint,
)
from .flow_rules import flow_rules
from .report import render_json, render_sarif, render_text
from .rules import default_rules


def all_rules():
    """Node rules plus project-level flow rules, in reporting order."""
    return list(default_rules()) + list(flow_rules())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: domain-invariant static analysis for this repo",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--output", "--out", dest="output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout (the CI artifact; "
        "relative paths resolve against the working directory)",
    )
    parser.add_argument(
        "--design", default="DESIGN.md", metavar="PATH",
        help="design document for the counter-glossary cross-check "
        "(default: DESIGN.md; skipped when missing)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental analysis cache (full re-parse)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"incremental cache location (default: {DEFAULT_CACHE_DIR})",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id:>26} [{rule.severity}] {rule.description}")
        return 0

    if args.select:
        wanted = {name.strip() for name in args.select.split(",") if name.strip()}
        known = {rule.id for rule in rules}
        unknown = sorted(wanted - known)
        if unknown:
            print(
                f"error: unknown rule(s) {unknown}; known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in wanted]

    baseline_path = args.baseline or DEFAULT_BASELINE_NAME
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if os.path.exists(baseline_path):
            baseline = Baseline.load(baseline_path)
        elif args.baseline is not None:
            print(f"error: baseline {baseline_path!r} not found", file=sys.stderr)
            return 2

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path(s): {missing}", file=sys.stderr)
        return 2

    cache = None if args.no_cache else AnalysisCache(args.cache_dir)
    report = run_lint(
        args.paths,
        rules=rules,
        baseline=baseline,
        cache=cache,
        design_path=args.design,
    )

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"wrote {len(report.findings)} entr(ies) to {baseline_path}; "
            "edit the justifications before committing"
        )
        return 0

    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report, rules)
    else:
        rendered = render_text(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print(
            f"repro-lint: {len(report.findings)} finding(s) "
            f"({len(report.baselined)} baselined); report written to {args.output}"
        )
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
