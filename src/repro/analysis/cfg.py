"""Intraprocedural control-flow graphs over ``ast`` function bodies.

:func:`build_cfg` turns one ``FunctionDef`` (or a bare statement list)
into a :class:`CFG` of basic blocks connected by *labeled* edges. The
graph is deliberately small-scale — it exists to make the flow rules in
:mod:`repro.analysis.flow_rules` path-sensitive, not to be a general
compiler IR — but it models everything those rules need:

* branches (``if``/``elif``/``else``) with ``("true", test)`` /
  ``("false", test)`` edge labels, so a dataflow lattice can refine its
  state per branch (e.g. ``stats is not None`` on the true edge);
* loops (``for``/``while``) with back edges, ``break``/``continue``
  targets, and a ``("loop-body", node)`` label on the header→body edge
  so analyses can reset per-iteration state;
* ``try``/``except``/``finally`` conservatively: every handler is
  reachable from both the start and the end of the protected body (an
  exception may fire before or after any definition inside it);
* early exits (``return``/``raise``) edge to the synthetic exit block.

Statements stay whole: a compound statement contributes its *header*
(the ``If``/``While``/``For``/``With``/``Try`` node itself) to the block
that evaluates its test/iterable, and its body statements to successor
blocks. Transfer functions therefore see ``ast.For`` once, at the point
its target is (re)bound.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

#: Edge labels: ("true"|"false", test_node), ("loop-body", loop_node),
#: or None for unconditional flow.
EdgeLabel = Optional[Tuple[str, ast.AST]]


class Block:
    """One basic block: a statement sequence with labeled out-edges."""

    __slots__ = ("id", "stmts", "succs", "preds")

    def __init__(self, bid: int) -> None:
        self.id = bid
        self.stmts: List[ast.stmt] = []
        self.succs: List[Tuple[int, EdgeLabel]] = []
        self.preds: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [getattr(s, "lineno", "?") for s in self.stmts]
        return f"Block({self.id}, lines={lines}, succs={[s for s, _ in self.succs]})"


class CFG:
    """A function's control-flow graph; ``entry``/``exit`` are block ids."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.entry = self._new_block().id
        self.exit = self._new_block().id

    # ------------------------------------------------------------------
    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks[block.id] = block
        return block

    def _edge(self, src: int, dst: int, label: EdgeLabel = None) -> None:
        self.blocks[src].succs.append((dst, label))
        self.blocks[dst].preds.append(src)

    # ------------------------------------------------------------------
    def block_of(self, stmt: ast.stmt) -> Optional[Block]:
        """The block holding ``stmt`` (identity match), or ``None``."""
        for block in self.blocks.values():
            for held in block.stmts:
                if held is stmt:
                    return block
        return None

    def shape(self) -> Dict[int, List[int]]:
        """``{block_id: sorted successor ids}`` — the golden-test view."""
        return {
            bid: sorted(dst for dst, _ in block.succs)
            for bid, block in sorted(self.blocks.items())
        }


class _LoopCtx:
    """break/continue targets for the innermost enclosing loop."""

    __slots__ = ("header", "after")

    def __init__(self, header: int, after: int) -> None:
        self.header = header
        self.after = after


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: List[_LoopCtx] = []

    # ------------------------------------------------------------------
    def build(self, body: List[ast.stmt]) -> CFG:
        cfg = self.cfg
        last = self._run(body, cfg.entry)
        if last is not None:
            cfg._edge(last, cfg.exit)
        return cfg

    # ------------------------------------------------------------------
    def _run(self, body: List[ast.stmt], current: Optional[int]) -> Optional[int]:
        """Thread ``body`` starting in block ``current``.

        Returns the open block at the end of the sequence, or ``None``
        when every path left (return/raise/break/continue).
        """
        for stmt in body:
            if current is None:
                # Unreachable trailing statements: park them in a fresh
                # orphan block so dataflow still sees their definitions
                # as dead rather than crashing.
                current = self.cfg._new_block().id
            current = self._stmt(stmt, current)
        return current

    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.stmt, current: int) -> Optional[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cfg.blocks[current].stmts.append(stmt)
            after = cfg._new_block()
            then_entry = cfg._new_block()
            cfg._edge(current, then_entry.id, ("true", stmt.test))
            then_exit = self._run(stmt.body, then_entry.id)
            if then_exit is not None:
                cfg._edge(then_exit, after.id)
            if stmt.orelse:
                else_entry = cfg._new_block()
                cfg._edge(current, else_entry.id, ("false", stmt.test))
                else_exit = self._run(stmt.orelse, else_entry.id)
                if else_exit is not None:
                    cfg._edge(else_exit, after.id)
            else:
                cfg._edge(current, after.id, ("false", stmt.test))
            return after.id if cfg.blocks[after.id].preds else None

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg._new_block()
            # The loop node lives in the header: its test/iterable (and,
            # for `for`, the target rebinding) happen once per iteration.
            header.stmts.append(stmt)
            cfg._edge(current, header.id)
            after = cfg._new_block()
            body_entry = cfg._new_block()
            test = stmt.test if isinstance(stmt, ast.While) else stmt
            cfg._edge(header.id, body_entry.id, ("loop-body", stmt))
            self.loops.append(_LoopCtx(header.id, after.id))
            body_exit = self._run(stmt.body, body_entry.id)
            self.loops.pop()
            if body_exit is not None:
                cfg._edge(body_exit, header.id)  # back edge
            if stmt.orelse:
                else_entry = cfg._new_block()
                cfg._edge(header.id, else_entry.id, ("false", test))
                else_exit = self._run(stmt.orelse, else_entry.id)
                if else_exit is not None:
                    cfg._edge(else_exit, after.id)
            else:
                cfg._edge(header.id, after.id, ("false", test))
            return after.id

        if isinstance(stmt, ast.Try):
            cfg.blocks[current].stmts.append(stmt)
            body_entry = cfg._new_block()
            cfg._edge(current, body_entry.id)
            after = cfg._new_block()
            body_exit = self._run(stmt.body, body_entry.id)
            else_exit = body_exit
            if stmt.orelse and body_exit is not None:
                else_entry = cfg._new_block()
                cfg._edge(body_exit, else_entry.id)
                else_exit = self._run(stmt.orelse, else_entry.id)
            if else_exit is not None:
                cfg._edge(else_exit, after.id)
            for handler in stmt.handlers:
                h_entry = cfg._new_block()
                if handler.name:
                    # The bound exception name is defined at entry; hand
                    # the handler node to transfer functions.
                    h_entry.stmts.append(handler)  # type: ignore[arg-type]
                # An exception may fire before or after any statement in
                # the protected body: edges from both ends approximate
                # every intermediate program point.
                cfg._edge(body_entry.id, h_entry.id)
                if body_exit is not None and body_exit != body_entry.id:
                    cfg._edge(body_exit, h_entry.id)
                h_exit = self._run(handler.body, h_entry.id)
                if h_exit is not None:
                    cfg._edge(h_exit, after.id)
            if stmt.finalbody:
                fin_entry = cfg._new_block()
                for pred in list(cfg.blocks[after.id].preds):
                    # Reroute after-edges through the finally block.
                    cfg.blocks[pred].succs = [
                        (fin_entry.id, lab) if dst == after.id else (dst, lab)
                        for dst, lab in cfg.blocks[pred].succs
                    ]
                    cfg.blocks[fin_entry.id].preds.append(pred)
                cfg.blocks[after.id].preds = []
                fin_exit = self._run(stmt.finalbody, fin_entry.id)
                if fin_exit is not None:
                    cfg._edge(fin_exit, after.id)
            return after.id if cfg.blocks[after.id].preds else None

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.blocks[current].stmts.append(stmt)
            body_entry = cfg._new_block()
            cfg._edge(current, body_entry.id)
            return self._run(stmt.body, body_entry.id)

        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[current].stmts.append(stmt)
            cfg._edge(current, cfg.exit)
            return None

        if isinstance(stmt, ast.Break):
            cfg.blocks[current].stmts.append(stmt)
            if self.loops:
                cfg._edge(current, self.loops[-1].after)
            else:
                cfg._edge(current, cfg.exit)
            return None

        if isinstance(stmt, ast.Continue):
            cfg.blocks[current].stmts.append(stmt)
            if self.loops:
                cfg._edge(current, self.loops[-1].header)
            else:
                cfg._edge(current, cfg.exit)
            return None

        # Simple statements — including nested FunctionDef/ClassDef,
        # which merely bind a name at this point.
        cfg.blocks[current].stmts.append(stmt)
        return current


def build_cfg(func_or_body) -> CFG:
    """Build a :class:`CFG` for a function node or a statement list."""
    if isinstance(func_or_body, (ast.FunctionDef, ast.AsyncFunctionDef)):
        body = func_or_body.body
    elif isinstance(func_or_body, ast.Module):
        body = func_or_body.body
    else:
        body = list(func_or_body)
    return _Builder().build(body)
