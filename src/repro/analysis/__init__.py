"""``repro.analysis`` — domain-invariant static analysis for this repo.

Two halves:

* **repro-lint** (:mod:`engine` + :mod:`rules`): an AST-based lint engine
  with a registry of domain rules that encode the structural conventions
  the paper's guarantees rest on — no bare ``assert`` in library code,
  spawn-safe worker payloads, deterministic iteration on result-producing
  paths, the ``stats=`` telemetry contract, paired tracer phases, the
  ``repro.core.errors`` taxonomy, no exact equality on computed interval
  endpoints, no mutable defaults. Run it as ``python -m repro.analysis``;
  CI gates on it (``make analyze``).

* **static plan verification** (:mod:`plans`): structural validation of
  :class:`~repro.nontemporal.ghd.GHD`,
  :class:`~repro.core.classification.AttributeTree` and
  :class:`~repro.core.planner.Plan` objects — bag coverage, running
  intersection, hierarchical attribute order, Theorem 12 width
  accounting. Hooked into ``planner.plan()`` under ``REPRO_VERIFY_PLANS``
  and into the Figure 6 tests.

Findings can be silenced inline (``# repro-lint: disable=<rule>``) or
grandfathered in the committed JSON baseline
(:data:`~repro.analysis.engine.DEFAULT_BASELINE_NAME`).
"""

from .engine import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    Finding,
    LintReport,
    Rule,
    SourceFile,
    lint_source,
    run_lint,
)
from .plans import (
    PlanVerificationError,
    check_attribute_tree,
    check_ghd,
    check_plan,
    verify_attribute_tree,
    verify_ghd,
    verify_plan,
)
from .report import render_json, render_text
from .rules import default_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "PlanVerificationError",
    "Rule",
    "SourceFile",
    "check_attribute_tree",
    "check_ghd",
    "check_plan",
    "default_rules",
    "lint_source",
    "render_json",
    "render_text",
    "run_lint",
    "verify_attribute_tree",
    "verify_ghd",
    "verify_plan",
]
