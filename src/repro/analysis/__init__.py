"""``repro.analysis`` — domain-invariant static analysis for this repo.

Two halves:

* **repro-lint** (:mod:`engine` + :mod:`rules`): an AST-based lint engine
  with a registry of domain rules that encode the structural conventions
  the paper's guarantees rest on — no bare ``assert`` in library code,
  spawn-safe worker payloads, deterministic iteration on result-producing
  paths, the ``stats=`` telemetry contract, paired tracer phases, the
  ``repro.core.errors`` taxonomy, no exact equality on computed interval
  endpoints, no mutable defaults. Run it as ``python -m repro.analysis``;
  CI gates on it (``make analyze``).

* **flow-aware analysis** (:mod:`cfg` + :mod:`dataflow` + :mod:`project`
  + :mod:`flow_rules`): an intraprocedural CFG/dataflow framework and a
  whole-project model feeding four interprocedural rules — the
  machine-checked counter glossary, spawn payload module-levelness,
  ownership-before-concat, and stats threading. Per-file summaries are
  cached under ``.repro-lint-cache/`` so warm runs re-parse nothing.

* **static plan verification** (:mod:`plans`): structural validation of
  :class:`~repro.nontemporal.ghd.GHD`,
  :class:`~repro.core.classification.AttributeTree` and
  :class:`~repro.core.planner.Plan` objects — bag coverage, running
  intersection, hierarchical attribute order, Theorem 12 width
  accounting. Hooked into ``planner.plan()`` under ``REPRO_VERIFY_PLANS``
  and into the Figure 6 tests.

Findings can be silenced inline (``# repro-lint: disable=<rule>``) or
grandfathered in the committed JSON baseline
(:data:`~repro.analysis.engine.DEFAULT_BASELINE_NAME`).
"""

from .cache import AnalysisCache
from .engine import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    Finding,
    LintReport,
    ProjectRule,
    Rule,
    SourceFile,
    lint_project,
    lint_source,
    run_lint,
)
from .flow_rules import flow_rules
from .plans import (
    PlanVerificationError,
    check_attribute_tree,
    check_ghd,
    check_plan,
    verify_attribute_tree,
    verify_ghd,
    verify_plan,
)
from .report import render_json, render_sarif, render_text
from .rules import default_rules

__all__ = [
    "AnalysisCache",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "PlanVerificationError",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "check_attribute_tree",
    "check_ghd",
    "check_plan",
    "default_rules",
    "flow_rules",
    "lint_project",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "verify_attribute_tree",
    "verify_ghd",
    "verify_plan",
]
