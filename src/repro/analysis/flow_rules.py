"""Flow-sensitive and interprocedural lint rules (the DESIGN §7 set).

These are :class:`~repro.analysis.engine.ProjectRule` subclasses: instead
of one file's AST they see a :class:`~repro.analysis.project.ProjectModel`
built from per-file summaries, so they can check invariants that span
modules — exactly the protocol contracts the node rules cannot reach:

* :class:`CounterGlossaryDrift` — every counter/timer/note name emitted
  anywhere must appear in the DESIGN.md counter glossary, and every
  glossary row must still be emitted somewhere (drift in either
  direction fails the gate);
* :class:`SpawnShipsModuleLevel` — anything reaching a pool dispatch
  (payload callable *or* task-object constructor) must resolve, through
  imports and re-exports, to a module-level ``def``/``class`` — lambdas,
  closures and bound methods cannot cross the spawn pickle boundary;
* :class:`OwnershipBeforeConcat` — shard-result rows must pass the
  right-endpoint ownership filter on every path before the exactly-once
  merge concatenation (PR-2's no-dedup guarantee);
* :class:`StatsThreading` — a function holding a possibly-live ``stats``
  must forward it to every project callee that takes ``stats=``, so no
  counters silently vanish mid-pipeline.
"""

from __future__ import annotations

import re
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import Finding, ProjectRule
from .project import FileSummary, ProjectModel

__all__ = [
    "CounterGlossaryDrift",
    "SpawnShipsModuleLevel",
    "OwnershipBeforeConcat",
    "StatsThreading",
    "flow_rules",
    "parse_glossary",
]


def _finding(rule: ProjectRule, path: str, line: int, col: int, message: str) -> Finding:
    return Finding(
        rule=rule.id,
        path=path,
        line=line,
        col=col,
        message=message,
        severity=rule.severity,
        hint=rule.hint,
    )


# ----------------------------------------------------------------------
# counter-glossary-drift
# ----------------------------------------------------------------------
_GLOSSARY_HEADING = "Counter glossary"
_CELL_SPLIT = re.compile(r"(?<!\\)\|")  # glossary cells may contain \|
_BACKTICKED = re.compile(r"`([^`]+)`")


def parse_glossary(design_text: str) -> List[Tuple[str, int]]:
    """``(pattern, design_line)`` pairs from the DESIGN.md glossary table.

    Patterns come from backticked spans in each row's first cell (one row
    documents several related names, ``/``-separated); the ``NN`` shard
    placeholder becomes a ``*`` wildcard to line up with the f-string
    harvest on the emission side.
    """
    out: List[Tuple[str, int]] = []
    in_table = False
    seen_heading = False
    for lineno, line in enumerate(design_text.splitlines(), start=1):
        if _GLOSSARY_HEADING in line:
            seen_heading = True
            continue
        if not seen_heading:
            continue
        stripped = line.strip()
        if stripped.startswith("|"):
            in_table = True
            cells = _CELL_SPLIT.split(stripped)
            if len(cells) < 2:
                continue
            first = cells[1]
            for raw in _BACKTICKED.findall(first):
                out.append((raw.replace("NN", "*"), lineno))
        elif in_table:
            break  # table ended
    return out


def _expand_emission(name: str, kind: str) -> List[str]:
    if kind == "observe":
        return [f"{name}.count", f"{name}.total", f"{name}.max"]
    return [name]


def _matches(emitted: str, pattern: str) -> bool:
    # Emitted names may carry a `*` from an f-string field; ground it so
    # fnmatch treats the wildcard as "some concrete value".
    return fnmatchcase(emitted.replace("*", "0"), pattern)


class CounterGlossaryDrift(ProjectRule):
    id = "counter-glossary-drift"
    severity = "error"
    description = (
        "every emitted counter/timer/note name must appear in the DESIGN.md "
        "counter glossary, and every glossary row must still be emitted"
    )
    hint = (
        "add the counter to the DESIGN.md glossary table (or remove the "
        "stale row); counter names must be statically resolvable"
    )

    #: Tracer internals pass names as parameters, not literals.
    EXCLUDED = ("repro/obs/",)

    def check_project(self, project: ProjectModel) -> List[Finding]:
        if project.design_text is None:
            return []
        glossary = parse_glossary(project.design_text)
        findings: List[Finding] = []
        if not glossary:
            findings.append(
                _finding(
                    self, project.design_path, 1, 0,
                    "no counter-glossary table found in the design document",
                )
            )
            return findings

        patterns = [p for p, _ in glossary]
        emitted_names: List[str] = []
        for summary in project.files():
            if any(part in summary.logical for part in self.EXCLUDED):
                continue
            for counter in summary.counters:
                if not counter.get("resolved"):
                    findings.append(
                        _finding(
                            self, summary.logical,
                            counter["line"], counter["col"],
                            f"counter name passed to .{counter['kind']}() is "
                            "not statically resolvable (use a literal, a "
                            "module-level constant, or an f-string)",
                        )
                    )
                    continue
                for name in _expand_emission(counter["name"], counter["kind"]):
                    emitted_names.append(name)
                    if not any(_matches(name, p) for p in patterns):
                        findings.append(
                            _finding(
                                self, summary.logical,
                                counter["line"], counter["col"],
                                f"counter {name!r} is not documented in the "
                                f"{project.design_path} counter glossary",
                            )
                        )

        # The stale direction only makes sense when the scan covers the
        # tree the glossary documents: linting an external extension
        # alone must not flag every row as unemitted.
        covers_repro = any(
            (summary.module or "").split(".")[0] == "repro"
            for summary in project.files()
        )
        if not covers_repro:
            return findings

        for pattern, lineno in glossary:
            if not any(_matches(name, pattern) for name in emitted_names):
                findings.append(
                    _finding(
                        self, project.design_path, lineno, 0,
                        f"glossary row {pattern!r} matches no counter emitted "
                        "anywhere in the scanned sources — stale documentation",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# spawn-ships-module-level
# ----------------------------------------------------------------------
class SpawnShipsModuleLevel(ProjectRule):
    id = "spawn-ships-module-level"
    severity = "error"
    description = (
        "callables and task constructors reaching a pool dispatch must "
        "resolve to module-level definitions (picklable by construction)"
    )
    hint = (
        "hoist the payload to a module-level def/class; ship data plus a "
        "registry name instead of closures or bound methods"
    )

    def check_project(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for summary in project.files():
            for submit in summary.pool_submits:
                line, col = submit["line"], submit["col"]
                problem = self._classify(project, summary, submit["payload"])
                if problem is not None:
                    findings.append(
                        _finding(
                            self, summary.logical, line, col,
                            f"pool .{submit['method']}() payload {problem}",
                        )
                    )
                for ctor in submit["task_ctors"]:
                    problem = self._classify(project, summary, ctor)
                    if problem is not None:
                        findings.append(
                            _finding(
                                self, summary.logical, line, col,
                                f"task constructor shipped to .{submit['method']}() "
                                f"{problem}",
                            )
                        )
        return findings

    def _classify(
        self, project: ProjectModel, summary: FileSummary, payload: Dict
    ) -> Optional[str]:
        """Human description of the violation, or ``None`` when safe."""
        kind = payload.get("kind")
        if kind == "lambda":
            return "is a lambda — lambdas cannot be pickled across spawn"
        if kind == "local":
            return (
                f"`{payload['name']}` is a closure/nested definition — only "
                "module-level callables survive the spawn pickle boundary"
            )
        if kind == "bound-method":
            return (
                f"`{payload['receiver']}.{payload['attr']}` is a bound "
                "method — the receiver object would be pickled along with it"
            )
        if kind == "module-def":
            record = summary.defs.get(payload["name"], {})
            if record.get("kind") == "lambda":
                return (
                    f"`{payload['name']}` is a module-level lambda — lambdas "
                    "cannot be pickled even at module scope"
                )
            return None
        if kind == "import":
            resolved = project.resolve_local(summary, payload["name"])
            if resolved is None:
                return None  # external (stdlib/third-party): assume importable
            _, record = resolved
            if record.get("kind") == "lambda":
                return (
                    f"`{payload['name']}` resolves to a lambda assignment — "
                    "not picklable across spawn"
                )
            return None
        if kind == "module-attr":
            resolved = project.resolve_local(
                summary, f"{payload['alias']}.{payload['attr']}"
            )
            if resolved is not None and resolved[1].get("kind") == "lambda":
                return (
                    f"`{payload['alias']}.{payload['attr']}` resolves to a "
                    "lambda assignment — not picklable across spawn"
                )
            return None
        return None  # unknown provenance: leave to the node-level rule


# ----------------------------------------------------------------------
# ownership-before-concat
# ----------------------------------------------------------------------
class OwnershipBeforeConcat(ProjectRule):
    id = "ownership-before-concat"
    severity = "error"
    description = (
        "shard results must pass the right-endpoint ownership filter on "
        "every path before the exactly-once merge concatenation"
    )
    hint = (
        "filter rows with `owner(row_interval.hi) == shard` (or guard the "
        "append on it) before handing them to the merge — the merge "
        "concatenates without dedup (DESIGN: parallel execution, stage 4)"
    )

    def check_project(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for summary in project.files():
            for fact in summary.ownership:
                findings.append(
                    _finding(
                        self, summary.logical,
                        fact["line"], fact["col"], fact["detail"],
                    )
                )
        return findings


# ----------------------------------------------------------------------
# stats-threading
# ----------------------------------------------------------------------
class StatsThreading(ProjectRule):
    id = "stats-threading"
    severity = "error"
    description = (
        "a function holding a possibly-live `stats` must forward it to "
        "every project callee accepting `stats=` on every path"
    )
    hint = (
        "pass stats= through (counters vanish silently otherwise); if the "
        "drop is deliberate — e.g. nested recursion counting once — "
        "suppress inline with a justification"
    )

    #: Subsystems under the hard no-counter-loss contract. The algorithm
    #: layer is exempt: DESIGN documents that nested/recursive strategy
    #: calls deliberately withhold `stats` so `results` counts once.
    SCOPES = ("/parallel/", "/serve/", "/kernels/")

    def applies(self, logical: str) -> bool:
        return any(scope in logical for scope in self.SCOPES)

    def check_project(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for summary in project.files():
            if not self.applies(summary.logical):
                continue
            for fact in summary.stats_calls:
                resolved = project.resolve_local(summary, fact["callee"])
                if resolved is None:
                    continue  # external or unresolvable: out of contract
                module, record = resolved
                if not record.get("accepts_stats"):
                    continue
                state = "is non-None" if fact["state"] == "nonnone" else "may be non-None"
                findings.append(
                    _finding(
                        self, summary.logical, fact["line"], fact["col"],
                        f"`{fact['func']}` holds a `stats` that {state} here "
                        f"but calls `{fact['callee']}` (→ {module}) without "
                        "forwarding it — those counters are lost",
                    )
                )
        return findings


def flow_rules() -> List[ProjectRule]:
    """The project-level rule set, in reporting order."""
    return [
        CounterGlossaryDrift(),
        SpawnShipsModuleLevel(),
        OwnershipBeforeConcat(),
        StatsThreading(),
    ]
