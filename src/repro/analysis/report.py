"""Text and JSON reporters for :class:`~repro.analysis.engine.LintReport`."""

from __future__ import annotations

import json

from .engine import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable findings listing plus a one-line summary."""
    lines = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule} [{f.severity}] {f.message}")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    for entry in report.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.rule} at {entry.path}:{entry.line} "
            "no longer matches any finding — remove it"
        )
    summary = (
        f"repro-lint: {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} suppressed, "
        f"{report.files_scanned} file(s) scanned"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact format)."""
    return json.dumps(report.to_dict(), indent=2) + "\n"
