"""Text, JSON and SARIF reporters for :class:`~repro.analysis.engine.LintReport`."""

from __future__ import annotations

import json
from typing import Optional, Sequence

from .engine import LintReport, Rule

#: Published schema for SARIF 2.1.0 — what GitHub code scanning ingests.
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def render_text(report: LintReport) -> str:
    """Human-readable findings listing plus a one-line summary."""
    lines = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule} [{f.severity}] {f.message}")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    for entry in report.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.rule} at {entry.path}:{entry.line} "
            "no longer matches any finding — remove it"
        )
    summary = (
        f"repro-lint: {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} suppressed, "
        f"{report.files_scanned} file(s) scanned "
        f"({report.files_reparsed} reparsed, {report.files_cached} cached)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact format)."""
    return json.dumps(report.to_dict(), indent=2) + "\n"


def render_sarif(report: LintReport, rules: Optional[Sequence[Rule]] = None) -> str:
    """SARIF 2.1.0 document — one run, findings as results.

    Rule metadata comes from ``rules`` when given; rules that produced a
    finding but are not in the list (e.g. ``syntax-error``) still get a
    stub descriptor so every result's ``ruleIndex`` resolves.
    """
    descriptors = []
    index = {}
    for rule in rules or ():
        if rule.id in index:
            continue
        index[rule.id] = len(descriptors)
        descriptors.append(
            {
                "id": rule.id,
                "shortDescription": {"text": rule.description or rule.id},
                "help": {"text": rule.hint or rule.description or rule.id},
                "defaultConfiguration": {
                    "level": "error" if rule.severity == "error" else "warning"
                },
            }
        )
    for f in report.findings:
        if f.rule not in index:
            index[f.rule] = len(descriptors)
            descriptors.append(
                {"id": f.rule, "shortDescription": {"text": f.rule}}
            )

    results = []
    for f in report.findings:
        message = f.message if not f.hint else f"{f.message} (hint: {f.hint})"
        results.append(
            {
                "ruleId": f.rule,
                "ruleIndex": index[f.rule],
                "level": "error" if f.severity == "error" else "warning",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )

    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2) + "\n"
