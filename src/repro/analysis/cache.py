"""Content-hash keyed incremental cache for ``repro-lint``.

One JSON file (``.repro-lint-cache/files.json``) maps each logical path
to the sha256 of its source (salted with the engine schema, the active
node-rule ids and the Python minor version — any of those changing must
invalidate everything) plus the three things a warm run needs:

* the file's raw node-rule findings (pre-suppression, so suppressed
  counts still come out right when replayed);
* its :class:`~repro.analysis.project.FileSummary`, so the project-level
  flow rules can recombine cross-file facts without touching the AST;
* its suppression tables (file/line/span), applied at run time.

A warm run over an unchanged tree therefore re-parses **zero** files:
node findings replay from the cache and the flow rules recompute from
summaries alone (cheap dict work). Editing one file invalidates exactly
that file — its digest changes, nothing else's does.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from typing import Dict, List, Optional

#: Bump when the cached payload shape or summary semantics change.
SCHEMA_VERSION = 1

#: Default cache directory, resolved against the working directory.
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def rules_salt(rule_ids) -> str:
    """Digest salt covering everything besides file content."""
    return "|".join(
        [f"schema={SCHEMA_VERSION}", f"py={sys.version_info[0]}.{sys.version_info[1]}"]
        + sorted(rule_ids)
    )


class AnalysisCache:
    """Load-once / save-once cache over one lint invocation."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.path = os.path.join(root, "files.json")
        self._entries: Dict[str, Dict] = {}
        self._dirty = False
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, "r") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if data.get("schema") == SCHEMA_VERSION:
            entries = data.get("files")
            if isinstance(entries, dict):
                self._entries = entries

    def save(self) -> None:
        if not self._dirty:
            return
        os.makedirs(self.root, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(
                {"schema": SCHEMA_VERSION, "files": self._entries},
                handle,
                sort_keys=True,
            )
        os.replace(tmp, self.path)
        self._dirty = False

    # ------------------------------------------------------------------
    @staticmethod
    def digest(source: str, salt: str) -> str:
        return hashlib.sha256(
            (salt + "\0" + source).encode("utf-8", "surrogatepass")
        ).hexdigest()

    def lookup(self, logical: str, digest: str) -> Optional[Dict]:
        entry = self._entries.get(logical)
        if entry is not None and entry.get("digest") == digest:
            return entry
        return None

    def store(
        self,
        logical: str,
        digest: str,
        findings: List[Dict],
        summary: Dict,
        suppress: Dict,
    ) -> None:
        self._entries[logical] = {
            "digest": digest,
            "findings": findings,
            "summary": summary,
            "suppress": suppress,
        }
        self._dirty = True
