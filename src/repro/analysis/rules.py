"""The ~8 domain lint rules behind ``repro-lint``.

Each rule guards one structural convention the paper's guarantees (or
the PR 2 parallel engine's exactly-once merge) rely on; DESIGN.md's
"Enforced invariants" section maps every rule to the theorem or
subsystem it protects. Rules are deliberately narrow: each one encodes a
pattern we know to be load-bearing in *this* codebase, not a general
style opinion — ruff handles style.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import Finding, Rule, SourceFile, path_segments

#: Dispatch-layer kwargs assumed when ``EXECUTOR_KWARGS`` cannot be read
#: out of the registry module being linted.
_DEFAULT_EXECUTOR_KWARGS = frozenset({"workers", "parallel_mode"})


def _in_dirs(logical: str, names: Sequence[str]) -> bool:
    segs = path_segments(logical)
    return any(n in segs for n in names)


def _basename(logical: str) -> str:
    segs = path_segments(logical)
    return segs[-1] if segs else ""


# ----------------------------------------------------------------------
class NoBareAssert(Rule):
    """``assert`` in library code vanishes under ``python -O``.

    Invariants the correctness proofs rest on must survive optimized
    bytecode; the error taxonomy has :class:`repro.core.errors.InvariantError`
    for exactly this.
    """

    id = "no-bare-assert"
    severity = "error"
    description = "assert statement in library code (stripped under python -O)"
    hint = "raise repro.core.errors.InvariantError (or a specific ReproError)"

    def check(self, sf: SourceFile) -> List[Finding]:
        out = []
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Assert):
                out.append(
                    sf.finding(
                        self,
                        node,
                        "bare assert in library code: the check disappears "
                        "under 'python -O'",
                    )
                )
        return out


# ----------------------------------------------------------------------
class NoMutableDefault(Rule):
    """Mutable default arguments are shared across calls."""

    id = "no-mutable-default"
    severity = "error"
    description = "mutable default argument (list/dict/set literal or call)"
    hint = "default to None and create the container inside the function"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}

    def _is_mutable(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False

    def check(self, sf: SourceFile) -> List[Finding]:
        out = []
        for node in ast.walk(sf.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + list(args.kw_defaults):
                if self._is_mutable(default):
                    out.append(
                        sf.finding(
                            self,
                            default,
                            "mutable default argument: the same object is "
                            "shared by every call",
                        )
                    )
        return out


# ----------------------------------------------------------------------
class FloatEndpointEquality(Rule):
    """Exact ``==``/``!=`` on interval endpoints outside ``core/interval.py``.

    Endpoints that went through τ/2 shrink/expand arithmetic are floats;
    exact equality on them silently diverges between algorithms. Interval
    identity belongs in :mod:`repro.core.interval`, which owns the
    canonical comparisons.
    """

    id = "float-endpoint-equality"
    severity = "error"
    description = "direct ==/!= on interval endpoints (.lo/.hi) outside core/interval.py"
    hint = "compare whole Intervals, or delegate to helpers in core/interval.py"

    _ENDPOINTS = {"lo", "hi"}

    def applies(self, logical: str) -> bool:
        return not logical.endswith("core/interval.py")

    def _is_endpoint(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr in self._ENDPOINTS

    def _is_infinity(self, node: ast.AST) -> bool:
        # math.inf / -math.inf / float("inf"): equality against an exact
        # sentinel is fine — no arithmetic produced it.
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return self._is_infinity(node.operand)
        if isinstance(node, ast.Attribute) and node.attr == "inf":
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and str(node.args[0].value).lstrip("+-").lower() in ("inf", "infinity")
        ):
            return True
        return False

    def check(self, sf: SourceFile) -> List[Finding]:
        out = []
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                pair = (left, right)
                if not any(self._is_endpoint(x) for x in pair):
                    continue
                if any(self._is_infinity(x) for x in pair):
                    continue
                out.append(
                    sf.finding(
                        self,
                        node,
                        "exact ==/!= on a computed interval endpoint "
                        "(.lo/.hi): float arithmetic makes this unstable",
                    )
                )
                break
        return out


# ----------------------------------------------------------------------
class ErrorTaxonomy(Rule):
    """Planner/algorithm failures must use the ``repro.core.errors`` types."""

    id = "error-taxonomy"
    severity = "error"
    description = (
        "raise ValueError/Exception in planner/algorithm code instead of a "
        "repro.core.errors type"
    )
    hint = "raise QueryError, PlanError, SchemaError, IntervalError or InvariantError"

    _BANNED = {"ValueError", "Exception", "AssertionError"}
    _DIRS = ("core", "algorithms", "nontemporal", "parallel")

    def applies(self, logical: str) -> bool:
        return _in_dirs(logical, self._DIRS)

    def check(self, sf: SourceFile) -> List[Finding]:
        out = []
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name in self._BANNED:
                out.append(
                    sf.finding(
                        self,
                        node,
                        f"raise {name} in planner/algorithm code: callers "
                        "catch ReproError at API boundaries, so this "
                        "escapes the taxonomy",
                    )
                )
        return out


# ----------------------------------------------------------------------
class Determinism(Rule):
    """No unsorted set iteration on result-producing paths.

    The PR 2 exactly-once sharded merge is a pure concatenation: serial
    and parallel runs agree only if every algorithm emits a deterministic
    row multiset independent of hash seeds. Iterating a ``set`` (or
    ``frozenset``) drives output order off ``PYTHONHASHSEED``.
    """

    id = "determinism"
    severity = "error"
    description = (
        "iteration over a set/frozenset in algorithms/ or parallel/merge.py "
        "(hash-order nondeterminism)"
    )
    hint = "wrap the iterable in sorted(...) or iterate an ordered container"

    def applies(self, logical: str) -> bool:
        segs = path_segments(logical)
        if "algorithms" in segs:
            return True
        return _basename(logical) == "merge.py" and "parallel" in segs

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra (a | b, a - b, ...) over set operands.
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def check(self, sf: SourceFile) -> List[Finding]:
        out = []
        iters: List[ast.AST] = []
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if self._is_set_expr(it):
                out.append(
                    sf.finding(
                        self,
                        it,
                        "iterating a set on a result-producing path: order "
                        "depends on PYTHONHASHSEED, breaking serial-vs-"
                        "sharded determinism",
                    )
                )
        return out


# ----------------------------------------------------------------------
class SpawnSafety(Rule):
    """Worker payloads must survive pickling under the ``spawn`` method.

    Lambdas, nested functions and locally-bound callables pickle by
    qualified name — they fail (or silently rebind) when a spawn-started
    worker imports the module fresh. Only module-level functions may flow
    into pool ``submit``/``map`` calls.
    """

    id = "spawn-safety"
    severity = "error"
    description = (
        "lambda/closure/local callable handed to a process-pool "
        "submit/map (unpicklable under spawn)"
    )
    hint = "pass a module-level function (see repro.parallel.worker.run_shard)"

    _DISPATCH = {
        "submit", "map", "starmap", "apply", "apply_async",
        "map_async", "starmap_async", "imap", "imap_unordered",
    }

    def _pool_like(self, node: ast.AST) -> bool:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Call):
            return self._pool_like(node.func)
        if name is None:
            return False
        lowered = name.lower()
        return "pool" in lowered or "executor" in lowered

    def _local_callables(self, sf: SourceFile) -> Set[str]:
        local: Set[str] = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Function defined inside another function: a closure.
                for inner in ast.walk(node):
                    if inner is node:
                        continue
                    if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        local.add(inner.name)
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local.add(target.id)
        return local

    def check(self, sf: SourceFile) -> List[Finding]:
        out = []
        local = self._local_callables(sf)
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in self._DISPATCH):
                continue
            if not self._pool_like(func.value):
                continue
            if not node.args:
                continue
            payload = node.args[0]
            problem = None
            if isinstance(payload, ast.Lambda):
                problem = "a lambda"
            elif isinstance(payload, ast.Name) and payload.id in local:
                problem = f"locally defined callable {payload.id!r}"
            if problem is not None:
                out.append(
                    sf.finding(
                        self,
                        payload,
                        f"{problem} flows into {func.attr}() on a process "
                        "pool: not picklable under the spawn start method",
                    )
                )
        return out


# ----------------------------------------------------------------------
class PairedTracerPhases(Rule):
    """``Tracer.timer`` phases must enter and exit on every path.

    The only statically safe spelling is ``with stats.timer("phase"):``
    — the context manager pairs enter/exit even on exceptions. A bare
    ``.timer(...)`` call (stored, discarded, or manually entered) can
    leave a phase open on an error path, skewing every downstream
    ``phase.*`` aggregate.
    """

    id = "paired-tracer-phases"
    severity = "error"
    description = ".timer(...) used outside a with-statement (phase enter without guaranteed exit)"
    hint = 'use "with stats.timer(\'phase.x\'):" so exit is guaranteed on all paths'

    def check(self, sf: SourceFile) -> List[Finding]:
        out = []
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "timer"):
                continue
            parent = getattr(node, "_repro_parent", None)
            if isinstance(parent, ast.withitem) and parent.context_expr is node:
                continue
            # `yield` inside the NullTracer/ExecutionStats definition is
            # a def, not a call; only calls reach here.
            out.append(
                sf.finding(
                    self,
                    node,
                    "tracer phase entered outside a with-statement: the "
                    "matching exit is not guaranteed on all paths",
                )
            )
        return out


# ----------------------------------------------------------------------
class StatsContract(Rule):
    """Registered algorithms must honor the dispatch-layer contract.

    Every function registered in ``algorithms/registry.py`` must accept
    ``stats=`` (the telemetry hook every caller may pass) and must *not*
    declare parameters named in ``EXECUTOR_KWARGS`` — those are consumed
    by the dispatch layer before the algorithm runs, so a same-named
    parameter would silently never receive the caller's value.
    """

    id = "stats-contract"
    severity = "error"
    description = (
        "registered algorithm missing stats= or shadowing an EXECUTOR_KWARGS name"
    )
    hint = "add a stats=None parameter; rename parameters colliding with EXECUTOR_KWARGS"

    def applies(self, logical: str) -> bool:
        return _basename(logical) == "registry.py"

    # -- helpers -------------------------------------------------------
    def _registered(self, sf: SourceFile) -> List[Tuple[str, str, ast.AST]]:
        """``(registered_name, function_name, node)`` triples."""
        out = []
        for node in ast.walk(sf.tree):
            # _REGISTRY.setdefault("name", fn)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setdefault"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id.endswith("REGISTRY")
                and len(node.args) == 2
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[1], ast.Name)
            ):
                out.append((str(node.args[0].value), node.args[1].id, node))
            # _REGISTRY["name"] = fn
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Subscript)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id.endswith("REGISTRY")
                and isinstance(node.value, ast.Name)
            ):
                key = node.targets[0].slice
                if isinstance(key, ast.Constant):
                    out.append((str(key.value), node.value.id, node))
        return out

    def _executor_kwargs(self, sf: SourceFile) -> Set[str]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "EXECUTOR_KWARGS" not in targets:
                continue
            value = node.value
            if isinstance(value, ast.Call) and value.args:
                value = value.args[0]
            if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
                return {
                    str(e.value)
                    for e in value.elts
                    if isinstance(e, ast.Constant)
                }
        return set(_DEFAULT_EXECUTOR_KWARGS)

    def _local_defs(self, sf: SourceFile) -> Dict[str, ast.FunctionDef]:
        return {
            node.name: node
            for node in ast.walk(sf.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def _imported_def(
        self, sf: SourceFile, func_name: str
    ) -> Optional[Tuple[str, ast.FunctionDef]]:
        """Resolve ``from .mod import func`` to the def in the sibling file."""
        if sf.fs_path is None:
            return None
        base = os.path.dirname(sf.fs_path)
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            for alias in node.names:
                if (alias.asname or alias.name) != func_name:
                    continue
                rel = node.module.split(".")
                target_dir = base
                for _ in range(max(0, node.level - 1)):
                    target_dir = os.path.dirname(target_dir)
                candidate = os.path.join(target_dir, *rel) + ".py"
                if not os.path.isfile(candidate):
                    continue
                try:
                    with open(candidate, "r") as handle:
                        tree = ast.parse(handle.read(), filename=candidate)
                except (OSError, SyntaxError):
                    return None
                for sub in ast.walk(tree):
                    if (
                        isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and sub.name == alias.name
                    ):
                        return candidate, sub
        return None

    # -- the check -----------------------------------------------------
    def check(self, sf: SourceFile) -> List[Finding]:
        out = []
        executor_kwargs = self._executor_kwargs(sf)
        local_defs = self._local_defs(sf)
        for reg_name, func_name, node in self._registered(sf):
            where = sf.logical
            fdef = local_defs.get(func_name)
            if fdef is None:
                resolved = self._imported_def(sf, func_name)
                if resolved is None:
                    continue  # unresolvable import: out of this file's scope
                where, fdef = resolved
            args = fdef.args
            names = [
                a.arg
                for a in (
                    list(getattr(args, "posonlyargs", []))
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
            ]
            if "stats" not in names and args.kwarg is None:
                out.append(
                    sf.finding(
                        self,
                        node,
                        f"algorithm {reg_name!r} ({func_name} in {where}) "
                        "does not accept stats=: telemetry calls would "
                        "raise TypeError",
                    )
                )
            shadowed = sorted(set(names) & executor_kwargs)
            if shadowed:
                out.append(
                    sf.finding(
                        self,
                        node,
                        f"algorithm {reg_name!r} ({func_name} in {where}) "
                        f"declares dispatch-layer kwargs {shadowed}: the "
                        "dispatcher consumes these before the algorithm "
                        "runs, so the parameter would never be bound",
                    )
                )
        return out


# ----------------------------------------------------------------------
class KernelNoObjectRows(Rule):
    """Kernel hot loops must stay on interned integer columns.

    The whole point of :mod:`repro.kernels` is that sweep/maintenance
    loops never touch ``(values, Interval)`` object rows — only
    ``columns.py`` (the boundary that interns on the way in and
    de-interns on the way out) may. A ``.rows`` / ``._rows`` access
    inside a loop, or any call to the object path's ``event_stream``,
    reintroduces per-event object traffic and silently erodes the
    engine's measured speedup.
    """

    id = "kernel-no-object-rows"
    severity = "error"
    description = (
        "object-row access (.rows/._rows in a loop, or event_stream()) "
        "inside src/repro/kernels/ outside columns.py"
    )
    hint = (
        "consume KernelColumns arrays (row_values/row_lo/row_hi/"
        "event_codes); object rows cross only through columns.py"
    )

    _ROW_ATTRS = {"rows", "_rows"}
    _LOOPS = (ast.For, ast.AsyncFor, ast.While,
              ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

    def applies(self, logical: str) -> bool:
        return _in_dirs(logical, ("kernels",)) and _basename(logical) != "columns.py"

    def check(self, sf: SourceFile) -> List[Finding]:
        out = []
        seen: Set[int] = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                func = node.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name == "event_stream":
                    out.append(
                        sf.finding(
                            self,
                            node,
                            "event_stream() builds (tuple, Interval) event "
                            "objects: kernels sweep pre-sorted integer "
                            "event codes instead",
                        )
                    )
            if not isinstance(node, self._LOOPS):
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr in self._ROW_ATTRS
                    and id(sub) not in seen  # nested loops walk twice
                ):
                    seen.add(id(sub))
                    out.append(
                        sf.finding(
                            self,
                            sub,
                            f".{sub.attr} object-row access in a kernel hot "
                            "loop: per-row objects belong behind the "
                            "columns.py intern/de-intern boundary",
                        )
                    )
        return out


# ----------------------------------------------------------------------
def default_rules() -> List[Rule]:
    """The registered rule set, in reporting order."""
    return [
        NoBareAssert(),
        NoMutableDefault(),
        FloatEndpointEquality(),
        ErrorTaxonomy(),
        Determinism(),
        SpawnSafety(),
        PairedTracerPhases(),
        StatsContract(),
        KernelNoObjectRows(),
    ]
